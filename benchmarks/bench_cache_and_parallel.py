"""Benchmark: parallel enumeration + the persistent artifact cache.

Two claims are measured:

1. **Warm-cache pipeline builds are >= 10x faster than cold builds.**  The
   cold path enumerates the state graph, generates tours and maps them to
   vector traces; the warm path unpickles one file.  On the default
   ``PPModelConfig`` the observed ratio is two to three orders of
   magnitude, so the 10x floor is asserted, not just reported.

2. **Parallel enumeration is bit-identical to sequential.**  The wall-clock
   ratio is reported for reference -- it depends on the host's core count
   (on a single-core runner the coordinator/worker IPC makes ``jobs>1`` a
   slowdown, by design: correctness never depends on parallel speedup) --
   but the byte-identical serialization always holds and is asserted.
"""

import time

import pytest

from repro.core import ArtifactCache, ValidationPipeline, artifact_key
from repro.enumeration import enumerate_states, enumerate_states_parallel
from repro.pp.fsm_model import PPModelConfig, build_pp_control_model


def test_cache_cold_vs_warm(benchmark, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    config = PPModelConfig()  # the default: fill_words=2
    cache_dir = str(tmp_path / "artifact-cache")

    started = time.perf_counter()
    cold_pipeline = ValidationPipeline(model_config=config, cache_dir=cache_dir)
    cold_artifacts = cold_pipeline.build()
    cold = time.perf_counter() - started
    assert not cold_pipeline.artifacts_from_cache

    started = time.perf_counter()
    warm_pipeline = ValidationPipeline(model_config=config, cache_dir=cache_dir)
    warm_artifacts = warm_pipeline.build()
    warm = time.perf_counter() - started
    assert warm_pipeline.artifacts_from_cache

    print("\nArtifact cache -- default PPModelConfig")
    print(f"  cold build : {cold:8.3f} s "
          f"({cold_artifacts.graph.num_states:,} states, "
          f"{cold_artifacts.traces.num_traces} traces)")
    print(f"  warm load  : {warm:8.3f} s")
    print(f"  speedup    : {cold / warm:8.1f} x")

    # The loaded artifacts are the built artifacts, bit for bit.
    assert warm_artifacts.graph.to_json() == cold_artifacts.graph.to_json()
    assert [t.program for t in warm_artifacts.traces] == [
        t.program for t in cold_artifacts.traces
    ]
    # Acceptance floor: warm is at least 10x faster than cold.
    assert cold / warm >= 10.0


def test_cache_invalidation(tmp_path):
    from repro.core.cache import pipeline_phase_keys

    cache_dir = str(tmp_path / "artifact-cache")
    small = PPModelConfig(fill_words=1)
    ValidationPipeline(model_config=small, cache_dir=cache_dir).build()
    cache = ArtifactCache(cache_dir)

    base = pipeline_phase_keys(small, max_instructions_per_trace=400)
    for phase in ("model", "graph", "tours", "splice", "traces"):
        assert cache.has(base[phase]), phase

    # A config change re-addresses every phase.
    other = pipeline_phase_keys(PPModelConfig(fill_words=2),
                                max_instructions_per_trace=400)
    assert not any(cache.has(other[phase]) for phase in other)

    # Downstream-only knobs leave the upstream entries live -- that is the
    # point of per-phase keys.  A new vector seed re-keys only the traces;
    # a trace-length change re-keys tours and traces; the enumeration mode
    # re-keys everything from the graph down.
    seeded = pipeline_phase_keys(small, max_instructions_per_trace=400,
                                 seed=1)
    assert seeded["graph"] == base["graph"]
    assert seeded["tours"] == base["tours"]
    assert not cache.has(seeded["traces"])

    shorter = pipeline_phase_keys(small, max_instructions_per_trace=100)
    assert shorter["graph"] == base["graph"]
    assert not cache.has(shorter["tours"])
    assert not cache.has(shorter["traces"])

    modes = pipeline_phase_keys(small, max_instructions_per_trace=400,
                                record_all_conditions=True)
    assert modes["model"] == base["model"]
    assert not cache.has(modes["graph"])
    assert not cache.has(modes["traces"])

    # The monolithic artifact_key remains stable for external consumers
    # but no longer addresses pipeline-written entries.
    assert not cache.has(artifact_key(small, max_instructions_per_trace=400))


@pytest.mark.parametrize("record_all", [False, True])
def test_parallel_enumeration_identity_and_timing(benchmark, record_all):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    model = build_pp_control_model(PPModelConfig())

    started = time.perf_counter()
    sequential, seq_stats = enumerate_states(
        model, record_all_conditions=record_all
    )
    seq_time = time.perf_counter() - started

    started = time.perf_counter()
    parallel, par_stats = enumerate_states_parallel(
        model, jobs=4, record_all_conditions=record_all
    )
    par_time = time.perf_counter() - started

    mode = "all-conditions" if record_all else "first-condition"
    print(f"\nParallel enumeration ({mode}) -- default PPModelConfig")
    print(f"  sequential : {seq_time:8.3f} s "
          f"({seq_stats.num_states:,} states, {seq_stats.num_edges:,} edges)")
    print(f"  jobs=4     : {par_time:8.3f} s")
    print(f"  ratio      : {seq_time / par_time:8.2f} x (host-dependent)")

    assert parallel.to_json() == sequential.to_json()
    assert par_stats.transitions_explored == seq_stats.transitions_explored
