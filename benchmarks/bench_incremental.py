"""Benchmark: dependency-aware incremental recomputation (PR 10).

Claims measured, each cell against a cold build of the *same* model:

1. **A no-op source edit is served by adoption.**  Salting the model
   phase's code digest simulates a comment-only edit to a model source
   file: every key changes, the semantic fingerprint does not, and the
   prior build's entries are adopted by byte copy.  Floor (pp scale):
   >= 20x faster than cold.
2. **A single-condition model edit is served by region splice.**  The
   ``inbox-flip-fill-tail`` catalog edit dirties one control state; the
   rest of the graph replays from cache and most traces splice verbatim.
   Floor (pp scale): >= 3x faster than cold.
3. **Byte identity everywhere.**  In *every* cell the served artifacts
   (graph / tours / traces JSON) are compared byte-for-byte against a
   cold, cache-less build of the same (edited) model -- the incremental
   layer is an optimization, never an approximation.

Scale is selected with ``BENCH_INCR_SCALE``: ``pp`` (default) is the
paper-scale fill_words=2 model, ``small`` is fill_words=1 for CI smoke
runs (floors default off there -- timing, identity and classification
are still asserted).  Results go to ``BENCH_incremental.json`` (schema
``repro.bench-incremental/1``) and one shared-schema
(``repro.bench-result/1``) line per cell is appended to
``BENCH_history.jsonl`` for the ``repro bench`` regression gate.
"""

import json
import os
import shutil
import time
from pathlib import Path

from repro.core import ValidationPipeline
from repro.incremental.edits import resolve_edits
from repro.obs import bench
from repro.pp.fsm_model import PPModelConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_OUT = REPO_ROOT / "BENCH_incremental.json"
HISTORY_OUT = REPO_ROOT / "BENCH_history.jsonl"

SCALES = {"small": 1, "pp": 2}
SCALE = os.environ.get("BENCH_INCR_SCALE", "pp")
#: Acceptance floors; the paper-scale claims.  At ``small`` scale the
#: constant per-build overheads (worker-free, sub-second builds) dominate
#: and the floors default off -- override via env to re-enable.
MIN_NOOP = float(os.environ.get(
    "BENCH_INCR_MIN_NOOP", "20.0" if SCALE == "pp" else "0.0"))
MIN_LOCALIZED = float(os.environ.get(
    "BENCH_INCR_MIN_LOCALIZED", "3.0" if SCALE == "pp" else "0.0"))
#: Best-of-N timing to keep the speedup floors robust against noisy
#: neighbours; every repeat re-runs the cell from the same cache state.
#: The served cells are fsync-bound at the tens-of-ms scale, so their
#: per-trial variance is large relative to the floors -- hence 5 repeats.
REPEATS = max(1, int(os.environ.get("BENCH_INCR_REPEATS", "5")))

EDIT = "inbox-flip-fill-tail"


def _config():
    return PPModelConfig(fill_words=SCALES[SCALE])


def _pipeline(cache_dir=None, **kw):
    return ValidationPipeline(model_config=_config(), cache_dir=cache_dir,
                              jobs=1, **kw)


def _bytes(pipeline):
    artifacts = pipeline.artifacts
    return (artifacts.graph.to_json(), artifacts.tours.to_json(),
            artifacts.traces.to_json())


def _drop_entries(cache_dir, keys):
    """Forget one build's phase entries (keep the journal) so the next
    repeat of the cell exercises incremental reuse, not a plain hit."""
    for key in keys.values():
        for suffix in (".pkl", ".json", ".builds"):
            (Path(cache_dir) / f"{key}{suffix}").unlink(missing_ok=True)


def test_incremental_speedups_and_byte_identity(benchmark, tmp_path):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    edits = resolve_edits([EDIT])

    # -- cold reference: fresh cache dir per repeat ------------------------
    cold = None
    for index in range(REPEATS):
        cache_dir = str(tmp_path / f"cold-{index}")
        pipeline = _pipeline(cache_dir)
        started = time.perf_counter()
        pipeline.build()
        trial = time.perf_counter() - started
        cold = trial if cold is None else min(cold, trial)
        base_bytes = _bytes(pipeline)
        base_states = pipeline.artifacts.graph.num_states
        base_traces = pipeline.artifacts.traces.num_traces
        if index < REPEATS - 1:
            shutil.rmtree(cache_dir)
    cache_dir = str(tmp_path / f"cold-{REPEATS - 1}")  # the warm base

    # -- warm full hit: the plain per-phase cache load ---------------------
    warm = None
    for _ in range(REPEATS):
        pipeline = _pipeline(cache_dir)
        started = time.perf_counter()
        pipeline.build()
        warm = min(w for w in (warm, time.perf_counter() - started)
                   if w is not None)
        assert pipeline.artifacts_from_cache
        assert _bytes(pipeline) == base_bytes

    # -- no-op edit: salted model digest, adoption by byte copy ------------
    noop = None
    noop_report = None
    for index in range(REPEATS):
        pipeline = _pipeline(
            cache_dir,
            phase_code_overrides={"model": f"noop-salt-{index}"},
        )
        started = time.perf_counter()
        pipeline.build()
        noop = min(n for n in (noop, time.perf_counter() - started)
                   if n is not None)
        noop_report = pipeline.incremental_report
        assert noop_report.classification == "no-op"
        assert noop_report.adopted_phases == ("graph", "tours", "traces")
        assert _bytes(pipeline) == base_bytes

    # -- localized edit: one dirty state, replay + splice ------------------
    edited_cold = _pipeline(edits=edits, incremental=False)
    edited_cold.build()
    edited_bytes = _bytes(edited_cold)
    localized = None
    localized_report = None
    for _ in range(REPEATS):
        pipeline = _pipeline(cache_dir, edits=edits)
        started = time.perf_counter()
        pipeline.build()
        localized = min(l for l in (localized, time.perf_counter() - started)
                        if l is not None)
        localized_report = pipeline.incremental_report
        assert localized_report.classification == "localized"
        assert _bytes(pipeline) == edited_bytes
        # Forget the edited build (journal dedup keeps the base build as
        # the candidate) so the next repeat splices again instead of
        # hitting its own entries.
        _drop_entries(cache_dir, pipeline.phase_keys)

    noop_speedup = cold / noop
    localized_speedup = cold / localized
    print(f"\nIncremental recomputation -- fill_words={SCALES[SCALE]} "
          f"({SCALE} scale, best of {REPEATS}, "
          f"{base_states:,} states / {base_traces} traces)")
    print(f"  cold build          : {cold * 1e3:8.1f} ms")
    print(f"  warm full hit       : {warm * 1e3:8.1f} ms "
          f"({cold / warm:6.1f}x)")
    print(f"  no-op source edit   : {noop * 1e3:8.1f} ms "
          f"({noop_speedup:6.1f}x, floor {MIN_NOOP}x)")
    print(f"  localized edit      : {localized * 1e3:8.1f} ms "
          f"({localized_speedup:6.1f}x, floor {MIN_LOCALIZED}x; "
          f"{localized_report.dirty_states} dirty state(s), "
          f"{localized_report.spliced_tours} trace(s) spliced, "
          f"{localized_report.regenerated_traces} regenerated)")

    payload = {
        "schema": "repro.bench-incremental/1",
        "scale": SCALE,
        "fill_words": SCALES[SCALE],
        "repeats": REPEATS,
        "edit": EDIT,
        "floors": {"noop": MIN_NOOP, "localized": MIN_LOCALIZED},
        "byte_identical": True,
        "cells": {
            "cold": {"seconds": cold},
            "warm": {"seconds": warm, "speedup": cold / warm},
            "noop": {
                "seconds": noop,
                "speedup": noop_speedup,
                "adopted_phases": list(noop_report.adopted_phases),
            },
            "localized": {
                "seconds": localized,
                "speedup": localized_speedup,
                "dirty_states": localized_report.dirty_states,
                "region_states": localized_report.region_states,
                "spliced_tours": localized_report.spliced_tours,
                "regenerated_traces": localized_report.regenerated_traces,
            },
        },
        "model": {"states": base_states, "traces": base_traces},
    }
    BENCH_OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  results written to {BENCH_OUT}")

    for cell, seconds in (("cold", cold), ("warm", warm), ("noop", noop),
                          ("localized", localized)):
        context = {
            "family": "incremental", "cell": cell, "scale": SCALE,
            "fill_words": SCALES[SCALE], "repeats": REPEATS,
            "cpus": os.cpu_count(),
        }
        if cell == "localized":
            context["edit"] = EDIT
        bench.append_history(str(HISTORY_OUT), bench.BenchResult(
            name=f"incremental.{cell}",
            context=context,
            metrics={
                "wall_seconds": bench.metric(seconds),
                "speedup_vs_cold": bench.metric(
                    cold / seconds, "x", higher_is_better=True,
                ),
            },
        ))
    print(f"  history entries appended to {HISTORY_OUT}")

    if MIN_NOOP:
        assert noop_speedup >= MIN_NOOP, (
            f"no-op adoption speedup {noop_speedup:.1f}x below the "
            f"{MIN_NOOP}x floor"
        )
    if MIN_LOCALIZED:
        assert localized_speedup >= MIN_LOCALIZED, (
            f"localized splice speedup {localized_speedup:.1f}x below the "
            f"{MIN_LOCALIZED}x floor"
        )
