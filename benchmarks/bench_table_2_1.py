"""Table 2.1 -- Synopsis of discovered bugs.

The paper reports six "multiple event" bugs found in the mature PP design
by the generated vectors but not (yet) by hand-written or random testing.
The reproduction injects each catalog bug and compares three strategies:

- **generated**: the transition-tour vectors (the paper's method),
- **random**: biased-random programs + realistic event probabilities, at
  a matching instruction budget,
- **directed**: the hand-written feature-at-a-time suite.

Shape to reproduce: generated finds 6/6; random and directed find strictly
fewer within the same budget.
"""

from repro.bugs import ALL_BUG_IDS, BUGS
from repro.core.report import format_campaign_table
from repro.harness.campaign import CampaignResult
from repro.pp.rtl.core import CoreConfig


def _evaluate_all(campaign, random_budget):
    results = []
    for bug_id in ALL_BUG_IDS:
        config = CoreConfig(mem_latency=0).with_bugs(bug_id)
        result = CampaignResult(bug_id=bug_id)
        result.outcomes["generated"] = campaign.run_generated(config)
        result.outcomes["random"] = campaign.run_random(
            config, instruction_budget=random_budget
        )
        result.outcomes["directed"] = campaign.run_directed(config)
        results.append(result)
    return results


def test_table_2_1(campaign, benchmark):
    random_budget = min(20_000, campaign.traces.total_instructions)
    results = benchmark.pedantic(
        _evaluate_all, args=(campaign, random_budget), rounds=1, iterations=1
    )
    print("\nTable 2.1 reproduction -- bug detection by method")
    print(format_campaign_table(results))
    for result in results:
        bug = BUGS[result.bug_id]
        print(f"  #{result.bug_id}: {bug.title}")

    generated_found = sum(r.outcomes["generated"].detected for r in results)
    random_found = sum(r.outcomes["random"].detected for r in results)
    directed_found = sum(r.outcomes["directed"].detected for r in results)
    print(
        f"\ngenerated {generated_found}/6, random {random_found}/6, "
        f"directed {directed_found}/6 (budget {random_budget} instructions)"
    )
    # Paper shape: the generated vectors find every multiple-event bug...
    assert generated_found == len(ALL_BUG_IDS)
    # ...while the status-quo methods find strictly fewer.
    assert random_found < generated_found
    assert directed_found < generated_found


def test_clean_design_no_false_positives(campaign, benchmark):
    outcome = benchmark.pedantic(
        campaign.run_generated, args=(CoreConfig(mem_latency=0),),
        kwargs={"stop_on_detection": False}, rounds=1, iterations=1,
    )
    assert not outcome.detected
    assert outcome.traces_run == campaign.traces.num_traces
