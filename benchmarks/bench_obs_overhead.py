"""Benchmark: observability instrumentation overhead on enumeration.

The observability layer claims a near-zero no-op fast path: with no sinks
configured, every hook resolves to the shared ``NULL_OBSERVER`` and hot
loops keep their accounting in local variables, flushing only at wave
boundaries.  This benchmark *asserts* that claim: instrumented
enumeration (``obs=None``) must be within 3% of an un-instrumented
baseline.

The baseline is a pristine in-file copy of the BFS loop as it existed
before instrumentation -- no observer parameter, no wave accounting --
so the comparison isolates exactly what the instrumentation added.

Measurement: CPU time (immune to scheduler contention on shared hosts),
paired rounds with alternating order (cancels frequency drift), median
across rounds (robust to outliers in both directions).  The
fully-sinked configuration (live metrics + tracer) is reported for
reference but not asserted, since its cost scales with wave count, not
transition count.
"""

import statistics
import time
from collections import deque

from repro.enumeration import enumerate_states
from repro.enumeration.graph import StateGraph
from repro.obs import MetricsRegistry, Observer, Tracer
from repro.pp.fsm_model import PPModelConfig, build_pp_control_model
from repro.smurphi.state import StateCodec

#: Acceptance bar: no-sink instrumented enumeration within 3% of baseline.
MAX_OVERHEAD = 0.03
ROUNDS = 12


def _enumerate_pristine(
    model, max_states=None, record_all_conditions=False, check_invariants=True
):
    """The BFS loop exactly as it was before observability landed,
    including the per-new-state cap and invariant branches."""
    codec = StateCodec(model.state_vars)
    graph = StateGraph(model.choice_names)

    reset = model.reset_state()
    model.validate_state(reset)
    reset_id, _ = graph.intern_state(codec.pack(reset))

    frontier = deque([reset_id])
    seen_arcs = set()
    transitions_explored = 0

    if check_invariants:
        violated = model.check_invariants(reset)
        if violated:
            raise AssertionError(violated)

    while frontier:
        src_id = frontier.popleft()
        src_state = codec.unpack(graph.state_key(src_id))
        for choice in model.enumerate_choices(src_state):
            transitions_explored += 1
            nxt = model.step(src_state, choice)
            dst_id, is_new = graph.intern_state(codec.pack(nxt))
            if is_new:
                if max_states is not None and graph.num_states > max_states:
                    raise AssertionError("cap exceeded")
                if check_invariants:
                    violated = model.check_invariants(nxt)
                    if violated:
                        raise AssertionError(violated)
                frontier.append(dst_id)
            condition = tuple(choice[name] for name in model.choice_names)
            if record_all_conditions:
                arc_key = (src_id, dst_id, condition)
            else:
                arc_key = (src_id, dst_id)
            if arc_key not in seen_arcs:
                seen_arcs.add(arc_key)
                graph.add_edge(src_id, dst_id, condition)

    return graph, transitions_explored


def _cpu_time(fn):
    started = time.process_time()
    fn()
    return time.process_time() - started


def test_no_sink_overhead_within_3_percent(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    model = build_pp_control_model(PPModelConfig(fill_words=1))

    # Warm up both paths (imports, allocator, branch predictors) before
    # timing.
    for _ in range(2):
        _enumerate_pristine(model)
        enumerate_states(model)

    baseline_samples, instrumented_samples = [], []
    for round_index in range(ROUNDS):
        if round_index % 2 == 0:
            baseline_samples.append(_cpu_time(lambda: _enumerate_pristine(model)))
            instrumented_samples.append(_cpu_time(lambda: enumerate_states(model)))
        else:
            instrumented_samples.append(_cpu_time(lambda: enumerate_states(model)))
            baseline_samples.append(_cpu_time(lambda: _enumerate_pristine(model)))
    baseline = statistics.median(baseline_samples)
    instrumented = statistics.median(instrumented_samples)

    observer = Observer(metrics=MetricsRegistry(), tracer=Tracer())
    sinked = statistics.median(
        _cpu_time(lambda: enumerate_states(model, obs=observer))
        for _ in range(3)
    )

    overhead = instrumented / baseline - 1.0
    print("\nObservability overhead -- enumeration, fill_words=1 "
          f"(median CPU time of {ROUNDS} interleaved rounds)")
    print(f"  pristine baseline   : {baseline:8.3f} s")
    print(f"  instrumented, no sink: {instrumented:7.3f} s "
          f"({100.0 * overhead:+.2f}%)")
    print(f"  live metrics+tracer : {sinked:8.3f} s "
          f"({100.0 * (sinked / baseline - 1.0):+.2f}%, reference only)")

    # Sanity: both paths did the same work.
    graph, transitions = _enumerate_pristine(model)
    obs_graph, stats = enumerate_states(model)
    assert obs_graph.to_json() == graph.to_json()
    assert stats.transitions_explored == transitions

    assert overhead <= MAX_OVERHEAD, (
        f"no-sink instrumentation overhead {100.0 * overhead:.2f}% exceeds "
        f"{100.0 * MAX_OVERHEAD:.0f}% budget"
    )
