"""Section 4 extension: squashing branches, measured.

The paper's stated next step ("adding new instruction classes and an
abstract model of the branch outcome determination") and its stated worry
("this situation will worsen when we include squashing branches into the
model, but we are still hopeful that the total number of control states
will remain manageable").  This benchmark measures exactly that: the
state/arc growth from the BR class and branch-outcome choice, tour
coverage of the extended graph, and divergence-free replay of the branch
vectors against the squashing-branch RTL.
"""

import pytest

from repro.enumeration import enumerate_states
from repro.harness.compare import run_vector_trace
from repro.pp.branches import BranchPPControlModel, BranchVectorGenerator
from repro.pp.fsm_model import PPModelConfig, build_pp_control_model
from repro.pp.rtl import CoreConfig
from repro.tour import TourGenerator
from repro.vectors import pp_instruction_cost


@pytest.fixture(scope="module")
def branch_artifacts():
    control = BranchPPControlModel(PPModelConfig(fill_words=1))
    graph, stats = enumerate_states(control.build())
    cost = pp_instruction_cost(control, graph)
    tours = TourGenerator(
        graph, instruction_cost=cost, max_instructions_per_trace=300
    ).generate()
    traces = BranchVectorGenerator(control, graph, seed=3).generate(list(tours))
    return control, graph, stats, tours, traces


def test_branch_model_growth(branch_artifacts, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _, _, stats, tours, _ = branch_artifacts
    _, base = enumerate_states(build_pp_control_model(PPModelConfig(fill_words=1)))
    state_growth = stats.num_states / base.num_states
    edge_growth = stats.num_edges / base.num_edges
    print(
        f"\nsquashing branches: {base.num_states:,} -> {stats.num_states:,} "
        f"states ({state_growth:.2f}x), {base.num_edges:,} -> "
        f"{stats.num_edges:,} arcs ({edge_growth:.2f}x); tours complete: "
        f"{tours.complete}"
    )
    # The paper's hope: growth stays manageable (well under the naive
    # |classes+1|^3 multiplier).
    assert 1.0 < state_growth < 3.0
    assert tours.complete


def test_branch_vectors_sound(branch_artifacts, benchmark):
    control, graph, _, _, traces = branch_artifacts

    def replay_all():
        config = CoreConfig(mem_latency=0, squashing_branches=True)
        return [run_vector_trace(t, config=config) for t in traces]

    results = benchmark.pedantic(replay_all, rounds=1, iterations=1)
    diverged = [i for i, r in enumerate(results) if r.diverged]
    print(f"\nbranch traces replayed: {len(results)}, diverging: {len(diverged)}")
    assert not diverged  # abstract outcomes realized correctly as beq/bne
