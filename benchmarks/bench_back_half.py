"""Benchmark: the accelerated pipeline back half (tours + vectors).

Claims measured:

1. **Indexed tour generation is >= 3x faster than the reference Fig. 3.3
   generator** at paper scale, while producing a bit-identical TourSet.
   The reference rebuilds a from-scratch BFS for every explore splice;
   the indexed generator amortizes that with a CSR adjacency and a
   reverse-BFS nearest-untraversed-arc distance field used purely for
   pruning/early exit, so queue order -- hence the tours -- never changes.
2. **Memoized vector generation is >= 2x faster than the pre-memo path**
   (one ``_step`` per unique ``(src_state, condition)`` pair instead of
   two model replays per traversed arc), bit-identical TraceSet.  The
   floor is asserted on the pipeline-realistic *warm* memo (the tour cost
   function touches every arc first, exactly as ``ValidationPipeline``
   does); the fresh-memo speedup is reported alongside.
3. **Parallel vector generation (jobs=4) is byte-identical to jobs=1.**
   Its speedup is reported but not floor-asserted: per-tour RNG streams
   make it deterministic at any worker count, but wall-clock gains need
   actual cores (this is report-only so single-CPU CI runners pass).

Floors are configurable via ``BENCH_BACKHALF_MIN_TOUR_SPEEDUP`` (default
3.0) and ``BENCH_BACKHALF_MIN_VECTOR_SPEEDUP`` (default 2.0) so noisy CI
runners can relax them.  Scale is selected with ``BENCH_BACKHALF_SCALE``:
``pp`` (default) is the paper-scale fill_words=2 model, ``small`` is
fill_words=1 for CI smoke runs.  Machine-readable results are written to
``BENCH_backhalf.json`` at the repo root (the legacy
``repro.bench-backhalf/1`` document), and each timed configuration also
appends one shared-schema (``repro.bench-result/1``) line to
``BENCH_history.jsonl`` for the ``repro bench`` regression gate.
"""

import json
import os
import pickle
import time
from pathlib import Path

from repro.enumeration import enumerate_states
from repro.obs import bench
from repro.pp.fsm_model import PPControlModel, PPModelConfig
from repro.tour import IndexedTourGenerator, TourGenerator
from repro.vectors import TransitionEventMemo, VectorGenerator, pp_instruction_cost

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_OUT = REPO_ROOT / "BENCH_backhalf.json"
HISTORY_OUT = REPO_ROOT / "BENCH_history.jsonl"

SCALES = {"small": 1, "pp": 2}
SCALE = os.environ.get("BENCH_BACKHALF_SCALE", "pp")
MIN_TOUR_SPEEDUP = float(os.environ.get("BENCH_BACKHALF_MIN_TOUR_SPEEDUP", "3.0"))
MIN_VECTOR_SPEEDUP = float(
    os.environ.get("BENCH_BACKHALF_MIN_VECTOR_SPEEDUP", "2.0")
)
#: Best-of-N timing to keep the floors robust against scheduling noise.
REPEATS = max(1, int(os.environ.get("BENCH_BACKHALF_REPEATS", "3")))

SEED = 7
LIMIT = 400


def _best_of(fn):
    """Run ``fn`` REPEATS times; return (best_seconds, last_result)."""
    best = None
    result = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = fn()
        trial = time.perf_counter() - started
        best = trial if best is None else min(best, trial)
    return best, result


def _build_graph():
    control = PPControlModel(PPModelConfig(fill_words=SCALES[SCALE]))
    graph, _ = enumerate_states(control.build())
    return control, graph


def tour_dump(tour_set):
    return [(t.edge_indices, t.instructions) for t in tour_set]


def test_back_half_speedup(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    control, graph = _build_graph()
    cost = pp_instruction_cost(control, graph)

    # --- Phase 1: tours -------------------------------------------------
    ref_seconds, ref_tours = _best_of(
        lambda: TourGenerator(
            graph, instruction_cost=cost, max_instructions_per_trace=LIMIT
        ).generate()
    )
    idx_seconds, idx_tours = _best_of(
        lambda: IndexedTourGenerator(
            graph, instruction_cost=cost, max_instructions_per_trace=LIMIT
        ).generate()
    )
    assert tour_dump(idx_tours) == tour_dump(ref_tours), (
        "indexed tours are not bit-identical to the reference"
    )
    tour_speedup = ref_seconds / idx_seconds
    tours = list(idx_tours)

    # --- Phase 2: vectors ----------------------------------------------
    # Baseline: the pre-memo path (two model replays per traversed arc).
    base_seconds, base_traces = _best_of(
        lambda: VectorGenerator(
            control, graph, seed=SEED, memoize=False
        ).generate(tours)
    )
    base_dump = pickle.dumps(base_traces.traces)

    # Warm memo: the pipeline-realistic configuration -- the tour phase's
    # cost function has already touched every arc.
    def _warm_run():
        memo = TransitionEventMemo(control, graph)
        warm_cost = pp_instruction_cost(control, graph, memo=memo)
        for edge in graph.edges():
            warm_cost(edge)
        return VectorGenerator(control, graph, seed=SEED, memo=memo)

    warm_gen = _warm_run()
    warm_seconds, warm_traces = _best_of(lambda: warm_gen.generate(tours))
    assert pickle.dumps(warm_traces.traces) == base_dump, (
        "memoized traces are not bit-identical to the baseline"
    )
    vector_speedup = base_seconds / warm_seconds

    # Fresh memo (cost function not pre-run) -- report only.
    fresh_seconds, fresh_traces = _best_of(
        lambda: VectorGenerator(control, graph, seed=SEED).generate(tours)
    )
    assert pickle.dumps(fresh_traces.traces) == base_dump
    fresh_speedup = base_seconds / fresh_seconds

    # Parallel: identity asserted, speedup report-only (needs real cores).
    par_seconds, par_traces = _best_of(
        lambda: VectorGenerator(control, graph, seed=SEED).generate(tours, jobs=4)
    )
    assert pickle.dumps(par_traces.traces) == base_dump, (
        "jobs=4 traces are not byte-identical to jobs=1"
    )
    parallel_speedup = base_seconds / par_seconds

    print(f"\nPipeline back half -- fill_words={SCALES[SCALE]} ({SCALE} scale), "
          f"{graph.num_states} states, {graph.num_edges} edges, "
          f"{len(tours)} tours")
    print(f"  tours     reference : {ref_seconds:7.3f} s")
    print(f"  tours     indexed   : {idx_seconds:7.3f} s "
          f"({tour_speedup:.2f}x, floor {MIN_TOUR_SPEEDUP}x)")
    print(f"  vectors   baseline  : {base_seconds:7.3f} s")
    print(f"  vectors   warm memo : {warm_seconds:7.3f} s "
          f"({vector_speedup:.2f}x, floor {MIN_VECTOR_SPEEDUP}x)")
    print(f"  vectors   fresh memo: {fresh_seconds:7.3f} s "
          f"({fresh_speedup:.2f}x, reported only)")
    print(f"  vectors   jobs=4    : {par_seconds:7.3f} s "
          f"({parallel_speedup:.2f}x, reported only; "
          f"cpus={os.cpu_count()})")

    payload = {
        "schema": "repro.bench-backhalf/1",
        "scale": SCALE,
        "fill_words": SCALES[SCALE],
        "seed": SEED,
        "max_instructions_per_trace": LIMIT,
        "repeats": REPEATS,
        "cpus": os.cpu_count(),
        "graph": {"states": graph.num_states, "edges": graph.num_edges},
        "tours": len(tours),
        "floors": {
            "tour": MIN_TOUR_SPEEDUP,
            "vector": MIN_VECTOR_SPEEDUP,
        },
        "phases": {
            "tours": {
                "before_seconds": ref_seconds,
                "after_seconds": idx_seconds,
                "speedup": tour_speedup,
                "bit_identical": True,
            },
            "vectors": {
                "before_seconds": base_seconds,
                "after_seconds": warm_seconds,
                "speedup": vector_speedup,
                "fresh_memo_seconds": fresh_seconds,
                "fresh_memo_speedup": fresh_speedup,
                "jobs4_seconds": par_seconds,
                "jobs4_speedup": parallel_speedup,
                "bit_identical": True,
            },
        },
    }
    BENCH_OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  results written to {BENCH_OUT}")

    # Shared-schema history entries for the regression gate.  The jobs=1
    # vs jobs=4 vector pair shares a context family, so the parallel-
    # efficiency check can compare them automatically.
    base_context = {
        "scale": SCALE, "fill_words": SCALES[SCALE], "seed": SEED,
        "limit": LIMIT, "repeats": REPEATS, "cpus": os.cpu_count(),
    }
    for name, family, jobs, seconds in (
        ("backhalf.tours.reference", "backhalf.tours.reference", 1, ref_seconds),
        ("backhalf.tours.indexed", "backhalf.tours.indexed", 1, idx_seconds),
        ("backhalf.vectors.baseline", "backhalf.vectors.baseline", 1, base_seconds),
        ("backhalf.vectors.warm-jobs1", "backhalf.vectors.warm", 1, warm_seconds),
        ("backhalf.vectors.fresh-jobs4", "backhalf.vectors.fresh", 4, par_seconds),
        ("backhalf.vectors.fresh-jobs1", "backhalf.vectors.fresh", 1, fresh_seconds),
    ):
        bench.append_history(str(HISTORY_OUT), bench.BenchResult(
            name=name,
            context={**base_context, "family": family, "jobs": jobs},
            metrics={"wall_seconds": bench.metric(seconds)},
        ))
    print(f"  history entries appended to {HISTORY_OUT}")

    assert tour_speedup >= MIN_TOUR_SPEEDUP, (
        f"indexed tour speedup {tour_speedup:.2f}x below the "
        f"{MIN_TOUR_SPEEDUP}x floor"
    )
    assert vector_speedup >= MIN_VECTOR_SPEEDUP, (
        f"memoized vector speedup {vector_speedup:.2f}x below the "
        f"{MIN_VECTOR_SPEEDUP}x floor"
    )
