"""Table 3.2 -- State enumeration statistics, sequential and parallel.

Paper (full PP control model, DecStation 5000/240):

    Number of States               229,571
    Number of bits per State            98
    Execution Time                  18,307 cpu secs
    Memory Requirement                  34 MB
    Number of Edges in State Graph 1,172,848

The ``full`` scale (``PPModelConfig.full()``: fill_words=6, three
write-back stages, a two-word spill buffer) reaches ~205K states --
the same order as the paper -- while the smaller sweep rows keep the
paper's *shape* observations checkable in seconds: the reachable set is
a vanishing fraction of the 2^bits product space, counts grow
monotonically with modeled detail, and the edges-per-state ratio stays
within an order of magnitude of the paper's ~5.

On top of the sequential Table 3.2 reproduction, every scale is
re-enumerated through :func:`enumerate_states_parallel` at each job
count in ``BENCH_TABLE32_JOBS`` (default ``1,2,4``) against one
persistent :class:`WorkerPool` per job count -- with the worker
generation retired before every timed run, because the pool's
content-based context tag would otherwise hand a repeat of the same
config fully warm successor memos and turn the cell into a memo-lookup
benchmark -- asserting the graph is
**bit-identical** to the sequential run (via ``graph.to_json()``
digests) every time.  At the largest scale the jobs=N speedup is
floor-asserted at ``N/2`` -- but only proportionally to the CPUs the
machine actually has (``min(jobs, cpus) / 2``), because a single-CPU
runner cannot exhibit parallel speedup no matter how good the dispatch
path is; ``BENCH_TABLE32_MIN_SPEEDUP`` overrides the computed floor
(CI uses a relaxed explicit floor on shared runners).

Environment knobs (precedent: ``BENCH_KERNEL_*`` / ``REPRO_BENCH_*``):

- ``BENCH_TABLE32_SCALE``: largest sweep row to run -- ``default``,
  ``branch``, ``mid`` or ``full`` (default ``full``; CI runs the
  reduced ``mid`` scale).
- ``BENCH_TABLE32_JOBS``: comma-separated job counts (default ``1,2,4``).
- ``BENCH_TABLE32_MIN_SPEEDUP``: explicit speedup floor for the largest
  scale's highest job count, replacing the CPU-aware default.
- ``BENCH_TABLE32_REPEATS``: best-of-N timing (default 1 -- the full
  scale takes ~a minute per enumeration).

Results go to ``BENCH_table_3_2.json`` (schema ``repro.bench-table32/1``).
Cells additionally append shared-schema ``repro.bench-result/1`` lines
to ``BENCH_history.jsonl`` so the ``repro bench`` regression gate and
the parallel-efficiency check cover the sweep -- but only cells that
make sound gate baselines: history is written only when
``BENCH_TABLE32_REPEATS >= 3`` (best-of-1 timings once seeded the gate
with warm-up skew and produced phantom regressions), and jobs>1 cells
are recorded only when the machine has at least that many CPUs (on a
1-CPU container a jobs=4 wall time is scheduling noise, not a
baseline).  Skipped cells still appear in ``BENCH_table_3_2.json``.
"""

import hashlib
import json
import os
import time
from pathlib import Path

from repro.enumeration import (
    enumerate_states,
    enumerate_states_parallel,
    make_worker_pool,
)
from repro.obs import bench
from repro.pp.fsm_model import PPModelConfig, build_pp_control_model

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_OUT = REPO_ROOT / "BENCH_table_3_2.json"
HISTORY_OUT = REPO_ROOT / "BENCH_history.jsonl"

BENCH_TABLE32_SCHEMA = "repro.bench-table32/1"

#: Sweep rows, smallest to largest; the env knob picks the largest row.
SCALES = [
    ("default", PPModelConfig(fill_words=2)),
    ("branch", PPModelConfig(fill_words=2, extra_pipe_stages=1,
                             model_branches=True)),
    ("mid", PPModelConfig(fill_words=2, extra_pipe_stages=2)),
    ("full", PPModelConfig.full()),
]

SCALE = os.environ.get("BENCH_TABLE32_SCALE", "full")
JOBS = [int(j) for j in
        os.environ.get("BENCH_TABLE32_JOBS", "1,2,4").split(",")]
REPEATS = max(1, int(os.environ.get("BENCH_TABLE32_REPEATS", "1")))

#: Minimum best-of repeats before a cell is trusted as a shared
#: regression-gate baseline in ``BENCH_history.jsonl``.
HISTORY_MIN_REPEATS = 3


def _speedup_floor(jobs: int) -> float:
    """The jobs=N floor: N/2, scaled down to the CPUs actually present."""
    explicit = os.environ.get("BENCH_TABLE32_MIN_SPEEDUP")
    if explicit:
        return float(explicit)
    return min(jobs, os.cpu_count() or 1) / 2.0


def _best_of(fn, before=None):
    best = None
    result = None
    for _ in range(REPEATS):
        if before is not None:
            before()
        started = time.perf_counter()
        result = fn()
        trial = time.perf_counter() - started
        best = trial if best is None else min(best, trial)
    return best, result


def _digest(graph) -> str:
    return hashlib.sha256(graph.to_json().encode()).hexdigest()


def test_table_3_2_parallel_sweep(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    names = [name for name, _ in SCALES]
    assert SCALE in names, f"BENCH_TABLE32_SCALE={SCALE!r}; known: {names}"
    sweep = SCALES[: names.index(SCALE) + 1]
    pools = {}

    print(f"\nTable 3.2 reproduction -- sequential + parallel enumeration "
          f"(cpus={os.cpu_count()}, repeats={REPEATS})")
    print(f"{'scale':<9}{'states':>10}{'bits':>6}{'edges':>11}{'seq s':>9}"
          + "".join(f"{f'jobs={j} s':>11}" for j in JOBS))

    # Untimed warm-up: the first enumeration of a process pays one-off
    # costs (imports, allocator growth, fork machinery) that land on
    # whichever cell happens to run first -- a committed history batch
    # once showed the sequential cell 4x slower than its jobs=2 sibling
    # for exactly this reason.
    warm_config = SCALES[0][1]
    enumerate_states(build_pp_control_model(warm_config))

    rows = []
    previous_states = 0
    try:
        for name, config in sweep:
            # Fresh model per timed run: kernels (and their successor
            # memos) cache per model object, so sharing one model would
            # let the sequential run warm the caches for the parallel
            # runs and inflate every speedup.
            seq_seconds, (graph, stats) = _best_of(
                lambda c=config: enumerate_states(build_pp_control_model(c))
            )
            seq_digest = _digest(graph)
            del graph

            cells = {}
            for jobs in JOBS:
                pool = pools.get(jobs)
                if pool is None:
                    pool = pools[jobs] = make_worker_pool(jobs)
                # Retire the worker generation before every timed run:
                # the pool's context tag is content-based, so a repeat
                # of the same config would otherwise dispatch into live
                # workers whose successor memos are fully warm -- a
                # memo-lookup benchmark, not an enumeration one (the
                # skew once recorded jobs=2 "4.5x faster" than
                # sequential on a 1-CPU container).  Each timed cell is
                # one cold enumeration: fork + cross-wave reuse, the
                # same cold-start the sequential cell pays.
                par_seconds, (par_graph, par_stats) = _best_of(
                    lambda c=config, j=jobs, p=pool:
                        enumerate_states_parallel(
                            build_pp_control_model(c), jobs=j, pool=p
                        ),
                    before=pool.retire,
                )
                bit_identical = _digest(par_graph) == seq_digest
                del par_graph
                assert bit_identical, (
                    f"{name} at jobs={jobs} diverged from the sequential "
                    f"graph ({par_stats.num_states} vs {stats.num_states} "
                    f"states)"
                )
                cells[jobs] = {
                    "wall_seconds": par_seconds,
                    "speedup_vs_sequential": seq_seconds / par_seconds,
                    "bit_identical": True,
                }

            print(f"{name:<9}{stats.num_states:>10,}"
                  f"{stats.bits_per_state:>6}{stats.num_edges:>11,}"
                  f"{seq_seconds:>9.1f}"
                  + "".join(f"{cells[j]['wall_seconds']:>11.1f}"
                            for j in JOBS))

            # Table 3.2 shape: interlocked FSMs leave the reachable set a
            # vanishing fraction of the product space, and more modeled
            # detail means monotonically more states.
            assert stats.reachable_fraction < 0.05
            assert stats.num_states > previous_states
            previous_states = stats.num_states

            rows.append({
                "scale": name,
                "config": {
                    "fill_words": config.fill_words,
                    "extra_pipe_stages": config.extra_pipe_stages,
                    "spill_words": config.spill_words,
                    "model_branches": config.model_branches,
                },
                "states": stats.num_states,
                "edges": stats.num_edges,
                "bits_per_state": stats.bits_per_state,
                "reachable_fraction": stats.reachable_fraction,
                "memory_mb": stats.approx_memory_bytes / 1e6,
                "sequential_seconds": seq_seconds,
                "parallel": {str(j): cells[j] for j in JOBS},
            })
    finally:
        for pool in pools.values():
            pool.shutdown()

    # Paper ratio: ~5 edges per state, within an order of magnitude.
    largest = rows[-1]
    assert 2 < largest["edges"] / largest["states"] < 12

    top_jobs = max(JOBS)
    floor = _speedup_floor(top_jobs)
    top_speedup = largest["parallel"][str(top_jobs)]["speedup_vs_sequential"]
    print(f"largest scale ({largest['scale']}): jobs={top_jobs} speedup "
          f"{top_speedup:.2f}x (floor {floor:.2f}x, cpus={os.cpu_count()})")

    payload = {
        "schema": BENCH_TABLE32_SCHEMA,
        "scale": SCALE,
        "jobs": JOBS,
        "repeats": REPEATS,
        "cpus": os.cpu_count(),
        "speedup_floor": {"jobs": top_jobs, "floor": floor},
        "paper": {"states": 229571, "edges": 1172848, "bits_per_state": 98},
        "rows": rows,
    }
    BENCH_OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"results written to {BENCH_OUT}")

    # Shared-schema history entries: one per (scale, jobs) cell, plus the
    # sequential baseline.  Each scale is its own context family, so the
    # parallel-efficiency check compares jobs within a scale -- never a
    # 2,135-state row against a 205K-state one.  History lines become
    # shared regression-gate baselines, so only measurement-quality
    # cells are written: repeats >= HISTORY_MIN_REPEATS, and jobs <=
    # cpus (a 1-CPU container's jobs=4 wall time is scheduling noise).
    cpus = os.cpu_count() or 1
    if REPEATS < HISTORY_MIN_REPEATS:
        print(f"history: skipped entirely (repeats={REPEATS} < "
              f"{HISTORY_MIN_REPEATS}; single-sample timings make noisy "
              f"gate baselines -- set BENCH_TABLE32_REPEATS="
              f"{HISTORY_MIN_REPEATS} to record)")
    else:
        appended = 0
        skipped = 0
        for row in rows:
            family = f"table32.enum.{row['scale']}"
            context = {
                "family": family, "scale": row["scale"],
                "states": row["states"], "cpus": cpus,
                "repeats": REPEATS, "kernel": "compiled",
            }
            bench.append_history(str(HISTORY_OUT), bench.BenchResult(
                name=f"{family}.sequential",
                context={**context, "jobs": 1},
                metrics={
                    "wall_seconds": bench.metric(row["sequential_seconds"]),
                    "states_per_second": bench.metric(
                        row["states"] / row["sequential_seconds"],
                        "states/s", higher_is_better=True,
                    ),
                },
            ))
            appended += 1
            for jobs in JOBS:
                if jobs <= 1:
                    continue  # the sequential entry is the family's jobs=1
                if jobs > cpus:
                    skipped += 1
                    continue
                cell = row["parallel"][str(jobs)]
                bench.append_history(str(HISTORY_OUT), bench.BenchResult(
                    name=f"{family}.jobs{jobs}",
                    context={**context, "jobs": jobs},
                    metrics={
                        "wall_seconds": bench.metric(cell["wall_seconds"]),
                        "states_per_second": bench.metric(
                            row["states"] / cell["wall_seconds"],
                            "states/s", higher_is_better=True,
                        ),
                    },
                ))
                appended += 1
        note = (f"; {skipped} jobs>cpus cell(s) left out (cpus={cpus} -- "
                f"recorded in {BENCH_OUT.name} only)" if skipped else "")
        print(f"history: {appended} entries appended to {HISTORY_OUT}{note}")

    assert top_speedup >= floor, (
        f"jobs={top_jobs} speedup {top_speedup:.2f}x at the "
        f"{largest['scale']} scale is below the {floor:.2f}x floor "
        f"(cpus={os.cpu_count()})"
    )


def test_enumeration_kernel(benchmark):
    model = build_pp_control_model(PPModelConfig(fill_words=2))
    graph, stats = benchmark.pedantic(
        enumerate_states, args=(model,), rounds=1, iterations=1
    )
    print("\n" + stats.format_table())
    assert stats.num_states == 2135
    assert stats.num_edges == 13329
