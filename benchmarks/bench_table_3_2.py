"""Table 3.2 -- State enumeration statistics.

Paper (full PP control model, DecStation 5000/240):

    Number of States               229,571
    Number of bits per State            98
    Execution Time                  18,307 cpu secs
    Memory Requirement                  34 MB
    Number of Edges in State Graph 1,172,848

Our control model is smaller (fewer units are modeled and counters are
narrower), so absolute counts differ; the *shape* to reproduce is the
paper's key observation: reachable states are a vanishing fraction of the
2^bits product space because the FSMs interlock through the shared memory
port and mutual stalls.  The benchmark sweeps the scaling knobs to show
counts and the reachable fraction at each scale.
"""

import pytest

from repro.enumeration import enumerate_states
from repro.pp.fsm_model import PPModelConfig, build_pp_control_model

SWEEP = [
    PPModelConfig(fill_words=1),
    PPModelConfig(fill_words=2),
    PPModelConfig(fill_words=4),
    PPModelConfig(fill_words=2, extra_pipe_stages=1),
    PPModelConfig(fill_words=4, extra_pipe_stages=2),
]


def test_table_3_2_sweep(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nTable 3.2 reproduction -- enumeration statistics by model scale")
    print(f"{'config':<36}{'states':>10}{'bits':>6}{'edges':>10}"
          f"{'secs':>8}{'MB':>7}  reachable/2^bits")
    previous_states = 0
    for config in SWEEP:
        model = build_pp_control_model(config)
        graph, stats = enumerate_states(model)
        label = (f"fw={config.fill_words},wb={config.extra_pipe_stages}")
        print(
            f"{label:<36}{stats.num_states:>10,}{stats.bits_per_state:>6}"
            f"{stats.num_edges:>10,}{stats.elapsed_seconds:>8.1f}"
            f"{stats.approx_memory_bytes / 1e6:>7.1f}  "
            f"{stats.reachable_fraction:.2e}"
        )
        # Interlock shape: reachable set far below the product space.
        assert stats.reachable_fraction < 0.05
        # More modeled detail -> more states, monotonically.
        assert stats.num_states > previous_states
        previous_states = stats.num_states
    # The largest config is within an order of magnitude of the paper's
    # state-per-edge ratio (~5 edges per state).
    assert 2 < stats.num_edges / stats.num_states < 12


def test_enumeration_kernel(benchmark):
    model = build_pp_control_model(PPModelConfig(fill_words=2))
    graph, stats = benchmark.pedantic(
        enumerate_states, args=(model,), rounds=1, iterations=1
    )
    print("\n" + stats.format_table())
    assert stats.num_states == 2135
    assert stats.num_edges == 13329
