"""Shared fixtures for the benchmark suite.

The expensive pipeline artifacts (state graph, tours, vector traces) are
design-dependent but experiment-independent, so they are built once per
session and shared across benchmarks.
"""

import pytest

from repro.harness.campaign import ValidationCampaign
from repro.pp.fsm_model import PPModelConfig


@pytest.fixture(scope="session")
def campaign():
    """The standard campaign: fill_words=2 control model, Fig. 3.3 tours
    with a 400-instruction trace limit, seed 7."""
    return ValidationCampaign(
        model_config=PPModelConfig(fill_words=2),
        seed=7,
        max_instructions_per_trace=400,
    )
