"""Table 1.1 -- Classification of MIPS R4000 errata.

Paper reports, over 46 errata:

    Pipeline/Datapath ONLY bugs      3    6.5%
    Single Control Logic Bugs       17   37.0%
    Multiple Event Bugs             26   56.5%

The reproduction classifies the synthesized 46-entry dataset with the
structural classifier and regenerates the same rows.
"""

from repro.errata import BugClass, R4000_ERRATA, classification_breakdown, classify
from repro.errata.classify import format_table

PAPER_COUNTS = {
    BugClass.DATAPATH_ONLY: 3,
    BugClass.SINGLE_CONTROL: 17,
    BugClass.MULTIPLE_EVENT: 26,
}


def test_table_1_1(benchmark):
    rows = benchmark(classification_breakdown)
    print("\n" + format_table())
    measured = {bug_class: count for bug_class, count, _ in rows}
    assert measured == PAPER_COUNTS
    total = sum(measured.values())
    assert total == 46
    # The headline shape: the majority of escaped bugs are multiple-event.
    assert measured[BugClass.MULTIPLE_EVENT] / total > 0.5


def test_classifier_throughput(benchmark):
    def classify_all():
        return [classify(e) for e in R4000_ERRATA]

    results = benchmark(classify_all)
    assert len(results) == 46
