"""Fig. 4.2 -- Erroneous implementation with FEWER behaviours (merged
transitions), and the paper's proposed fix.

The spec takes a: A->B and c: A->C; the faulty implementation performs the
same transition for both inputs (a, c: A->B).  With the paper's default
enumeration, each arc is labeled with the *first* condition that led to
the new state, so either "a" or "c" labels the merged arc -- and the wrong
"c" transition may never be exercised, hiding the bug (the methodology's
acknowledged blind spot).

The paper proposes capturing all unique transition conditions; our
enumerator implements that as ``record_all_conditions=True``.  This
benchmark demonstrates the miss and measures the fix.
"""

import pytest

from repro.enumeration import enumerate_states
from repro.smurphi import ChoicePoint, EnumType, StateVar, SyncModel
from repro.tour import TourGenerator

INPUTS = EnumType("inp", ["a", "b", "c"])


def spec_model():
    def nxt(s, ch):
        state, inp = s["s"], ch["inp"]
        if state == "A" and inp == "a":
            return {"s": "B"}
        if state == "A" and inp == "c":
            return {"s": "C"}
        if state in ("B", "C") and inp == "b":
            return {"s": "A"}
        return {"s": state}

    return SyncModel(
        "fig42_spec",
        state_vars=[StateVar("s", EnumType("st", ["A", "B", "C"]), "A")],
        choices=[ChoicePoint("inp", INPUTS)],
        next_state=nxt,
    )


def impl_model():
    def nxt(s, ch):
        state, inp = s["s"], ch["inp"]
        if state == "A" and inp in ("a", "c"):
            return {"s": "B"}  # ERROR: "c" should go to C
        if state in ("B", "C") and inp == "b":
            return {"s": "A"}
        return {"s": state}

    return SyncModel(
        "fig42_impl",
        state_vars=[StateVar("s", EnumType("st", ["A", "B", "C"]), "A")],
        choices=[ChoicePoint("inp", INPUTS)],
        next_state=nxt,
    )


def _count_divergences(graph, model, tours, impl, spec):
    divergences = 0
    for tour in tours:
        impl_state, spec_state = impl.reset_state(), spec.reset_state()
        for index in tour.edge_indices:
            edge = graph.edge(index)
            choice = dict(zip(model.choice_names, edge.condition))
            impl_state = impl.step(impl_state, choice)
            spec_state = spec.step(spec_state, choice)
            if impl_state != spec_state:
                divergences += 1
    return divergences


def test_fig_4_2_first_condition_misses_the_bug(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    impl, spec = impl_model(), spec_model()
    graph, stats = enumerate_states(impl)  # default: first condition only
    tours = TourGenerator(graph).generate()
    divergences = _count_divergences(graph, impl, list(tours), impl, spec)
    conditions = {
        edge.condition for edge in graph.edges()
        if graph.state_key(edge.src) != graph.state_key(edge.dst)
    }
    print(f"\nfirst-condition enumeration: {stats.num_edges} arcs; "
          f"A->B labeled with {sorted(c[0] for c in conditions)}; "
          f"divergences: {divergences}")
    # 'a' is tried before 'c', so the merged arc carries 'a' and the wrong
    # 'c' transition is never exercised: the bug escapes.
    assert divergences == 0


def test_fig_4_2_all_conditions_catches_the_bug(benchmark):
    impl, spec = impl_model(), spec_model()

    def enumerate_fixed():
        return enumerate_states(impl, record_all_conditions=True)

    graph, stats = benchmark.pedantic(enumerate_fixed, rounds=1, iterations=1)
    tours = TourGenerator(graph).generate()
    divergences = _count_divergences(graph, impl, list(tours), impl, spec)
    print(f"\nall-conditions enumeration: {stats.num_edges} arcs; "
          f"divergences: {divergences}")
    # Both (A->B, a) and (A->B, c) are arcs now; the tour drives 'c' and
    # the comparison exposes the merged transition.
    assert divergences > 0


def test_fix_cost_is_bounded(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """The fix multiplies arcs by at most the choice-domain size."""
    impl = impl_model()
    first, base_stats = enumerate_states(impl)
    full, fixed_stats = enumerate_states(impl, record_all_conditions=True)
    ratio = fixed_stats.num_edges / base_stats.num_edges
    print(f"\narc inflation from recording all conditions: {ratio:.2f}x")
    assert base_stats.num_states == fixed_stats.num_states
    assert 1.0 <= ratio <= len(INPUTS.values())
