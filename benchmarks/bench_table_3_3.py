"""Table 3.3 -- Test vector generation statistics.

Paper (PP graph, 1,172,848 arcs):

                              no limit      10,000-instr limit
    Traces generated             1,296                   1,296
    Edge traversals         21,200,173              21,252,235
    Instructions             8,521,468               8,557,660
    Longest trace           21,197,977 edges           144,520 edges
    Est. sim @100Hz (longest)  58.9 hours              24 mins

Shape to reproduce on our (smaller) graph:

1. splitting at an instruction limit leaves the trace count in the same
   family (reset-only initial conditions lower-bound it) while adding only
   a tiny traversal/instruction overhead;
2. the longest trace collapses by orders of magnitude -- the practical win
   (time to re-reach a bug in re-simulation);
3. a modest number of instructions tests each arc (paper: ~7).
"""

import pytest

from repro.enumeration import enumerate_states
from repro.pp.fsm_model import PPControlModel, PPModelConfig
from repro.tour import TourGenerator, arc_coverage
from repro.vectors import VectorGenerator, pp_instruction_cost


@pytest.fixture(scope="module")
def graph_and_cost():
    control = PPControlModel(PPModelConfig(fill_words=2))
    graph, _ = enumerate_states(control.build())
    return control, graph, pp_instruction_cost(control, graph)


def _row(label, stats):
    print(
        f"{label:<22}{stats.num_traces:>8}{stats.total_edge_traversals:>12,}"
        f"{stats.total_instructions:>12,}{stats.longest_trace_edges:>10,}"
        f"{stats.generation_seconds:>8.1f}"
        f"{stats.estimated_longest_trace_hours() * 60:>12.1f}"
    )


def test_table_3_3(graph_and_cost, benchmark):
    control, graph, cost = graph_and_cost

    def generate_both():
        unlimited = TourGenerator(graph, instruction_cost=cost).generate()
        limited = TourGenerator(
            graph, instruction_cost=cost, max_instructions_per_trace=400
        ).generate()
        return unlimited, limited

    unlimited, limited = benchmark.pedantic(generate_both, rounds=1, iterations=1)

    print("\nTable 3.3 reproduction -- tour generation statistics")
    print(f"{'':<22}{'traces':>8}{'traversals':>12}{'instrs':>12}"
          f"{'longest':>10}{'secs':>8}{'longest@100Hz':>12}")
    _row("no limit", unlimited.stats)
    _row("400-instr limit", limited.stats)
    print(f"instructions per arc: {limited.stats.instructions_per_arc:.2f} "
          f"(paper: ~7)")

    assert unlimited.complete and limited.complete
    # 1. Splitting only ever adds traces (the paper's 1,296-trace floor
    #    came from reset-only input conditions its model had; our smaller
    #    model covers in a single unlimited tour, so the floor is 1) and
    #    the limited count is governed by total instructions / limit.
    assert limited.stats.num_traces >= unlimited.stats.num_traces
    assert limited.stats.num_traces <= 2 * (limited.stats.total_instructions // 400 + 1)
    # 2. The longest trace collapses by more than an order of magnitude.
    assert limited.stats.longest_trace_edges * 10 < unlimited.stats.longest_trace_edges
    # 3. Splitting adds only modest traversal overhead (paper: +0.25%;
    #    allow generous slack at our scale).
    overhead = (
        limited.stats.total_edge_traversals
        / unlimited.stats.total_edge_traversals
    )
    print(f"traversal overhead from splitting: {(overhead - 1) * 100:.2f}%")
    assert overhead < 1.5
    # 4. A modest number of instructions tests each arc.
    assert 0.5 < limited.stats.instructions_per_arc < 30


def test_first_trace_dominates_without_limit(graph_and_cost, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Paper: without a limit, >99% of instructions land in trace 1; the
    # remaining traces exist only to cover reset-only initial conditions.
    control, graph, cost = graph_and_cost
    unlimited = TourGenerator(graph, instruction_cost=cost).generate()
    first = unlimited.tours[0]
    fraction = first.instructions / max(1, unlimited.stats.total_instructions)
    print(f"\nfirst trace holds {fraction * 100:.1f}% of all instructions")
    assert fraction > 0.5


def test_union_of_tours_covers_every_arc(graph_and_cost, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    control, graph, cost = graph_and_cost
    limited = TourGenerator(
        graph, instruction_cost=cost, max_instructions_per_trace=400
    ).generate()
    report = arc_coverage(graph, (t.edge_indices for t in limited))
    assert report.complete
    print(f"\ncoverage: {report.covered_edges:,}/{report.graph_edges:,} arcs, "
          f"redundancy {report.redundancy:.2f}x")


def test_vector_generation_kernel(graph_and_cost, benchmark):
    control, graph, cost = graph_and_cost
    limited = TourGenerator(
        graph, instruction_cost=cost, max_instructions_per_trace=400
    ).generate()
    generator = VectorGenerator(control, graph, seed=7)
    traces = benchmark.pedantic(
        generator.generate, args=(list(limited),), rounds=1, iterations=1
    )
    assert traces.total_instructions == limited.stats.total_instructions
