"""Table 3.1 -- PP instruction classes, and the abstraction's payoff.

The paper collapses ~100 opcodes into five control-relevant classes
(plus bubbles) because "from the control's perspective many instruction
executions look the same"; this is the key lever against state explosion.

The reproduction (a) regenerates the table itself and (b) measures the
ablation: enumerating the same control model with *unabstracted* opcodes
(every ALU opcode kept distinct in the pipeline registers) multiplies the
reachable state count, while the class abstraction leaves the transition
structure intact.
"""

import pytest

from repro.enumeration import enumerate_states
from repro.pp.fsm_model import PPControlModel, PPModelConfig
from repro.pp.isa import INSTRUCTION_CLASS_EFFECTS, InstructionClass, OPCODES_BY_CLASS
from repro.smurphi import ChoicePoint, EnumType, StateVar, SyncModel


def test_table_3_1_classes(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nTable 3.1 -- PP instruction classes")
    for klass in InstructionClass:
        print(f"  {klass.value:<8} {INSTRUCTION_CLASS_EFFECTS[klass]}")
        assert INSTRUCTION_CLASS_EFFECTS[klass]
    assert len(InstructionClass) == 5


def _unabstracted_model(num_alu_opcodes: int) -> SyncModel:
    """The PP control model *without* the class abstraction: each ALU
    opcode stays distinct in the abstract pipeline registers, even though
    the control treats them all identically."""
    control = PPControlModel(PPModelConfig(fill_words=1))
    alu_names = [f"ALU{i}" for i in range(num_alu_opcodes)]
    raw = ["BUBBLE"] + alu_names + ["LD", "SD", "SWITCH", "SEND"]
    pipe = EnumType("raw_opcode", raw)

    def collapse(value):
        return "ALU" if value.startswith("ALU") else value

    def expand_state(state):
        return dict(state, **{
            k: collapse(state[k]) for k in ("ifq", "ex", "mem")
        })

    def next_state(state, choice):
        collapsed_state = expand_state(state)
        collapsed_choice = dict(
            choice, fetch_class=collapse(choice["fetch_class"])
        )
        abstract = control.step(collapsed_state, collapsed_choice)
        events = control.transition_events(collapsed_state, collapsed_choice)
        advanced = any(e[0] == "pipe_advance" for e in events)
        fetched = any(e[0] == "fetch" and e[2] for e in events)
        result = dict(abstract)
        # Move raw opcodes through the pipe exactly where the abstract
        # model moved classes.
        if advanced:
            result["mem"] = state["ex"]
            result["ex"] = state["ifq"]
            new_ifq = "BUBBLE"
        else:
            result["mem"] = state["mem"]
            result["ex"] = state["ex"]
            new_ifq = state["ifq"]
        if fetched:
            new_ifq = choice["fetch_class"]
        result["ifq"] = new_ifq
        return result

    state_vars = []
    for var in control.state_vars:
        if var.name in ("ifq", "ex", "mem"):
            state_vars.append(StateVar(var.name, pipe, "BUBBLE"))
        else:
            state_vars.append(var)
    choices = []
    for point in control.choices:
        if point.name == "fetch_class":
            choices.append(
                ChoicePoint(
                    "fetch_class",
                    EnumType("raw_fetch", alu_names + ["LD", "SD", "SWITCH", "SEND"]),
                    guard=point.guard,
                )
            )
        else:
            choices.append(point)
    return SyncModel(
        f"pp_control_unabstracted({num_alu_opcodes} ALU opcodes)",
        state_vars=state_vars,
        choices=choices,
        next_state=next_state,
    )


@pytest.mark.parametrize("num_alu_opcodes", [3, 6])
def test_abstraction_ablation(benchmark, num_alu_opcodes):
    abstract_graph, abstract_stats = enumerate_states(
        PPControlModel(PPModelConfig(fill_words=1)).build()
    )
    raw_model = _unabstracted_model(num_alu_opcodes)
    raw_graph, raw_stats = benchmark.pedantic(
        enumerate_states, args=(raw_model,),
        kwargs={"check_invariants": False, "max_states": 3_000_000},
        rounds=1, iterations=1,
    )
    blowup = raw_stats.num_states / abstract_stats.num_states
    print(
        f"\nclass abstraction: {abstract_stats.num_states:,} states; "
        f"{num_alu_opcodes} distinct ALU opcodes: {raw_stats.num_states:,} "
        f"states ({blowup:.1f}x blowup)"
    )
    # The paper's rationale: distinguishing control-equivalent opcodes
    # multiplies the state space without adding control behaviour.
    assert raw_stats.num_states > 2 * abstract_stats.num_states
