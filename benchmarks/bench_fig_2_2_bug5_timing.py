"""Figs. 2.2 / 2.3 -- Bug #5 timing diagrams.

The paper's illustrative bug: a load that missed drives its critical word
onto Membus; a following load/store glitches Membus-valid; the refill
logic re-drives the data (masking the glitch, Fig. 2.2) -- unless an
external stall lands between the glitch and the second write, leaving
garbage in the register file (Fig. 2.3).

The benchmark replays the distilled trigger in both window positions and
renders the event timelines as ASCII timing diagrams.
"""

from repro.bugs import injected_config
from repro.bugs.scenarios import bug5_masked_scenario, bug_scenarios
from repro.harness.compare import run_trace
from repro.pp.rtl import GARBAGE_Z, PPCore

TRACKED = [
    "load_miss", "membus_drive", "membus_glitch", "external_stall",
    "bug5_stall_in_window", "membus_redrive_masked", "bug5_garbage_latched",
    "reg_write",
]


def _run(scenario):
    core = PPCore(
        scenario.program, injected_config(5), scenario.stimulus(),
        inbox_tasks=[0x111, 0x222], trace=True,
    )
    core.run()
    return core


def _diagram(title, core):
    events = [e for e in core.events if e.name in TRACKED]
    if not events:
        return
    start = min(e.cycle for e in events)
    end = max(e.cycle for e in events)
    print(f"\n{title}")
    print(f"{'cycle':>7}  " + " ".join(f"{c % 100:>2}" for c in range(start, end + 1)))
    for name in TRACKED:
        cells = []
        for cycle in range(start, end + 1):
            hit = any(e.cycle == cycle and e.name == name for e in events)
            cells.append(" #" if hit else " .")
        if "#" in "".join(cells):
            print(f"{name[:20]:>20} " + " ".join(c.strip() or "." for c in cells))


def test_fig_2_3_garbage_written(benchmark):
    scenario = bug_scenarios()[5]
    core = benchmark.pedantic(_run, args=(scenario,), rounds=1, iterations=1)
    _diagram("Fig 2.3 -- external stall in window: garbage latched", core)
    names = [e.name for e in core.events]
    assert "membus_glitch" in names
    assert "bug5_garbage_latched" in names
    assert core.regfile.read(2) == GARBAGE_Z
    result = run_trace(
        scenario.program, scenario.stimulus(), config=injected_config(5)
    )
    assert result.diverged  # the comparison framework catches it
    print(f"register r2 = {core.regfile.read(2):#010x} (Z garbage)")


def test_fig_2_2_glitch_masked(benchmark):
    scenario = bug5_masked_scenario()
    core = benchmark.pedantic(_run, args=(scenario,), rounds=1, iterations=1)
    _diagram("Fig 2.2 -- no stall in window: data re-written, glitch masked", core)
    names = [e.name for e in core.events]
    assert "membus_glitch" in names
    assert "membus_redrive_masked" in names
    assert "bug5_garbage_latched" not in names
    assert core.regfile.read(2) == 42
    result = run_trace(
        scenario.program, scenario.stimulus(), config=injected_config(5)
    )
    # A performance bug only: result comparison cannot see it (paper 4).
    assert result.clean
    print(f"register r2 = {core.regfile.read(2):#010x} (correct; "
          "performance bug invisible to result comparison)")


def test_window_probability_shape(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    """Why random testing misses bug #5: the stall must land in a
    ~3-cycle window, on top of an already-improbable conjunction."""
    scenario = bug_scenarios()[5]
    # Sweep the cycle at which the Inbox becomes ready: only some
    # positions leave a stall inside the glitch window.
    corrupted = 0
    positions = range(0, 8)
    for ready_after in positions:
        scenario.inbox_ready = [False] * ready_after + [True]
        core = _run(scenario)
        if core.regfile.read(2) == GARBAGE_Z:
            corrupted += 1
    print(f"\n{corrupted}/{len(positions)} stall positions corrupt the register")
    assert 0 < corrupted < len(positions)
