"""Ablation: the greedy Fig. 3.3 tour generator vs the Chinese-Postman
optimum, and the cost of restart-from-reset tours.

The paper deliberately rejects a single optimal transition tour (section
3.3): tours must restart from reset for concurrent simulation and short
re-runs, and re-traversing arcs is cheap while backtracking is not.  This
benchmark quantifies what that buys and what it costs:

- on strongly-connected graphs, greedy traversal count vs the CPP
  lower bound (the price of greediness);
- on the PP graph, total traversals vs arc count (the price of restarts
  and splicing, since the optimum is not defined for reset-only arcs).
"""

import random

import pytest

from repro.enumeration import StateGraph, enumerate_states
from repro.pp.fsm_model import PPControlModel, PPModelConfig
from repro.tour import (
    TourGenerator,
    arc_coverage,
    chinese_postman_tour,
    postman_lower_bound,
)


def random_strongly_connected(n, extra, seed):
    rng = random.Random(seed)
    graph = StateGraph(["c"])
    for key in range(n):
        graph.intern_state(key)
    for i in range(n):  # a ring guarantees strong connectivity
        graph.add_edge(i, (i + 1) % n, (i,))
    for j in range(extra):
        graph.add_edge(rng.randrange(n), rng.randrange(n), (n + j,))
    return graph


@pytest.mark.parametrize("n,extra,seed", [(20, 30, 1), (50, 100, 2), (100, 300, 3)])
def test_greedy_vs_postman_optimum(benchmark, n, extra, seed):
    graph = random_strongly_connected(n, extra, seed)
    optimum = postman_lower_bound(graph)
    tours = benchmark.pedantic(
        TourGenerator(graph).generate, rounds=1, iterations=1
    )
    assert tours.complete
    ratio = tours.stats.total_edge_traversals / optimum
    print(f"\nn={n} arcs={graph.num_edges}: greedy "
          f"{tours.stats.total_edge_traversals} vs CPP optimum {optimum} "
          f"({ratio:.2f}x)")
    assert ratio >= 1.0
    # Greedy-with-splicing stays within a small constant of optimal.
    assert ratio < 4.0


def test_postman_walk_is_valid_cover(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    graph = random_strongly_connected(30, 60, 4)
    walk = chinese_postman_tour(graph)
    report = arc_coverage(graph, [walk])
    assert report.complete
    assert report.total_traversals == postman_lower_bound(graph)


def test_pp_graph_redundancy(benchmark):
    control = PPControlModel(PPModelConfig(fill_words=1))
    graph, _ = enumerate_states(control.build())
    tours = benchmark.pedantic(
        TourGenerator(graph).generate, rounds=1, iterations=1
    )
    assert tours.complete
    redundancy = tours.stats.total_edge_traversals / graph.num_edges
    print(f"\nPP graph: {graph.num_edges:,} arcs covered with "
          f"{tours.stats.total_edge_traversals:,} traversals "
          f"({redundancy:.2f}x redundancy, {tours.stats.num_traces} traces)")
    # The paper's PP numbers give ~18x (21.2M traversals / 1.17M arcs);
    # ours should be the same order of magnitude.
    assert redundancy < 40
