"""Benchmark: the compiled transition kernel vs the interpreted one.

Claims measured:

1. **Compiled enumeration is >= 3x faster than interpreted** (sequential,
   cold kernel, compile time included).  The floor is configurable via
   ``BENCH_KERNEL_MIN_SPEEDUP`` so CI runners with noisy neighbours can
   assert a relaxed 1.5x instead; locally the default 3.0 holds.
2. **Both kernels produce bit-identical graphs** at jobs=1 and jobs=4 --
   asserted on the serialized JSON, not just on counts.
3. **The successor memo pays for itself on re-enumeration**: a second run
   over the same model (e.g. the ``record_all_conditions`` ablation)
   expands every state from the memo.

Scale is selected with ``BENCH_KERNEL_SCALE``: ``pp`` (default) is the
paper-scale fill_words=2 model, ``small`` is fill_words=1 for CI smoke
runs.  Machine-readable results are written to ``BENCH_kernel.json`` at
the repo root (the legacy ``repro.bench-kernel/1`` document), and every
kernel x jobs run also appends one shared-schema
(``repro.bench-result/1``) line to ``BENCH_history.jsonl`` so the
regression gate (``repro bench``) sees these numbers too.
"""

import json
import os
import time
from pathlib import Path

from repro.enumeration import (
    compile_model,
    enumerate_states,
    enumerate_states_parallel,
)
from repro.obs import bench
from repro.pp.fsm_model import PPModelConfig, build_pp_control_model

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_OUT = REPO_ROOT / "BENCH_kernel.json"
HISTORY_OUT = REPO_ROOT / "BENCH_history.jsonl"

SCALES = {"small": 1, "pp": 2}
SCALE = os.environ.get("BENCH_KERNEL_SCALE", "pp")
MIN_SPEEDUP = float(os.environ.get("BENCH_KERNEL_MIN_SPEEDUP", "3.0"))
#: Best-of-N timing (each repeat cold: fresh model, fresh kernel) to keep
#: the speedup assertion robust against noisy-neighbour scheduling.
REPEATS = max(1, int(os.environ.get("BENCH_KERNEL_REPEATS", "3")))


def _fresh_model():
    # A fresh instance per run: kernels (and their memos) are cached per
    # model object, so reuse would let a prior run pre-warm the next one.
    return build_pp_control_model(PPModelConfig(fill_words=SCALES[SCALE]))


def _run(kernel, jobs):
    elapsed = None
    for _ in range(REPEATS):
        model = _fresh_model()
        started = time.perf_counter()
        if jobs == 1:
            graph, stats = enumerate_states(model, kernel=kernel)
        else:
            graph, stats = enumerate_states_parallel(model, jobs=jobs, kernel=kernel)
        trial = time.perf_counter() - started
        elapsed = trial if elapsed is None else min(elapsed, trial)
    return {
        "kernel": kernel,
        "jobs": jobs,
        "seconds": elapsed,
        "repeats": REPEATS,
        "states": stats.num_states,
        "edges": stats.num_edges,
        "transitions_explored": stats.transitions_explored,
        "states_per_second": stats.num_states / elapsed,
        "transitions_per_second": stats.transitions_explored / elapsed,
    }, graph


def test_compiled_kernel_speedup(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    graphs = {}
    for kernel in ("interpreted", "compiled"):
        for jobs in (1, 4):
            row, graph = _run(kernel, jobs)
            rows.append(row)
            graphs[(kernel, jobs)] = graph.to_json()

    # Bit-identity across every kernel x jobs combination.
    reference = graphs[("interpreted", 1)]
    for key, serialized in graphs.items():
        assert serialized == reference, f"graph mismatch for {key}"

    by = {(r["kernel"], r["jobs"]): r for r in rows}
    speedup_seq = by[("interpreted", 1)]["seconds"] / by[("compiled", 1)]["seconds"]
    speedup_par = by[("interpreted", 4)]["seconds"] / by[("compiled", 4)]["seconds"]

    print(f"\nTransition kernel -- fill_words={SCALES[SCALE]} ({SCALE} scale)")
    for row in rows:
        print(f"  {row['kernel']:>11} jobs={row['jobs']}: "
              f"{row['seconds']:7.3f} s  "
              f"{row['states_per_second']:10,.0f} states/s  "
              f"{row['transitions_per_second']:12,.0f} transitions/s")
    print(f"  sequential speedup : {speedup_seq:.2f}x (floor {MIN_SPEEDUP}x)")
    print(f"  jobs=4 speedup     : {speedup_par:.2f}x (reported only)")

    payload = {
        "schema": "repro.bench-kernel/1",
        "scale": SCALE,
        "fill_words": SCALES[SCALE],
        "min_speedup_floor": MIN_SPEEDUP,
        "sequential_speedup": speedup_seq,
        "jobs4_speedup": speedup_par,
        "bit_identical": True,
        "runs": rows,
    }
    BENCH_OUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  results written to {BENCH_OUT}")

    # Shared-schema history entries: one line per kernel x jobs run, so
    # the regression gate tracks these numbers across commits too.
    for row in rows:
        bench.append_history(str(HISTORY_OUT), bench.BenchResult(
            name=f"kernel.{row['kernel']}-jobs{row['jobs']}",
            context={
                "family": f"kernel.{row['kernel']}", "jobs": row["jobs"],
                "scale": SCALE, "fill_words": SCALES[SCALE],
                "repeats": REPEATS, "cpus": os.cpu_count(),
            },
            metrics={
                "wall_seconds": bench.metric(row["seconds"]),
                "states_per_second": bench.metric(
                    row["states_per_second"], "states/s",
                    higher_is_better=True,
                ),
            },
        ))
    print(f"  history entries appended to {HISTORY_OUT}")

    assert speedup_seq >= MIN_SPEEDUP, (
        f"compiled kernel speedup {speedup_seq:.2f}x below the "
        f"{MIN_SPEEDUP}x floor"
    )


def test_memo_pays_off_across_reenumeration(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    model = _fresh_model()

    started = time.perf_counter()
    first, _ = enumerate_states(model, kernel="compiled")
    cold = time.perf_counter() - started
    kern = compile_model(model)
    assert kern.counters()["memo_hits"] == 0

    # Second enumeration in the other condition-recording mode: expansion
    # output is record-mode-independent, so every state hits the memo.
    started = time.perf_counter()
    second, _ = enumerate_states(model, record_all_conditions=True,
                                 kernel="compiled")
    warm = time.perf_counter() - started
    assert kern.counters()["memo_hits"] >= first.num_states

    print(f"\nSuccessor memo -- fill_words={SCALES[SCALE]}")
    print(f"  cold enumeration : {cold:7.3f} s")
    print(f"  memoized rerun   : {warm:7.3f} s ({cold / warm:.1f}x)")
    assert second.num_states == first.num_states
