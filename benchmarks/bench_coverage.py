"""Control-coverage experiment: the "measurable degree of confidence".

Section 1 of the paper: hand-written and random tests "fail to provide a
measurable degree of confidence that a complex design is adequately
tested".  The enumerated state graph *is* the measure.  This benchmark
scores the two stimulus strategies by the fraction of enumerated control
states and transition arcs their simulations actually visit, at a
matching instruction budget.

Expected shape: the transition-tour vectors -- constructed to traverse
every arc of the model -- visit a far larger fraction of the RTL's control
space than biased-random testing, whose visits cluster in the
high-probability core.  (Coverage is below 100% because the observer maps
RTL state through the same abstraction the model uses, and cycle-level
skew between the two leaves some arcs unmatched; the unmatched count
quantifies that skew honestly.)
"""

import random

import pytest

from repro.enumeration import enumerate_states
from repro.harness.coverage import ControlStateObserver, run_with_coverage
from repro.harness.random_testing import random_program
from repro.pp.fsm_model import PPControlModel, PPModelConfig
from repro.pp.rtl import CoreConfig, PPCore, RandomStimulus
from repro.pp.rtl.memory import LINE_WORDS
from repro.tour import TourGenerator
from repro.vectors import VectorGenerator, pp_instruction_cost


@pytest.fixture(scope="module")
def aligned_pipeline():
    # fill_words must equal the RTL line size for counter alignment.
    control = PPControlModel(PPModelConfig(fill_words=LINE_WORDS))
    graph, _ = enumerate_states(control.build())
    cost = pp_instruction_cost(control, graph)
    tours = TourGenerator(
        graph, instruction_cost=cost, max_instructions_per_trace=400
    ).generate()
    traces = VectorGenerator(control, graph, seed=7).generate(list(tours))
    return control, graph, traces


def _generated_coverage(control, graph, traces):
    observer = ControlStateObserver(control, graph)
    for trace in traces:
        core = PPCore(
            trace.program, CoreConfig(mem_latency=0), trace.stimulus(),
            inbox_tasks=list(range(64)),
        )
        run_with_coverage(core, observer)
    return observer.measurement()


def _random_coverage(control, graph, instruction_budget):
    observer = ControlStateObserver(control, graph)
    for seed in range(max(1, instruction_budget // 1000)):
        program = random_program(random.Random(seed), 1000)
        core = PPCore(
            program, CoreConfig(mem_latency=0),
            RandomStimulus(random.Random(seed + 999)),
            inbox_tasks=list(range(64)),
        )
        run_with_coverage(core, observer)
    return observer.measurement()


def test_generated_vs_random_coverage(aligned_pipeline, benchmark):
    control, graph, traces = aligned_pipeline
    generated = benchmark.pedantic(
        _generated_coverage, args=(control, graph, traces), rounds=1, iterations=1
    )
    randomized = _random_coverage(control, graph, traces.total_instructions)
    print(f"\ngenerated vectors: {generated.summary()}")
    print(f"random vectors:    {randomized.summary()}")
    print(f"abstraction skew (unmatched transitions): generated "
          f"{generated.unmatched_transitions}, random "
          f"{randomized.unmatched_transitions}")
    # Shape: generated coverage dominates on both axes, decisively.
    assert generated.state_coverage > randomized.state_coverage * 1.3
    assert generated.arc_coverage > randomized.arc_coverage * 1.8
    # And it reaches the majority of the enumerated control space.
    assert generated.state_coverage > 0.6


def test_coverage_is_monotone_in_traces(aligned_pipeline, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    control, graph, traces = aligned_pipeline
    observer = ControlStateObserver(control, graph)
    seen = []
    for trace in list(traces)[:10]:
        core = PPCore(
            trace.program, CoreConfig(mem_latency=0), trace.stimulus(),
            inbox_tasks=list(range(64)),
        )
        run_with_coverage(core, observer)
        seen.append(observer.measurement().visited_states)
    assert seen == sorted(seen)
    assert seen[-1] > seen[0]
