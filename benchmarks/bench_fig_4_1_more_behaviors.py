"""Fig. 4.1 -- Erroneous implementation with MORE behaviours than the spec.

The spec FSM has states A, B (a: A->B, b: B->A).  The faulty
implementation adds an extra transition d: B->C and c: C->A.  Because this
methodology enumerates the *implementation* FSM, the tour exercises the
"c"/"d" arcs and the simulation comparison exposes the difference --
whereas enumerating the *specification* (protocol-conformance style) never
generates the input that reaches C and misses the bug.
"""

import pytest

from repro.enumeration import enumerate_states
from repro.smurphi import ChoicePoint, EnumType, StateVar, SyncModel
from repro.tour import TourGenerator

INPUTS = EnumType("inp", ["a", "b", "c", "d"])


def spec_model():
    def nxt(s, ch):
        state, inp = s["s"], ch["inp"]
        if state == "A" and inp == "a":
            return {"s": "B"}
        if state == "B" and inp == "b":
            return {"s": "A"}
        return {"s": state}

    return SyncModel(
        "fig41_spec",
        state_vars=[StateVar("s", EnumType("st", ["A", "B"]), "A")],
        choices=[ChoicePoint("inp", INPUTS)],
        next_state=nxt,
    )


def impl_model():
    def nxt(s, ch):
        state, inp = s["s"], ch["inp"]
        if state == "A" and inp == "a":
            return {"s": "B"}
        if state == "B" and inp == "b":
            return {"s": "A"}
        if state == "B" and inp == "d":
            return {"s": "C"}  # the extra behaviour
        if state == "C" and inp == "c":
            return {"s": "A"}
        return {"s": state}

    return SyncModel(
        "fig41_impl",
        state_vars=[StateVar("s", EnumType("st", ["A", "B", "C"]), "A")],
        choices=[ChoicePoint("inp", INPUTS)],
        next_state=nxt,
    )


def _replay_and_compare(tour_graph, tour_model, tours, impl, spec):
    """Drive both machines with the tour's input sequence; count state
    mismatches (the simulation-comparison oracle)."""
    mismatches = 0
    for tour in tours:
        impl_state = impl.reset_state()
        spec_state = spec.reset_state()
        for index in tour.edge_indices:
            edge = tour_graph.edge(index)
            choice = dict(zip(tour_model.choice_names, edge.condition))
            impl_state = impl.step(impl_state, choice)
            spec_state = spec.step(spec_state, choice)
            if (impl_state["s"] == "C") != (spec_state["s"] == "C"):
                mismatches += 1
    return mismatches


def test_fig_4_1_impl_enumeration_catches(benchmark):
    impl, spec = impl_model(), spec_model()
    graph, stats = enumerate_states(impl)
    assert stats.num_states == 3  # C is reachable in the implementation
    tours = TourGenerator(graph).generate()
    mismatches = benchmark.pedantic(
        _replay_and_compare, args=(graph, impl, list(tours), impl, spec),
        rounds=1, iterations=1,
    )
    print(f"\nenumerating the IMPLEMENTATION: {stats.num_states} states, "
          f"{stats.num_edges} arcs; divergences seen: {mismatches}")
    assert mismatches > 0  # the extra behaviour is exercised and exposed


def test_fig_4_1_spec_enumeration_misses(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    impl, spec = impl_model(), spec_model()
    graph, stats = enumerate_states(spec)
    assert stats.num_states == 2  # C does not exist in the specification
    tours = TourGenerator(graph).generate()
    mismatches = _replay_and_compare(graph, spec, list(tours), impl, spec)
    print(f"\nenumerating the SPECIFICATION (conformance-testing style): "
          f"{stats.num_states} states; divergences seen: {mismatches}")
    # The spec's tours never drive input d at state B... unless first-
    # condition labeling happened to pick d for a self-loop arc.  Verify
    # the extra state C itself is never deliberately targeted: no arc in
    # the spec graph leads to a C-state, so coverage of impl's extra
    # behaviour is accidental at best.
    assert stats.num_states < 3
