"""Test-vector generation from transition tours (paper section 3.3).

A tour over the enumerated control graph is converted to simulator stimuli
by the *transition condition mapping*: the choice of actions recorded on
each arc is replayed through the control model to discover which interface
events fire (a fetch of some instruction class, a D-cache tag probe, an
Inbox query...), and each event contributes one entry to the corresponding
force queue plus -- for fetches -- one biased-random instruction of the
chosen class to the test program.  Data values and precise operations are
random; only what the control logic sees is pinned.
"""

from repro.vectors.generator import (
    VectorGenerator,
    TestVectorTrace,
    TraceSet,
    TransitionEventMemo,
    pack_trace_set,
    pp_instruction_cost,
    unpack_trace_set,
)
from repro.vectors.force import force_script

__all__ = [
    "VectorGenerator",
    "TestVectorTrace",
    "TraceSet",
    "TransitionEventMemo",
    "pack_trace_set",
    "pp_instruction_cost",
    "unpack_trace_set",
    "force_script",
]
