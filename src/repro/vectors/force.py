"""Emission of Verilog-style force/release command files.

The paper drives its commercial simulator by compiling a set of
``force``/``release`` commands alongside the model, toggling the interface
wires at the times the transition tour dictates.  This module renders a
:class:`~repro.vectors.generator.TestVectorTrace` in that textual format --
useful as a build artifact, for eyeballing a trace, and as the on-disk
exchange format between generation and simulation.
"""

from __future__ import annotations

from typing import List

from repro.pp.asm import disassemble
from repro.vectors.generator import TestVectorTrace

#: Signal names in the (synthesized) PP testbench hierarchy.
SIGNALS = {
    "fetch_hits": "tb.pp.icache.tag_match",
    "dcache_hits": "tb.pp.dcache.tag_match",
    "inbox_ready": "tb.magic.inbox.ready",
    "outbox_ready": "tb.magic.outbox.ready",
    "victim_dirty": "tb.pp.dcache.victim_dirty",
    "mem_pace": "tb.magic.memctrl.word_valid",
}


def force_script(trace: TestVectorTrace, title: str = "trace") -> str:
    """Render one trace as a force/release command file."""
    lines: List[str] = [
        f"// {title}: {trace.num_instructions} instructions, "
        f"{trace.edges_traversed} arc traversals",
        "// Instruction stream (loaded into the abstract I-cache image):",
    ]
    for index, instruction in enumerate(trace.program):
        lines.append(f"//   [{index:5d}] {disassemble(instruction)}")
    lines.append("initial begin")
    for attr, signal in SIGNALS.items():
        values = getattr(trace, attr)
        for event_index, value in enumerate(values):
            lines.append(
                f"  @(event_{attr}[{event_index}]) force {signal} = {int(value)};"
            )
        if values:
            lines.append(f"  release {signal};")
    lines.append("end")
    return "\n".join(lines) + "\n"
