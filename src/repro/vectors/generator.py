"""Tour -> test-vector conversion for the PP control model.

The generator walks each tour arc, replays
:meth:`~repro.pp.fsm_model.PPControlModel.transition_events` for the arc's
recorded condition, and translates events into:

- the **test program**: one biased-random instruction per successful fetch
  (two when the dual-issue choice fired);
- the **stimulus queues** a :class:`~repro.pp.rtl.stimulus.QueueStimulus`
  replays into the RTL model: I-fetch outcomes, D-probe outcomes,
  Inbox/Outbox readiness, victim dirtiness, memory pacing.

Address realization: the abstract model's *conflict* comparator choice is
realized through actual addresses rather than forced (forcing it could
break data coherence).  Loads whose conflict choice fired true get the
pending store's address patched in; all other memory operands draw from a
pool of distinct cache lines.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.enumeration.graph import Edge, StateGraph
from repro.enumeration.pool import WorkerPool
from repro.obs.observer import Observer, resolve
from repro.pp.fsm_model import PPControlModel
from repro.pp.isa import Instruction, InstructionClass, Opcode, random_instruction
from repro.pp.rtl.memory import LINE_WORDS
from repro.pp.rtl.stimulus import QueueStimulus
from repro.smurphi.state import StateCodec
from repro.tour.fig33 import Tour

#: Distinct cache-line base addresses used for memory operands (kept low so
#: data never aliases the program text segment).
DEFAULT_ADDRESS_POOL = tuple(range(0, 16 * LINE_WORDS * 4, LINE_WORDS * 4))


@dataclass
class TestVectorTrace:
    """One simulation trace: a program plus its interface-force queues."""

    program: List[Instruction] = field(default_factory=list)
    fetch_hits: List[bool] = field(default_factory=list)
    dcache_hits: List[bool] = field(default_factory=list)
    inbox_ready: List[bool] = field(default_factory=list)
    outbox_ready: List[bool] = field(default_factory=list)
    victim_dirty: List[bool] = field(default_factory=list)
    mem_pace: List[bool] = field(default_factory=list)
    edges_traversed: int = 0

    @property
    def num_instructions(self) -> int:
        return len(self.program)

    def stimulus(self) -> QueueStimulus:
        return QueueStimulus(
            fetch_hits=self.fetch_hits,
            dcache_hits=self.dcache_hits,
            inbox_ready=self.inbox_ready,
            outbox_ready=self.outbox_ready,
            victim_dirty=self.victim_dirty,
            mem_pace=self.mem_pace,
        )


@dataclass
class TraceSet:
    """All traces generated from a tour set, with Table 3.3 accounting."""

    traces: List[TestVectorTrace]

    @property
    def num_traces(self) -> int:
        return len(self.traces)

    @property
    def total_instructions(self) -> int:
        return sum(t.num_instructions for t in self.traces)

    @property
    def total_edge_traversals(self) -> int:
        return sum(t.edges_traversed for t in self.traces)

    @property
    def longest_trace_edges(self) -> int:
        return max((t.edges_traversed for t in self.traces), default=0)

    def __iter__(self):
        return iter(self.traces)

    def __len__(self) -> int:
        return len(self.traces)

    def to_json(self) -> str:
        """Canonical serialization of every trace's program and queues.

        Instructions flatten to their integer fields (opcodes are
        ``IntEnum``).  Used to assert byte-for-byte equivalence between
        incremental and cold builds.
        """
        import json

        return json.dumps(
            {
                "traces": [
                    {
                        "program": [
                            [int(i.opcode), i.rd, i.rs, i.rt, i.imm]
                            for i in t.program
                        ],
                        "fetch_hits": t.fetch_hits,
                        "dcache_hits": t.dcache_hits,
                        "inbox_ready": t.inbox_ready,
                        "outbox_ready": t.outbox_ready,
                        "victim_dirty": t.victim_dirty,
                        "mem_pace": t.mem_pace,
                        "edges_traversed": t.edges_traversed,
                    }
                    for t in self.traces
                ],
            }
        )


def pack_trace_set(trace_set: TraceSet) -> Dict:
    """Compact cache payload for a :class:`TraceSet`.

    Programs repeat a small pool of biased-random instructions, so the
    encoding interns unique instructions into a table and stores per-trace
    index lists.  Unpacking (:func:`unpack_trace_set`) rebuilds each
    unique :class:`Instruction` exactly once, which loads ~4x faster than
    unpickling one dataclass object per program slot -- the difference
    between a no-op revalidation and a noticeable pause.
    """
    table: Dict[Instruction, int] = {}
    rows = []
    for trace in trace_set.traces:
        indices = []
        for ins in trace.program:
            index = table.get(ins)
            if index is None:
                index = len(table)
                table[ins] = index
            indices.append(index)
        rows.append(
            (
                indices,
                trace.fetch_hits,
                trace.dcache_hits,
                trace.inbox_ready,
                trace.outbox_ready,
                trace.victim_dirty,
                trace.mem_pace,
                trace.edges_traversed,
            )
        )
    return {
        "table": [(int(i.opcode), i.rd, i.rs, i.rt, i.imm) for i in table],
        "rows": rows,
    }


def unpack_trace_set(payload: Dict) -> TraceSet:
    """Inverse of :func:`pack_trace_set`.

    Rebuilds instructions via ``__new__`` + ``object.__setattr__``: the
    packed fields came from real instructions, so re-running the
    dataclass range validation per slot would only cost time.
    """
    by_value = {int(op): op for op in Opcode}
    table: List[Instruction] = []
    for opcode, rd, rs, rt, imm in payload["table"]:
        ins = Instruction.__new__(Instruction)
        object.__setattr__(ins, "opcode", by_value[opcode])
        object.__setattr__(ins, "rd", rd)
        object.__setattr__(ins, "rs", rs)
        object.__setattr__(ins, "rt", rt)
        object.__setattr__(ins, "imm", imm)
        table.append(ins)
    traces = []
    for indices, fh, dh, ir, our, vd, mp, edges in payload["rows"]:
        traces.append(
            TestVectorTrace(
                program=[table[i] for i in indices],
                fetch_hits=fh,
                dcache_hits=dh,
                inbox_ready=ir,
                outbox_ready=our,
                victim_dirty=vd,
                mem_pace=mp,
                edges_traversed=edges,
            )
        )
    return TraceSet(traces=traces)


class TransitionEventMemo:
    """Per-model memo of everything vector generation needs per arc.

    Both :func:`pp_instruction_cost` (the tour phase's cost function) and
    :class:`VectorGenerator` replay the model's transition for the same
    ``(src_state, condition)`` pairs; before this memo existed each side
    unpacked the state and ran the step function independently -- twice
    per arc inside the generator alone (``transition_events`` + ``step``
    both call ``_step``).  One :meth:`lookup` now runs ``_step`` exactly
    once per unique pair and caches the complete outcome tuple
    ``(events, src_mem, st_pend_after, instructions)``:

    - ``events``: the interface-event list, in emission order;
    - ``src_mem``: the source state's ``mem`` stage (split-store address
      tracking needs it);
    - ``st_pend_after``: whether a store is still pending *after* the
      transition (clears the pending address exactly when the model does);
    - ``instructions``: instructions contributed by the arc's fetch, the
      way Table 3.3 counts them;
    - ``advanced``: whether the pipe advanced (stage-index bookkeeping).

    Keys are ``(state_id, condition)`` so the memo is valid for exactly
    one enumerated graph; share one instance per pipeline build.  Arcs
    with the same ``(src, condition)`` share one entry; the additional
    per-edge-index view (:meth:`lookup_edge`) just skips re-deriving the
    key on the generator's hot path.
    """

    def __init__(self, model: PPControlModel, graph: StateGraph):
        self.model = model
        self.graph = graph
        self.codec = StateCodec(model.state_vars)
        self._entries: Dict[Tuple[int, Tuple], Tuple] = {}
        self._by_edge: List[Optional[Tuple]] = [None] * graph.num_edges
        self.computed = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, src: int, condition: Tuple) -> Tuple:
        """Return ``(events, src_mem, st_pend_after, instructions, advanced)``."""
        key = (src, condition)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry
        self.computed += 1
        state = self.codec.unpack(self.graph.state_key(src))
        choice = dict(zip(self.model.choice_names, condition))
        next_state, events = self.model._step(state, choice)
        instructions = 0
        advanced = False
        for event in events:
            kind = event[0]
            if kind == "fetch" and event[2]:
                instructions += 2 if event[3] else 1
            elif kind == "pipe_advance":
                advanced = True
        entry = (
            events, state["mem"], bool(next_state["st_pend"]),
            instructions, advanced,
        )
        self._entries[key] = entry
        return entry

    def lookup_edge(self, edge_index: int) -> Tuple:
        """:meth:`lookup` keyed by edge index (same entries, no key
        re-derivation -- distinct arcs may share one entry)."""
        entry = self._by_edge[edge_index]
        if entry is not None:
            self.hits += 1
            return entry
        edge = self.graph.edge(edge_index)
        entry = self.lookup(edge.src, edge.condition)
        self._by_edge[edge_index] = entry
        return entry


#: Fork-inherited generator for parallel workers.  The PP model holds
#: guard closures that cannot be pickled, so workers must inherit the
#: whole generator (model, graph, memo) through fork copy-on-write.
_PARALLEL_GENERATOR: Optional["VectorGenerator"] = None
#: Monotonic publication epoch: bumps whenever a *different* generator is
#: published, so a shared :class:`WorkerPool`'s context tag can never
#: collide across generators (object ids can be recycled; epochs cannot),
#: while repeat runs of one generator keep the warm worker generation.
_PARALLEL_EPOCH = 0


def _publish_generator(generator: "VectorGenerator") -> int:
    global _PARALLEL_GENERATOR, _PARALLEL_EPOCH
    if _PARALLEL_GENERATOR is not generator:
        _PARALLEL_EPOCH += 1
        _PARALLEL_GENERATOR = generator
    return _PARALLEL_EPOCH


def _vector_trace_job(payload: Tuple[int, Tour]) -> Tuple[int, "TestVectorTrace"]:
    index, tour = payload
    generator = _PARALLEL_GENERATOR
    rng = random.Random(f"{generator.seed}:{index}")
    return index, generator._trace_from_tour(tour, rng)


def _vector_chunk_job(
    payload: Sequence[Tuple[int, Tour]], attempt: int = 0
) -> List[Tuple[int, "TestVectorTrace"]]:
    """Pool task: one chunk of indexed tours (pure -- safe to retry)."""
    return [_vector_trace_job(item) for item in payload]


class VectorGenerator:
    """Transition-condition mapping for the PP (Fig. 3.1 oval 3).

    Parameters
    ----------
    model:
        The control model the graph was enumerated from (provides
        ``transition_events``).
    graph:
        The enumerated state graph.
    seed:
        Seed for the biased-random fill of control-irrelevant fields.
    memo:
        A shared :class:`TransitionEventMemo` (e.g. the one the tour
        phase's cost function already filled).  ``None`` creates a
        private one.
    memoize:
        ``False`` disables memoization entirely and replays transitions
        exactly the way the pre-memo generator did (``transition_events``
        then ``step`` per arc) -- kept as the benchmark baseline.
    """

    def __init__(
        self,
        model: PPControlModel,
        graph: StateGraph,
        seed: int = 0,
        address_pool: Sequence[int] = DEFAULT_ADDRESS_POOL,
        memo: Optional[TransitionEventMemo] = None,
        memoize: bool = True,
    ):
        self.model = model
        self.graph = graph
        self.codec = StateCodec(model.state_vars)
        self.seed = seed
        self.address_pool = list(address_pool)
        if memo is not None:
            self.memo: Optional[TransitionEventMemo] = memo
        elif memoize:
            self.memo = TransitionEventMemo(model, graph)
        else:
            self.memo = None

    # -- public API -------------------------------------------------------------

    def generate(
        self,
        tours: Sequence[Tour],
        obs: Optional[Observer] = None,
        jobs: int = 1,
        pool: Optional[WorkerPool] = None,
    ) -> TraceSet:
        """Convert every tour component into a test-vector trace.

        ``jobs > 1`` fans tours across fork workers.  Each tour owns an
        independent ``random.Random(f"{seed}:{index}")`` keyed by its
        *original* index, so the produced traces are bit-identical at any
        worker count (golden-tested); only wall clock changes.  Falls
        back to sequential where fork is unavailable.

        ``pool`` accepts the pipeline's persistent
        :class:`~repro.enumeration.pool.WorkerPool`; workers then come
        from (or are re-forked into) the shared pool instead of a
        per-call ``multiprocessing.Pool``, and dead-worker recovery
        applies (chunks are pure, so retries are safe).
        """
        obs = resolve(obs)
        started = time.perf_counter()
        tours = list(tours)
        workers = min(jobs, len(tours))
        if workers > 1 and "fork" not in multiprocessing.get_all_start_methods():
            workers = 1
        # Gauge before generating: sequential and parallel runs report the
        # same value (worker-side memo fills are invisible to the parent).
        obs.gauge("vectors.memo_entries", len(self.memo) if self.memo is not None else 0)
        obs.gauge("vectors.workers", max(workers, 1))
        if workers > 1 and pool is not None:
            traces = self._generate_with_pool(tours, pool, obs)
        elif workers > 1:
            traces = self._generate_parallel(tours, workers, obs)
        else:
            traces = []
            for i, tour in enumerate(tours):
                traces.append(
                    self._trace_from_tour(tour, random.Random(f"{self.seed}:{i}"))
                )
                obs.heartbeat("vectors", traces=len(traces), total=len(tours))
        trace_set = TraceSet(traces=traces)
        obs.inc("vectors.traces", trace_set.num_traces)
        obs.inc("vectors.instructions", trace_set.total_instructions)
        for trace in traces:
            obs.observe("vectors.trace_instructions", trace.num_instructions)
        obs.observe("vectors.seconds", time.perf_counter() - started)
        return trace_set

    def _generate_with_pool(
        self, tours: List[Tour], pool: WorkerPool, obs: Observer
    ) -> List[TestVectorTrace]:
        epoch = _publish_generator(self)
        pool.obs = obs
        # Same generator published again -> same tag -> warm workers; a
        # different generator bumps the epoch and re-forks.  The global
        # stays published (the pipeline keeps these objects alive anyway)
        # so live workers always mirror the coordinator's state.
        pool.set_context(("vectors", epoch))
        chunksize = max(1, len(tours) // (pool.jobs * 4))
        indexed = list(enumerate(tours))
        chunks = [
            indexed[i : i + chunksize] for i in range(0, len(indexed), chunksize)
        ]
        results: List[Optional[TestVectorTrace]] = [None] * len(tours)
        done = 0
        # No timeout: trace generation time is unbounded in tour length;
        # dead workers still recover via BrokenProcessPool.
        for _, chunk_result in pool.imap_tasks(_vector_chunk_job, chunks):
            for index, trace in chunk_result:
                results[index] = trace
            done += len(chunk_result)
            obs.heartbeat("vectors", traces=done, total=len(tours),
                          workers=pool.jobs)
        return results

    def _generate_parallel(
        self, tours: List[Tour], workers: int, obs: Optional[Observer] = None
    ) -> List[TestVectorTrace]:
        global _PARALLEL_GENERATOR
        obs = resolve(obs)
        ctx = multiprocessing.get_context("fork")
        chunksize = max(1, len(tours) // (workers * 4))
        results: List[Optional[TestVectorTrace]] = [None] * len(tours)
        done = 0
        _PARALLEL_GENERATOR = self
        try:
            with ctx.Pool(processes=workers) as pool:
                for index, trace in pool.imap_unordered(
                    _vector_trace_job, list(enumerate(tours)), chunksize=chunksize
                ):
                    results[index] = trace
                    done += 1
                    obs.heartbeat("vectors", traces=done, total=len(tours),
                                  workers=workers)
        finally:
            _PARALLEL_GENERATOR = None
        return results

    def trace_from_edges(
        self, edge_indices: Sequence[int], rng: Optional[random.Random] = None
    ) -> TestVectorTrace:
        """Convert one walk (list of edge indices) into a trace."""
        return self._trace_from_tour(
            Tour(edge_indices=list(edge_indices)), rng or random.Random(self.seed)
        )

    # -- the mapping --------------------------------------------------------------

    def _transition(self, edge_index: int) -> Tuple[List[Tuple], str, bool, bool]:
        """``(events, src_mem, st_pend_after, advanced)`` for one arc --
        from the memo when enabled, otherwise replayed the pre-memo way."""
        if self.memo is not None:
            events, src_mem, st_pend_after, _, advanced = self.memo.lookup_edge(
                edge_index
            )
            return events, src_mem, st_pend_after, advanced
        edge = self.graph.edge(edge_index)
        state = self.codec.unpack(self.graph.state_key(edge.src))
        choice = dict(zip(self.model.choice_names, edge.condition))
        events = self.model.transition_events(state, choice)
        next_state = self.model.step(state, choice)
        advanced = any(e[0] == "pipe_advance" for e in events)
        return events, state["mem"], bool(next_state["st_pend"]), advanced

    def _trace_from_tour(self, tour: Tour, rng: random.Random) -> TestVectorTrace:
        trace = TestVectorTrace(edges_traversed=len(tour.edge_indices))
        # Parallel index pipeline: which program index occupies each stage,
        # so the conflict comparator's choice can be realized by patching
        # the in-flight load's address.
        ifq_index: Optional[int] = None
        ex_index: Optional[int] = None
        mem_index: Optional[int] = None
        pending_store_addr: Optional[int] = None

        for edge_index in tour.edge_indices:
            events, src_mem, st_pend_after, advanced = self._transition(edge_index)
            fetched_index: Optional[int] = None

            for event in events:
                kind = event[0]
                if kind == "fetch":
                    _, klass_name, i_hit, dual = event
                    trace.fetch_hits.append(bool(i_hit))
                    if i_hit:
                        fetched_index = len(trace.program)
                        self._emit_instruction(trace, klass_name, rng)
                        if dual:
                            self._emit_instruction(trace, "ALU", rng)
                elif kind == "d_probe":
                    trace.dcache_hits.append(bool(event[1]))
                    if src_mem == "SD" and event[1] and mem_index is not None:
                        pending_store_addr = self._operand_address(trace, mem_index)
                elif kind == "refill_start":
                    trace.victim_dirty.append(bool(event[1]))
                    if src_mem == "SD" and mem_index is not None:
                        # The store posts after its refill completes.
                        pending_store_addr = self._operand_address(trace, mem_index)
                elif kind == "conflict":
                    self._realize_conflict(
                        trace, bool(event[1]), mem_index, pending_store_addr, rng
                    )
                elif kind == "inbox_query":
                    trace.inbox_ready.append(bool(event[1]))
                elif kind == "outbox_query":
                    trace.outbox_ready.append(bool(event[1]))
                elif kind == "mem_word":
                    trace.mem_pace.append(bool(event[1]))

            # The split store's idle-cycle data write clears the pending
            # address exactly when the model clears st_pend.
            if not st_pend_after:
                pending_store_addr = None

            if advanced:
                mem_index, ex_index, ifq_index = ex_index, ifq_index, None
            if fetched_index is not None:
                ifq_index = fetched_index
        return trace

    def _emit_instruction(
        self, trace: TestVectorTrace, klass_name: str, rng: random.Random
    ) -> None:
        klass = InstructionClass(klass_name)
        instruction = random_instruction(klass, rng, address_pool=self.address_pool)
        if klass in (InstructionClass.LD, InstructionClass.SD):
            # Memory operands use rs=r0 so the effective address is the
            # immediate -- the generator stays in full control of which
            # line each access touches.
            instruction = Instruction(
                instruction.opcode,
                rd=instruction.rd,
                rs=0,
                imm=rng.choice(self.address_pool),
            )
        trace.program.append(instruction)

    def _operand_address(self, trace: TestVectorTrace, index: int) -> Optional[int]:
        if index is None or index >= len(trace.program):
            return None
        instruction = trace.program[index]
        if instruction.opcode in (Opcode.LW, Opcode.SW):
            return instruction.imm
        return None

    def _realize_conflict(
        self,
        trace: TestVectorTrace,
        conflict: bool,
        mem_index: Optional[int],
        pending_store_addr: Optional[int],
        rng: random.Random,
    ) -> None:
        """Patch the in-flight load's address to make the abstract conflict
        choice come true (or stay false) in the RTL."""
        if mem_index is None or mem_index >= len(trace.program):
            return
        load = trace.program[mem_index]
        if load.opcode is not Opcode.LW:
            return
        if conflict:
            if pending_store_addr is not None:
                trace.program[mem_index] = Instruction(
                    Opcode.LW, rd=load.rd, rs=0, imm=pending_store_addr
                )
        else:
            if pending_store_addr is not None and load.imm == pending_store_addr:
                others = [a for a in self.address_pool if a != pending_store_addr]
                trace.program[mem_index] = Instruction(
                    Opcode.LW, rd=load.rd, rs=0, imm=rng.choice(others)
                )


def pp_instruction_cost(
    model: PPControlModel,
    graph: StateGraph,
    memo: Optional[TransitionEventMemo] = None,
) -> Callable[[Edge], int]:
    """Instruction cost of traversing one arc: how many instructions the
    fetch on that transition contributes to the trace file (0 when the
    cycle fetches nothing -- stalls, refills, bubbles).

    Used as the :class:`~repro.tour.fig33.TourGenerator` cost function so
    tour statistics count instructions the way Table 3.3 does.  Pass the
    pipeline's shared :class:`TransitionEventMemo` so the transitions this
    replays are never recomputed by vector generation (the tour phase
    touches every arc, so afterwards the memo is fully warm).
    """
    if memo is None:
        memo = TransitionEventMemo(model, graph)

    def cost(edge: Edge) -> int:
        return memo.lookup(edge.src, edge.condition)[3]

    return cost
