"""Tour -> test-vector conversion for the PP control model.

The generator walks each tour arc, replays
:meth:`~repro.pp.fsm_model.PPControlModel.transition_events` for the arc's
recorded condition, and translates events into:

- the **test program**: one biased-random instruction per successful fetch
  (two when the dual-issue choice fired);
- the **stimulus queues** a :class:`~repro.pp.rtl.stimulus.QueueStimulus`
  replays into the RTL model: I-fetch outcomes, D-probe outcomes,
  Inbox/Outbox readiness, victim dirtiness, memory pacing.

Address realization: the abstract model's *conflict* comparator choice is
realized through actual addresses rather than forced (forcing it could
break data coherence).  Loads whose conflict choice fired true get the
pending store's address patched in; all other memory operands draw from a
pool of distinct cache lines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.enumeration.graph import Edge, StateGraph
from repro.obs.observer import Observer, resolve
from repro.pp.fsm_model import PPControlModel
from repro.pp.isa import Instruction, InstructionClass, Opcode, random_instruction
from repro.pp.rtl.memory import LINE_WORDS
from repro.pp.rtl.stimulus import QueueStimulus
from repro.smurphi.state import StateCodec
from repro.tour.fig33 import Tour

#: Distinct cache-line base addresses used for memory operands (kept low so
#: data never aliases the program text segment).
DEFAULT_ADDRESS_POOL = tuple(range(0, 16 * LINE_WORDS * 4, LINE_WORDS * 4))


@dataclass
class TestVectorTrace:
    """One simulation trace: a program plus its interface-force queues."""

    program: List[Instruction] = field(default_factory=list)
    fetch_hits: List[bool] = field(default_factory=list)
    dcache_hits: List[bool] = field(default_factory=list)
    inbox_ready: List[bool] = field(default_factory=list)
    outbox_ready: List[bool] = field(default_factory=list)
    victim_dirty: List[bool] = field(default_factory=list)
    mem_pace: List[bool] = field(default_factory=list)
    edges_traversed: int = 0

    @property
    def num_instructions(self) -> int:
        return len(self.program)

    def stimulus(self) -> QueueStimulus:
        return QueueStimulus(
            fetch_hits=self.fetch_hits,
            dcache_hits=self.dcache_hits,
            inbox_ready=self.inbox_ready,
            outbox_ready=self.outbox_ready,
            victim_dirty=self.victim_dirty,
            mem_pace=self.mem_pace,
        )


@dataclass
class TraceSet:
    """All traces generated from a tour set, with Table 3.3 accounting."""

    traces: List[TestVectorTrace]

    @property
    def num_traces(self) -> int:
        return len(self.traces)

    @property
    def total_instructions(self) -> int:
        return sum(t.num_instructions for t in self.traces)

    @property
    def total_edge_traversals(self) -> int:
        return sum(t.edges_traversed for t in self.traces)

    @property
    def longest_trace_edges(self) -> int:
        return max((t.edges_traversed for t in self.traces), default=0)

    def __iter__(self):
        return iter(self.traces)

    def __len__(self) -> int:
        return len(self.traces)


class VectorGenerator:
    """Transition-condition mapping for the PP (Fig. 3.1 oval 3).

    Parameters
    ----------
    model:
        The control model the graph was enumerated from (provides
        ``transition_events``).
    graph:
        The enumerated state graph.
    seed:
        Seed for the biased-random fill of control-irrelevant fields.
    """

    def __init__(
        self,
        model: PPControlModel,
        graph: StateGraph,
        seed: int = 0,
        address_pool: Sequence[int] = DEFAULT_ADDRESS_POOL,
    ):
        self.model = model
        self.graph = graph
        self.codec = StateCodec(model.state_vars)
        self.seed = seed
        self.address_pool = list(address_pool)

    # -- public API -------------------------------------------------------------

    def generate(
        self, tours: Sequence[Tour], obs: Optional[Observer] = None
    ) -> TraceSet:
        """Convert every tour component into a test-vector trace."""
        obs = resolve(obs)
        traces = [
            self._trace_from_tour(tour, random.Random(f"{self.seed}:{i}"))
            for i, tour in enumerate(tours)
        ]
        trace_set = TraceSet(traces=traces)
        obs.inc("vectors.traces", trace_set.num_traces)
        obs.inc("vectors.instructions", trace_set.total_instructions)
        for trace in traces:
            obs.observe("vectors.trace_instructions", trace.num_instructions)
        return trace_set

    def trace_from_edges(
        self, edge_indices: Sequence[int], rng: Optional[random.Random] = None
    ) -> TestVectorTrace:
        """Convert one walk (list of edge indices) into a trace."""
        return self._trace_from_tour(
            Tour(edge_indices=list(edge_indices)), rng or random.Random(self.seed)
        )

    # -- the mapping --------------------------------------------------------------

    def _trace_from_tour(self, tour: Tour, rng: random.Random) -> TestVectorTrace:
        trace = TestVectorTrace(edges_traversed=len(tour.edge_indices))
        # Parallel index pipeline: which program index occupies each stage,
        # so the conflict comparator's choice can be realized by patching
        # the in-flight load's address.
        ifq_index: Optional[int] = None
        ex_index: Optional[int] = None
        mem_index: Optional[int] = None
        pending_store_addr: Optional[int] = None

        for edge_index in tour.edge_indices:
            edge = self.graph.edge(edge_index)
            state = self.codec.unpack(self.graph.state_key(edge.src))
            choice = dict(zip(self.model.choice_names, edge.condition))
            events = self.model.transition_events(state, choice)
            advanced = any(e[0] == "pipe_advance" for e in events)
            fetched_index: Optional[int] = None

            for event in events:
                kind = event[0]
                if kind == "fetch":
                    _, klass_name, i_hit, dual = event
                    trace.fetch_hits.append(bool(i_hit))
                    if i_hit:
                        fetched_index = len(trace.program)
                        self._emit_instruction(trace, klass_name, rng)
                        if dual:
                            self._emit_instruction(trace, "ALU", rng)
                elif kind == "d_probe":
                    trace.dcache_hits.append(bool(event[1]))
                    if state["mem"] == "SD" and event[1] and mem_index is not None:
                        pending_store_addr = self._operand_address(trace, mem_index)
                elif kind == "refill_start":
                    trace.victim_dirty.append(bool(event[1]))
                    if state["mem"] == "SD" and mem_index is not None:
                        # The store posts after its refill completes.
                        pending_store_addr = self._operand_address(trace, mem_index)
                elif kind == "conflict":
                    self._realize_conflict(
                        trace, bool(event[1]), mem_index, pending_store_addr, rng
                    )
                elif kind == "inbox_query":
                    trace.inbox_ready.append(bool(event[1]))
                elif kind == "outbox_query":
                    trace.outbox_ready.append(bool(event[1]))
                elif kind == "mem_word":
                    trace.mem_pace.append(bool(event[1]))

            # The split store's idle-cycle data write clears the pending
            # address exactly when the model clears st_pend.
            next_state = self.model.step(state, choice)
            if not next_state["st_pend"]:
                pending_store_addr = None

            if advanced:
                mem_index, ex_index, ifq_index = ex_index, ifq_index, None
            if fetched_index is not None:
                ifq_index = fetched_index
        return trace

    def _emit_instruction(
        self, trace: TestVectorTrace, klass_name: str, rng: random.Random
    ) -> None:
        klass = InstructionClass(klass_name)
        instruction = random_instruction(klass, rng, address_pool=self.address_pool)
        if klass in (InstructionClass.LD, InstructionClass.SD):
            # Memory operands use rs=r0 so the effective address is the
            # immediate -- the generator stays in full control of which
            # line each access touches.
            instruction = Instruction(
                instruction.opcode,
                rd=instruction.rd,
                rs=0,
                imm=rng.choice(self.address_pool),
            )
        trace.program.append(instruction)

    def _operand_address(self, trace: TestVectorTrace, index: int) -> Optional[int]:
        if index is None or index >= len(trace.program):
            return None
        instruction = trace.program[index]
        if instruction.opcode in (Opcode.LW, Opcode.SW):
            return instruction.imm
        return None

    def _realize_conflict(
        self,
        trace: TestVectorTrace,
        conflict: bool,
        mem_index: Optional[int],
        pending_store_addr: Optional[int],
        rng: random.Random,
    ) -> None:
        """Patch the in-flight load's address to make the abstract conflict
        choice come true (or stay false) in the RTL."""
        if mem_index is None or mem_index >= len(trace.program):
            return
        load = trace.program[mem_index]
        if load.opcode is not Opcode.LW:
            return
        if conflict:
            if pending_store_addr is not None:
                trace.program[mem_index] = Instruction(
                    Opcode.LW, rd=load.rd, rs=0, imm=pending_store_addr
                )
        else:
            if pending_store_addr is not None and load.imm == pending_store_addr:
                others = [a for a in self.address_pool if a != pending_store_addr]
                trace.program[mem_index] = Instruction(
                    Opcode.LW, rd=load.rd, rs=0, imm=rng.choice(others)
                )


def pp_instruction_cost(
    model: PPControlModel, graph: StateGraph
) -> Callable[[Edge], int]:
    """Instruction cost of traversing one arc: how many instructions the
    fetch on that transition contributes to the trace file (0 when the
    cycle fetches nothing -- stalls, refills, bubbles).

    Used as the :class:`~repro.tour.fig33.TourGenerator` cost function so
    tour statistics count instructions the way Table 3.3 does.
    """
    codec = StateCodec(model.state_vars)
    cache: Dict[Tuple[int, Tuple], int] = {}

    def cost(edge: Edge) -> int:
        key = (edge.src, edge.condition)
        if key in cache:
            return cache[key]
        state = codec.unpack(graph.state_key(edge.src))
        choice = dict(zip(model.choice_names, edge.condition))
        instructions = 0
        for event in model.transition_events(state, choice):
            if event[0] == "fetch" and event[2]:
                instructions += 2 if event[3] else 1
        cache[key] = instructions
        return instructions

    return cost
