"""The Verilog -> Synchronous Murphi translator.

Mapping (section 3.1 of the paper):

- The Verilog concurrency model -- implicit clock advancing when all
  variables are stable -- maps onto the explicit state/non-state split:
  registers assigned in ``always @(posedge clk)`` blocks become state
  variables (with an implicit hold when a path leaves them unassigned),
  and everything else is combinational, re-evaluated from scratch each
  cycle in dependency order.
- Top-level inputs become nondeterministic choice points: the abstract
  environment "tries every combination of values".
- ``// @reset n`` annotations supply reset values (default 0); ``// @state``
  marks the nets the designer delimited as control state (validated, and
  used to report the annotated-line statistics the paper quotes).

Combinational latches (a comb block leaving a variable unassigned on some
path) are rejected: in the stylized subset state must be clocked.
Combinational cycles are rejected as well.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.enumeration.graph import StateGraph
from repro.hdl import ast
from repro.hdl.elaborate import FlatDesign, elaborate
from repro.hdl.errors import TranslationError
from repro.hdl.parser import parse
from repro.obs.observer import Observer, resolve
from repro.smurphi import ChoicePoint, RangeType, StateVar, SyncModel

logger = logging.getLogger("repro.translate")


def translate_verilog(
    source: str,
    top: str,
    clock: str = "clk",
    choices_override: Optional[Sequence[ChoicePoint]] = None,
    obs: Optional[Observer] = None,
) -> Tuple[SyncModel, FlatDesign]:
    """Parse + elaborate + translate in one call.

    ``obs`` receives one span per front-end phase (``translate.parse``,
    ``translate.elaborate``, ``translate.build``) plus gauges for the
    translated model's state bits and free inputs.
    """
    obs = resolve(obs)
    with obs.span("translate.parse", top=top):
        design = parse(source)
    with obs.span("translate.elaborate", top=top):
        flat = elaborate(design, top, clock=clock)
    with obs.span("translate.build", top=top):
        model = translate(flat, choices_override=choices_override)
    obs.gauge("translate.state_bits", model.state_bits())
    obs.gauge("translate.free_inputs", len(model.choice_names))
    logger.info(
        "translated top %s: %d state bits, %d free inputs",
        top, model.state_bits(), len(model.choice_names),
    )
    return model, flat


def translate(
    flat: FlatDesign,
    choices_override: Optional[Sequence[ChoicePoint]] = None,
) -> SyncModel:
    """Translate a flattened design into a :class:`SyncModel`.

    ``choices_override`` lets the designer supply the abstract environment
    model explicitly -- restricted domains, guards, and inactive values for
    the free inputs (this is the Murphi-side modeling the paper describes
    for the PC, caches, Inbox, Outbox...).  Every free input must be
    covered; names must match.
    """
    return _Translator(flat, choices_override).build()


class _Translator:
    def __init__(
        self,
        flat: FlatDesign,
        choices_override: Optional[Sequence[ChoicePoint]] = None,
    ):
        self.flat = flat
        self.choices_override = (
            list(choices_override) if choices_override is not None else None
        )
        self.widths: Dict[str, int] = {
            name: net.width for name, net in flat.nets.items()
        }
        self.state_names = self._find_state_registers()
        self.choice_names = list(flat.free_inputs)
        self.comb_items = self._schedule_combinational()
        self.clocked_blocks = [b for b in flat.always_blocks if b.clocked]
        self._check_single_driver()

    # -- analysis -----------------------------------------------------------

    def _find_state_registers(self) -> List[str]:
        """Latch analysis: every register assigned under a clock edge holds
        state across cycles and becomes an explicit state variable."""
        state: List[str] = []
        seen: Set[str] = set()
        for block in self.flat.always_blocks:
            if not block.clocked:
                continue
            for target in _targets(block.body):
                if target not in self.flat.nets:
                    raise TranslationError(f"assignment to undeclared net {target!r}")
                if self.flat.nets[target].kind != "reg":
                    raise TranslationError(
                        f"{target!r} is a wire but assigned in a clocked block"
                    )
                if target not in seen:
                    seen.add(target)
                    state.append(target)
        return state

    def _schedule_combinational(self) -> List:
        """Topologically order continuous assigns and comb always blocks."""
        items: List[Tuple[Set[str], Set[str], object]] = []  # (defs, uses, item)
        for assign in self.flat.assigns:
            items.append(({assign.target}, _expr_uses(assign.value), assign))
        for block in self.flat.always_blocks:
            if block.clocked:
                continue
            defines = _targets(block.body)
            self._check_no_comb_latch(block, defines)
            uses = _block_uses(block.body) - defines
            items.append((defines, uses, block))

        known = set(self.state_names) | set(self.choice_names)
        ordered: List = []
        remaining = list(items)
        while remaining:
            progressed = False
            for entry in list(remaining):
                defines, uses, item = entry
                if uses <= known | defines:
                    ordered.append(item)
                    known |= defines
                    remaining.remove(entry)
                    progressed = True
            if not progressed:
                unresolved = sorted(
                    name for defines, uses, _ in remaining for name in uses - known
                )
                raise TranslationError(
                    "combinational loop or undriven net involving: "
                    + ", ".join(sorted({n for d, _, _ in remaining for n in d}))
                    + (f" (unresolved reads: {unresolved[:6]})" if unresolved else "")
                )
        return ordered

    def _check_no_comb_latch(self, block: ast.AlwaysBlock, defines: Set[str]) -> None:
        always_assigned = _assigned_on_all_paths(block.body)
        latched = defines - always_assigned
        if latched:
            raise TranslationError(
                f"combinational latch inferred on {sorted(latched)}: assign a "
                "default at the top of the always @(*) block",
                block.line,
            )

    def _check_single_driver(self) -> None:
        drivers: Dict[str, int] = {}
        for assign in self.flat.assigns:
            drivers[assign.target] = drivers.get(assign.target, 0) + 1
        for block in self.flat.always_blocks:
            for target in _targets(block.body):
                drivers[target] = drivers.get(target, 0) + 1
        multi = sorted(name for name, count in drivers.items() if count > 1)
        if multi:
            raise TranslationError(f"multiple drivers for: {multi}")
        for name in drivers:
            if name not in self.flat.nets:
                raise TranslationError(f"assignment to undeclared net {name!r}")

    # -- model construction ---------------------------------------------------------

    def build(self) -> SyncModel:
        state_vars = []
        for name in self.state_names:
            net = self.flat.nets[name]
            reset = net.reset_value
            limit = (1 << net.width) - 1
            if not 0 <= reset <= limit:
                raise TranslationError(
                    f"@reset {reset} does not fit in {net.width} bits of {name!r}",
                    net.line,
                )
            state_vars.append(StateVar(name, RangeType(0, limit), reset))
        if self.choices_override is not None:
            override_names = [c.name for c in self.choices_override]
            if sorted(override_names) != sorted(self.choice_names):
                raise TranslationError(
                    "choices_override must cover exactly the free inputs "
                    f"{sorted(self.choice_names)}, got {sorted(override_names)}"
                )
            for point in self.choices_override:
                limit = (1 << self.widths[point.name]) - 1
                for value in point.type.values():
                    if not 0 <= int(value) <= limit:
                        raise TranslationError(
                            f"override domain of {point.name!r} exceeds its "
                            f"{self.widths[point.name]}-bit port"
                        )
            choices = self.choices_override
        else:
            choices = [
                ChoicePoint(name, RangeType(0, (1 << self.widths[name]) - 1))
                for name in self.choice_names
            ]
        return SyncModel(
            name=self.flat.name,
            state_vars=state_vars,
            choices=choices,
            next_state=self._next_state,
        )

    # -- simulation semantics ---------------------------------------------------------

    def _next_state(self, state: Mapping, choice: Mapping) -> Dict:
        env: Dict[str, int] = {}
        env.update(state)
        env.update(choice)
        for item in self.comb_items:
            if isinstance(item, ast.ContinuousAssign):
                env[item.target] = self._mask(item.target, self._eval(item.value, env))
            else:
                self._exec_block(item.body, env)
        updates: Dict[str, int] = {}
        for block in self.clocked_blocks:
            self._exec_clocked(block.body, env, updates)
        return {
            name: updates.get(name, state[name]) for name in self.state_names
        }

    def _exec_block(self, body: Sequence[ast.Statement], env: Dict[str, int]) -> None:
        for statement in body:
            if isinstance(statement, ast.Assign):
                if statement.nonblocking:
                    raise TranslationError(
                        "non-blocking assignment in combinational block",
                        statement.line,
                    )
                env[statement.target] = self._mask(
                    statement.target, self._eval(statement.value, env)
                )
            elif isinstance(statement, ast.If):
                branch = (
                    statement.then_body
                    if self._eval(statement.condition, env)
                    else statement.else_body
                )
                self._exec_block(branch, env)
            elif isinstance(statement, ast.Case):
                self._exec_block(self._case_branch(statement, env), env)

    def _exec_clocked(
        self, body: Sequence[ast.Statement], env: Mapping, updates: Dict[str, int]
    ) -> None:
        for statement in body:
            if isinstance(statement, ast.Assign):
                if not statement.nonblocking:
                    raise TranslationError(
                        "blocking assignment in clocked block (use <=)",
                        statement.line,
                    )
                updates[statement.target] = self._mask(
                    statement.target, self._eval(statement.value, env)
                )
            elif isinstance(statement, ast.If):
                branch = (
                    statement.then_body
                    if self._eval(statement.condition, env)
                    else statement.else_body
                )
                self._exec_clocked(branch, env, updates)
            elif isinstance(statement, ast.Case):
                self._exec_clocked(self._case_branch(statement, env), env, updates)

    def _case_branch(self, statement: ast.Case, env: Mapping) -> List[ast.Statement]:
        subject = self._eval(statement.subject, env)
        default: List[ast.Statement] = []
        for keys, body in statement.items:
            if keys is None:
                default = body
                continue
            if any(self._eval(k, env) == subject for k in keys):
                return body
        return default

    def _mask(self, name: str, value: int) -> int:
        return value & ((1 << self.widths[name]) - 1)

    def _eval(self, expr: ast.Expr, env: Mapping) -> int:
        if isinstance(expr, ast.Number):
            value = expr.value
            if expr.width:
                value &= (1 << expr.width) - 1
            return value
        if isinstance(expr, ast.Ident):
            try:
                return int(env[expr.name])
            except KeyError:
                raise TranslationError(f"read of undriven net {expr.name!r}") from None
        if isinstance(expr, ast.Index):
            base = env.get(expr.base)
            if base is None:
                raise TranslationError(f"read of undriven net {expr.base!r}")
            return (int(base) >> self._eval(expr.index, env)) & 1
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, env)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.Ternary):
            if self._eval(expr.condition, env):
                return self._eval(expr.if_true, env)
            return self._eval(expr.if_false, env)
        raise TranslationError(f"unsupported expression {expr!r}")

    def _eval_unary(self, expr: ast.Unary, env: Mapping) -> int:
        if expr.op in ("&", "|", "^"):
            # Reduction operators need a width: only direct net reads.
            if not isinstance(expr.operand, ast.Ident):
                raise TranslationError(
                    f"reduction {expr.op!r} applies only to a plain net"
                )
            width = self.widths[expr.operand.name]
            bits = [
                (self._eval(expr.operand, env) >> i) & 1 for i in range(width)
            ]
            if expr.op == "&":
                return int(all(bits))
            if expr.op == "|":
                return int(any(bits))
            result = 0
            for bit in bits:
                result ^= bit
            return result
        operand = self._eval(expr.operand, env)
        if expr.op == "!":
            return int(operand == 0)
        if expr.op == "~":
            width = (
                self.widths[expr.operand.name]
                if isinstance(expr.operand, ast.Ident)
                else 32
            )
            return (~operand) & ((1 << width) - 1)
        if expr.op == "-":
            return -operand
        return operand  # unary +

    def _eval_binary(self, expr: ast.Binary, env: Mapping) -> int:
        op = expr.op
        if op == "&&":
            return int(bool(self._eval(expr.left, env)) and bool(self._eval(expr.right, env)))
        if op == "||":
            return int(bool(self._eval(expr.left, env)) or bool(self._eval(expr.right, env)))
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        table: Dict[str, Callable[[], int]] = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: left // right if right else 0,
            "%": lambda: left % right if right else 0,
            "&": lambda: left & right,
            "|": lambda: left | right,
            "^": lambda: left ^ right,
            "<<": lambda: left << right,
            ">>": lambda: left >> right,
            "==": lambda: int(left == right),
            "!=": lambda: int(left != right),
            "<": lambda: int(left < right),
            "<=": lambda: int(left <= right),
            ">": lambda: int(left > right),
            ">=": lambda: int(left >= right),
        }
        if op not in table:
            raise TranslationError(f"unsupported operator {op!r}")
        return table[op]()


# ---------------------------------------------------------------- static helpers


def _targets(body: Sequence[ast.Statement]) -> Set[str]:
    found: Set[str] = set()
    for statement in body:
        if isinstance(statement, ast.Assign):
            found.add(statement.target)
        elif isinstance(statement, ast.If):
            found |= _targets(statement.then_body)
            found |= _targets(statement.else_body)
        elif isinstance(statement, ast.Case):
            for _, case_body in statement.items:
                found |= _targets(case_body)
    return found


def _assigned_on_all_paths(body: Sequence[ast.Statement]) -> Set[str]:
    assigned: Set[str] = set()
    for statement in body:
        if isinstance(statement, ast.Assign):
            assigned.add(statement.target)
        elif isinstance(statement, ast.If):
            then_set = _assigned_on_all_paths(statement.then_body)
            else_set = _assigned_on_all_paths(statement.else_body)
            assigned |= then_set & else_set
        elif isinstance(statement, ast.Case):
            has_default = any(keys is None for keys, _ in statement.items)
            if statement.items and has_default:
                sets = [
                    _assigned_on_all_paths(case_body)
                    for _, case_body in statement.items
                ]
                common = sets[0]
                for other in sets[1:]:
                    common &= other
                assigned |= common
    return assigned


def _expr_uses(expr: ast.Expr) -> Set[str]:
    if isinstance(expr, ast.Ident):
        return {expr.name}
    if isinstance(expr, ast.Index):
        return {expr.base} | _expr_uses(expr.index)
    if isinstance(expr, ast.Unary):
        return _expr_uses(expr.operand)
    if isinstance(expr, ast.Binary):
        return _expr_uses(expr.left) | _expr_uses(expr.right)
    if isinstance(expr, ast.Ternary):
        return (
            _expr_uses(expr.condition)
            | _expr_uses(expr.if_true)
            | _expr_uses(expr.if_false)
        )
    return set()


def _block_uses(body: Sequence[ast.Statement]) -> Set[str]:
    used: Set[str] = set()
    for statement in body:
        if isinstance(statement, ast.Assign):
            used |= _expr_uses(statement.value)
        elif isinstance(statement, ast.If):
            used |= _expr_uses(statement.condition)
            used |= _block_uses(statement.then_body)
            used |= _block_uses(statement.else_body)
        elif isinstance(statement, ast.Case):
            used |= _expr_uses(statement.subject)
            for keys, case_body in statement.items:
                if keys:
                    for key in keys:
                        used |= _expr_uses(key)
                used |= _block_uses(case_body)
    return used


def input_vectors_for_walk(
    model: SyncModel, graph: StateGraph, walk: Sequence[int]
) -> List[Dict[str, int]]:
    """The generic transition-condition mapping for translated designs.

    Each arc of the walk yields one cycle's worth of input forcing: the
    assignment of every free input that the enumeration recorded on that
    arc.  This is exactly what a force/release file encodes.
    """
    vectors: List[Dict[str, int]] = []
    for index in walk:
        edge = graph.edge(index)
        vectors.append(dict(zip(model.choice_names, edge.condition)))
    return vectors
