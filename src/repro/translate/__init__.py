"""HDL-to-FSM translation (oval 1 of Fig. 3.1).

Converts an elaborated Verilog design into a Synchronous Murphi model:
clocked registers become explicit state variables (the latch analysis of
the paper's footnote 1), combinational logic becomes the next-state
function, and the top module's inputs become nondeterministic choice
points driven by the enumerator's abstract environment.
"""

from repro.translate.translator import (
    translate,
    translate_verilog,
    input_vectors_for_walk,
)
from repro.hdl.errors import TranslationError

__all__ = [
    "translate",
    "translate_verilog",
    "input_vectors_for_walk",
    "TranslationError",
]
