"""Resource budgets enforced at enumeration wave boundaries.

A :class:`Budget` bounds a run in wall-clock time, peak memory, or state
count.  The enumerators check it between waves (the only points where the
coordinator state is consistent and checkpointable); on exhaustion they
return the partial graph built so far with ``truncated=True`` and the
coverage achieved, instead of dying with nothing -- and, when
checkpointing is on, write a final checkpoint so the run can be resumed
with a bigger budget later.

Unlike the enumerators' ``max_states=`` cap (a hard error: a silently
truncated graph would invalidate tour-coverage claims), a budget is an
*explicit request* for best-effort partial results, and everything
downstream (pipeline, reports, campaign) is told about the truncation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

def _peak_rss_mb() -> Optional[float]:
    """Peak resident set size of this process in MiB, if measurable.

    Delegates to the one normalized ``ru_maxrss`` helper (KiB on Linux,
    *bytes* on macOS) that lives with the resource sampler -- budgets and
    timelines must agree on what a megabyte of RSS means.  Imported
    lazily: ``repro.obs`` pulls in the enumeration stats, which import
    this module.
    """
    from repro.obs.resource import peak_rss_mb

    return peak_rss_mb()


@dataclass(frozen=True)
class Budget:
    """Limits for one enumeration run; ``None`` fields are unbounded.

    ``max_states`` truncates gracefully once the discovered-state count
    reaches the limit at a wave boundary (contrast with the enumerators'
    ``max_states=`` kwarg, which raises).
    """

    wall_seconds: Optional[float] = None
    max_memory_mb: Optional[float] = None
    max_states: Optional[int] = None

    def start(self) -> "BudgetMeter":
        return BudgetMeter(self)

    def __bool__(self) -> bool:
        return any(
            limit is not None
            for limit in (self.wall_seconds, self.max_memory_mb, self.max_states)
        )


class BudgetMeter:
    """A running budget: started at enumeration begin, polled per wave."""

    def __init__(self, budget: Optional[Budget]):
        self.budget = budget
        self.started = time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def exhausted(self, num_states: int) -> Optional[str]:
        """The name of the first exhausted limit, or ``None`` if within budget."""
        budget = self.budget
        if budget is None:
            return None
        if budget.wall_seconds is not None and self.elapsed() >= budget.wall_seconds:
            return "wall_seconds"
        if budget.max_states is not None and num_states >= budget.max_states:
            return "max_states"
        if budget.max_memory_mb is not None:
            rss = _peak_rss_mb()
            if rss is not None and rss >= budget.max_memory_mb:
                return "max_memory_mb"
        return None
