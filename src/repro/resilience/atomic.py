"""Atomic file writes: temp file in the target directory + ``os.replace``.

Every observability sink (run reports, Chrome traces, metrics JSON) and
every checkpoint goes through these helpers so that a run killed mid-write
never leaves a truncated, unparseable artifact where a good one should be
-- the reader either sees the previous complete version or the new one.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Union


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns the path written."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` (UTF-8) to ``path`` atomically; returns the path."""
    return atomic_write_bytes(path, text.encode("utf-8"))
