"""Route SIGTERM into the SIGINT-at-wave checkpoint/interrupt logic.

The enumeration engines already survive Ctrl-C: checkpoints are written
at wave boundaries *before* a ``KeyboardInterrupt`` can propagate, so an
interrupted run always leaves a resumable snapshot behind (the chaos
suite byte-compares the resumed graph against an uninterrupted one).
But ``kill <pid>`` delivers SIGTERM, whose default disposition is
immediate termination -- no ``KeyboardInterrupt``, no graceful unwind,
and (worse) no guarantee the current wave's checkpoint manifest was
written.

:func:`install_term_to_interrupt` collapses the two paths: SIGTERM is
re-raised in the main thread as ``KeyboardInterrupt``, so everything
built for Ctrl-C -- wave-boundary checkpoints, atomic artifact writers,
the CLI's "interrupted; resume with --resume" exit path -- works
identically under ``kill``.  The one-shot CLI commands and the
``repro serve`` job-runner children both install it; the daemon itself
does *not* (it owns SIGTERM for graceful drain).
"""

from __future__ import annotations

import signal
import threading
from typing import Optional


def install_term_to_interrupt() -> Optional[object]:
    """Make SIGTERM raise ``KeyboardInterrupt``, like Ctrl-C.

    Returns the previous handler (pass it to :func:`restore_term_handler`)
    or ``None`` when installation is impossible -- signal handlers can
    only be installed from the main thread, and only where SIGTERM
    exists.  Callers treat ``None`` as "nothing to undo".
    """
    if threading.current_thread() is not threading.main_thread():
        return None
    if not hasattr(signal, "SIGTERM"):  # pragma: no cover - POSIX-only repo
        return None

    def _handler(signum, frame):
        raise KeyboardInterrupt(f"terminated by signal {signum}")

    try:
        return signal.signal(signal.SIGTERM, _handler)
    except (ValueError, OSError):  # pragma: no cover - exotic embeddings
        return None


def restore_term_handler(previous: Optional[object]) -> None:
    """Undo :func:`install_term_to_interrupt` (no-op on ``None``)."""
    if previous is None:
        return
    if threading.current_thread() is not threading.main_thread():
        return
    try:
        signal.signal(signal.SIGTERM, previous)
    except (ValueError, OSError):  # pragma: no cover
        pass
