"""Retry policy for shard expansion on a crashed or wedged worker pool."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How the parallel coordinator reacts to a failed wave shard.

    A shard *fails* when its worker dies (the pool turns up broken) or
    when its result does not arrive within ``shard_timeout`` seconds (a
    wedged or poisoned worker).  Every failure event retires the current
    pool, waits an exponentially growing backoff, respawns the pool, and
    resubmits every not-yet-collected shard of the wave.  A shard that
    fails more than ``max_retries`` times tips the whole run into
    *degraded mode*: the remaining shards and waves are expanded
    in-process by the coordinator, which is slower but cannot crash-loop
    -- and, because expansion is pure, produces identical results.
    """

    #: Retries per shard after its first attempt, before degrading.
    max_retries: int = 2
    #: First backoff delay; doubles per retry (``backoff_multiplier``).
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max: float = 2.0
    #: Per-shard result deadline; ``None`` waits forever (not recommended).
    shard_timeout: Optional[float] = 60.0

    def backoff(self, retry_number: int) -> float:
        """Delay before retry ``retry_number`` (1-based)."""
        delay = self.backoff_seconds * (
            self.backoff_multiplier ** max(0, retry_number - 1)
        )
        return min(delay, self.backoff_max)
