"""Resilience layer: checkpoint/resume, crash recovery, budgets, fault injection.

The methodology's long breadth-first enumerations (the PP control model
explores hundreds of thousands of states) and multi-hour comparison
campaigns must survive worker crashes, OOM kills and Ctrl-C.  This
package supplies the pieces the enumeration engines and the pipeline
thread together:

- :mod:`repro.resilience.checkpoint` -- atomic on-disk snapshots of the
  BFS coordinator state (:class:`CheckpointStore`), written at wave
  boundaries and resumable to a bit-identical final graph;
- :mod:`repro.resilience.budget` -- :class:`Budget` limits (wall clock,
  memory, states) enforced at wave boundaries, degrading to a usable
  *partial* graph flagged ``truncated`` instead of losing the run;
- :mod:`repro.resilience.retry` -- :class:`RetryPolicy` for dead or
  wedged pool workers: per-shard timeouts, exponential backoff, pool
  respawn, and graceful degradation to in-process expansion;
- :mod:`repro.resilience.faults` -- a deterministic, seeded
  :class:`FaultPlan` that can kill a worker, stall a shard, deliver
  SIGINT at a wave boundary, or corrupt on-disk artifacts -- the chaos
  harness ``tests/test_resilience.py`` uses to prove every recovery path;
- :mod:`repro.resilience.atomic` -- temp-file + ``os.replace`` writers so
  an interrupted run never leaves a truncated JSON artifact behind.
"""

from repro.resilience.atomic import atomic_write_bytes, atomic_write_text
from repro.resilience.budget import Budget, BudgetMeter
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointConfig,
    CheckpointError,
    CheckpointStore,
    build_payload,
    model_digest,
    resolve_resume,
)
from repro.resilience.faults import FaultPlan, corrupt_file
from repro.resilience.retry import RetryPolicy
from repro.resilience.signals import install_term_to_interrupt, restore_term_handler

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "Budget",
    "BudgetMeter",
    "CHECKPOINT_SCHEMA",
    "CheckpointConfig",
    "CheckpointError",
    "CheckpointStore",
    "build_payload",
    "model_digest",
    "resolve_resume",
    "FaultPlan",
    "corrupt_file",
    "RetryPolicy",
    "install_term_to_interrupt",
    "restore_term_handler",
]
