"""Deterministic fault injection for the enumeration harness itself.

A :class:`FaultPlan` scripts failures at exact, reproducible points so the
chaos suite (``tests/test_resilience.py``) can prove every recovery path:

- **kill a worker** expanding shard S of wave W (``os._exit`` inside the
  forked worker -- indistinguishable from an OOM kill);
- **stall a shard** past the coordinator's per-shard timeout;
- **deliver SIGINT** to the coordinator at a wave boundary, after the
  checkpoint for that boundary is written (a scripted Ctrl-C);
- **corrupt on-disk artifacts** (cache pickles, manifests, checkpoints)
  with a seeded byte-flip or truncation via :func:`corrupt_file`.

Worker-side hooks only fire inside forked pool workers (guarded by a flag
the pool initializer sets), so degraded in-process expansion can never
kill the coordinator.  All of this is test machinery: production runs
simply pass ``faults=None`` everywhere.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, scripted set of failures for one enumeration run."""

    seed: int = 0
    #: Kill the worker expanding ``(wave, shard)``; ``kill_attempts`` is how
    #: many successive attempts die (large values force retry exhaustion
    #: and the degraded-to-sequential path).
    kill_shard: Optional[Tuple[int, int]] = None
    kill_attempts: int = 1
    #: Stall the worker expanding ``(wave, shard)`` for ``slow_seconds`` on
    #: its first ``slow_attempts`` attempts (trips the shard timeout).
    slow_shard: Optional[Tuple[int, int]] = None
    slow_seconds: float = 0.0
    slow_attempts: int = 1
    #: Deliver SIGINT to the coordinator once this many waves completed
    #: (fires after that boundary's checkpoint, if any, is written).
    sigint_after_wave: Optional[int] = None
    #: Same, but SIGTERM -- a scripted ``kill``.  Only meaningful when a
    #: handler is installed (see :mod:`repro.resilience.signals`); the
    #: default disposition would terminate the process outright.
    sigterm_after_wave: Optional[int] = None
    #: Sleep this long at every wave boundary.  The serve chaos tests use
    #: it to stretch an otherwise-fast enumeration so a daemon can be
    #: killed deterministically *mid-job*, with checkpoints on disk.
    slow_every_wave: float = 0.0

    def worker_hook(self, wave: int, shard: int, attempt: int) -> None:
        """Run inside a pool worker at the start of shard expansion."""
        if self.slow_shard == (wave, shard) and attempt < self.slow_attempts:
            time.sleep(self.slow_seconds)
        if self.kill_shard == (wave, shard) and attempt < self.kill_attempts:
            os._exit(3)

    def boundary_hook(self, waves_completed: int) -> None:
        """Run by the coordinator after each wave boundary's bookkeeping."""
        if self.slow_every_wave > 0.0:
            time.sleep(self.slow_every_wave)
        if self.sigint_after_wave == waves_completed:
            if threading.current_thread() is threading.main_thread():
                # A real signal: exercises the interpreter's KeyboardInterrupt
                # delivery exactly like an operator's Ctrl-C.
                os.kill(os.getpid(), signal.SIGINT)
            else:  # pragma: no cover - signal semantics need the main thread
                raise KeyboardInterrupt
        if self.sigterm_after_wave == waves_completed:
            # A real kill: only survivable with the SIGTERM-to-interrupt
            # handler installed, which is exactly what the test asserts.
            os.kill(os.getpid(), signal.SIGTERM)


def corrupt_file(
    path: Union[str, Path],
    seed: int = 0,
    mode: str = "flip",
) -> Path:
    """Deterministically damage a file: ``flip`` a byte or ``truncate`` it.

    The seeded RNG picks the byte to flip (and the value XORed into it),
    so a chaos test corrupts the same offset on every run.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    rng = random.Random(seed)
    if mode == "truncate":
        path.write_bytes(bytes(data[: len(data) // 2]))
    elif mode == "flip":
        if not data:
            raise ValueError(f"cannot byte-flip empty file {path}")
        index = rng.randrange(len(data))
        data[index] ^= rng.randrange(1, 256)
        path.write_bytes(bytes(data))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path
