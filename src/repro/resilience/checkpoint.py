"""Atomic checkpoints of the BFS coordinator state.

At every wave boundary the enumeration coordinator's full state is
captured by four values: the interned :class:`~repro.enumeration.graph.StateGraph`
(state keys in discovery order + the recorded arcs, from which the
seen-arc set is reconstructed exactly), the frontier wave (the ids of
every discovered-but-unexpanded state, in id order), the count of
transitions explored, and the number of completed waves.  Because state
expansion is a pure function of the model, resuming from a checkpoint
produces a **bit-identical** final graph -- the golden test in
``tests/test_resilience.py`` compares ``StateGraph.to_json`` byte-for-byte
against an uninterrupted run.

On-disk format (``repro.checkpoint/1``)
---------------------------------------
``<dir>/wave<NNNNNN>.ckpt`` is the JSON payload; ``wave<NNNNNN>.json`` is
a small manifest carrying a SHA-256 checksum of the payload bytes plus
summary fields (states, edges, frontier size, model, config digest).
Both are written via temp-file + ``os.replace``, manifest last, so a
manifest always refers to a complete payload.  ``load`` verifies the
checksum and the schema; a corrupt or tampered checkpoint is *refused*
(:class:`CheckpointError`), never silently resumed.

The ``config_digest`` field fingerprints the model declaration (state
variables, domains, resets, choice points) and the enumeration mode, so a
checkpoint can never be resumed against a different model or flags.
"""

from __future__ import annotations

import hashlib
import json
import logging
import re
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.resilience.atomic import atomic_write_text

logger = logging.getLogger("repro.resilience")

#: Checkpoint format version; embedded in payloads and manifests.
CHECKPOINT_SCHEMA = "repro.checkpoint/1"

_NAME_RE = re.compile(r"^wave(\d{6,})$")


class CheckpointError(Exception):
    """A checkpoint is missing, corrupt, or belongs to a different run."""


def model_digest(model, record_all_conditions: bool = False) -> str:
    """Fingerprint of a model declaration + enumeration mode.

    Two runs may exchange checkpoints only when their digests match: same
    state variables (names, domains, resets), same choice points, same
    ``record_all_conditions`` mode.  The transition *function* cannot be
    hashed (it is an arbitrary closure), so the digest is a strong guard
    against config mixups, not a cryptographic identity.
    """
    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "model": model.name,
        "state_vars": [
            (v.name, repr(v.type), repr(v.reset)) for v in model.state_vars
        ],
        "choices": [(c.name, repr(c.type)) for c in model.choices],
        "bits": model.state_bits(),
        "record_all_conditions": bool(record_all_conditions),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def build_payload(
    graph,
    frontier: Sequence[int],
    transitions_explored: int,
    waves_completed: int,
    config_digest: str,
    model_name: str,
) -> Dict[str, Any]:
    """The JSON-able coordinator snapshot both enumeration engines share."""
    return {
        "schema": CHECKPOINT_SCHEMA,
        "model": model_name,
        "config_digest": config_digest,
        "graph_json": graph.to_json(),
        "frontier": list(frontier),
        "transitions_explored": transitions_explored,
        "waves_completed": waves_completed,
    }


def resolve_resume(
    resume,
    checkpoint: Optional["CheckpointConfig"],
    config_digest: str,
) -> Optional[Dict[str, Any]]:
    """Normalize an enumerator's ``resume=`` argument to a verified payload.

    ``resume`` may be ``None``/``False`` (fresh run), ``True`` (load the
    newest verifiable checkpoint from ``checkpoint.store``), or an
    already-loaded payload dict.  The payload's config digest must match
    the current model + flags; anything else is a :class:`CheckpointError`
    -- resuming across configs would silently corrupt the graph.
    """
    if not resume:
        return None
    if resume is True:
        if checkpoint is None:
            raise CheckpointError(
                "resume=True needs a checkpoint= store to load from"
            )
        payload = checkpoint.store.load_latest()
        if payload is None:
            raise CheckpointError(
                f"no resumable checkpoint in {checkpoint.store.directory}"
            )
    elif isinstance(resume, dict):
        payload = resume
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"resume payload has schema {payload.get('schema')!r}, "
                f"expected {CHECKPOINT_SCHEMA!r}"
            )
    else:
        raise TypeError(
            f"resume must be None, True, or a checkpoint payload dict, "
            f"got {type(resume).__name__}"
        )
    if payload.get("config_digest") != config_digest:
        raise CheckpointError(
            "checkpoint was written by a different model/config "
            f"(digest {str(payload.get('config_digest'))[:12]} != "
            f"{config_digest[:12]}); refusing to resume"
        )
    return payload


class CheckpointConfig:
    """How an enumeration run checkpoints: where, and how often.

    Parameters
    ----------
    store:
        A :class:`CheckpointStore` (or a directory path to make one in).
    every_waves:
        Write a checkpoint each time this many further waves complete.
    """

    def __init__(self, store: Union["CheckpointStore", str, Path],
                 every_waves: int = 1):
        if not isinstance(store, CheckpointStore):
            store = CheckpointStore(store)
        if every_waves < 1:
            raise ValueError(f"every_waves must be >= 1, got {every_waves}")
        self.store = store
        self.every_waves = every_waves


class CheckpointStore:
    """Directory of integrity-checked enumeration checkpoints."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint directory {self.directory} is unusable: {exc}"
            ) from exc

    # -- paths ---------------------------------------------------------------

    def payload_path(self, name: str) -> Path:
        return self.directory / f"{name}.ckpt"

    def manifest_path(self, name: str) -> Path:
        return self.directory / f"{name}.json"

    # -- writing -------------------------------------------------------------

    def save(self, payload: Dict[str, Any]) -> str:
        """Atomically persist ``payload``; returns the checkpoint name.

        The payload is written first, then the manifest (carrying the
        payload's SHA-256), so an interruption between the two leaves an
        orphan payload but never a manifest pointing at garbage.
        """
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"refusing to save payload with schema {payload.get('schema')!r}"
            )
        name = f"wave{payload['waves_completed']:06d}"
        text = json.dumps(payload, sort_keys=True)
        blob = text.encode("utf-8")
        atomic_write_text(self.payload_path(name), text)
        manifest = {
            "schema": CHECKPOINT_SCHEMA,
            "name": name,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "size": len(blob),
            "model": payload.get("model"),
            "config_digest": payload.get("config_digest"),
            "waves_completed": payload["waves_completed"],
            "frontier": len(payload.get("frontier", [])),
            "transitions_explored": payload.get("transitions_explored"),
            "created": time.time(),
        }
        atomic_write_text(
            self.manifest_path(name), json.dumps(manifest, indent=2, sort_keys=True)
        )
        logger.info(
            "checkpoint %s written (%d bytes, %d frontier states)",
            name, len(blob), manifest["frontier"],
        )
        return name

    # -- reading -------------------------------------------------------------

    def names(self) -> List[str]:
        """Checkpoint names present on disk, oldest wave first."""
        found = []
        for path in self.directory.glob("wave*.ckpt"):
            match = _NAME_RE.match(path.stem)
            if match:
                found.append((int(match.group(1)), path.stem))
        return [name for _, name in sorted(found)]

    def latest(self) -> Optional[str]:
        names = self.names()
        return names[-1] if names else None

    def manifest(self, name: str) -> Dict[str, Any]:
        path = self.manifest_path(name)
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {name} has no readable manifest: {exc}"
            ) from exc

    def verify(self, name: str) -> Optional[str]:
        """Integrity-check one checkpoint; returns a problem or ``None``."""
        try:
            manifest = self.manifest(name)
        except CheckpointError as exc:
            return str(exc)
        if manifest.get("schema") != CHECKPOINT_SCHEMA:
            return f"manifest schema is {manifest.get('schema')!r}"
        try:
            blob = self.payload_path(name).read_bytes()
        except OSError as exc:
            return f"payload unreadable: {exc}"
        digest = hashlib.sha256(blob).hexdigest()
        if digest != manifest.get("sha256"):
            return (f"payload checksum mismatch: manifest says "
                    f"{str(manifest.get('sha256'))[:12]}, file is {digest[:12]}")
        return None

    def load(self, name: str) -> Dict[str, Any]:
        """Return a verified checkpoint payload; raise on any corruption."""
        problem = self.verify(name)
        if problem:
            raise CheckpointError(f"checkpoint {name} failed verification: {problem}")
        payload = json.loads(self.payload_path(name).read_text())
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint {name} has schema {payload.get('schema')!r}, "
                f"expected {CHECKPOINT_SCHEMA!r}"
            )
        return payload

    def load_latest(self) -> Optional[Dict[str, Any]]:
        """The newest verifiable checkpoint, or ``None`` if the store is empty.

        Corrupt checkpoints are skipped (with a warning) in favour of the
        newest older one that still verifies -- a half-written or tampered
        latest snapshot must not make the whole run unresumable.
        """
        for name in reversed(self.names()):
            problem = self.verify(name)
            if problem is None:
                return self.load(name)
            logger.warning("skipping checkpoint %s: %s", name, problem)
        return None

    # -- housekeeping --------------------------------------------------------

    def prune(self, keep: int = 1) -> int:
        """Delete all but the newest ``keep`` checkpoints; returns count removed."""
        names = self.names()
        doomed = names[: max(0, len(names) - keep)] if keep > 0 else names
        removed = 0
        for name in doomed:
            for path in (self.payload_path(name), self.manifest_path(name)):
                try:
                    path.unlink()
                except OSError:
                    continue
            removed += 1
        return removed
