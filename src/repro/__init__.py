"""repro: a reproduction of "Architecture Validation for Processors"
(Ho, Yang, Horowitz, Dill -- ISCA 1995).

Coverage-driven validation for processor control logic: translate the
design to interacting FSMs, fully enumerate the control state graph,
generate transition tours covering every arc, map them to test vectors,
and simulate implementation vs specification to expose "multiple event"
corner-case bugs.

Quickstart::

    from repro.core import ValidationPipeline
    pipeline = ValidationPipeline()
    report = pipeline.validate()          # clean design: no divergence
    print(report.summary())

Package map
-----------
- ``repro.smurphi``      Synchronous Murphi modeling language
- ``repro.enumeration``  full state enumeration (section 3.2)
- ``repro.tour``         transition tours, Fig. 3.3 + Chinese Postman
- ``repro.vectors``      transition-condition mapping to test vectors
- ``repro.hdl``          synthesizable-Verilog front end
- ``repro.translate``    HDL -> FSM translation (section 3.1)
- ``repro.pp``           the Stanford FLASH Protocol Processor substrate
- ``repro.bugs``         the six Table 2.1 bugs, injectable
- ``repro.harness``      implementation-vs-spec comparison + baselines
- ``repro.errata``       the R4000 errata study (Table 1.1)
- ``repro.core``         the end-to-end pipeline (Fig. 3.1)
- ``repro.obs``          observability: metrics, tracing, run reports
"""

__version__ = "1.0.0"
