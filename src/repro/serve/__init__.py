"""Validation-as-a-service: the crash-tolerant ``repro serve`` daemon.

ROADMAP item 2: the CLI is one-shot, production traffic means a daemon.
This package exposes the validation pipeline as a long-running HTTP/JSON
service (stdlib only: asyncio + a handwritten HTTP/1.1 layer) whose
headline property is **robustness**:

- :mod:`repro.serve.jobs` -- the job model: kinds (enumerate / validate
  / campaign), canonical parameter normalization, content-addressed job
  ids (identical submissions collapse to one job), and the child-process
  job runner that executes a job with heartbeats, checkpoints and
  budgets;
- :mod:`repro.serve.journal` -- the durable JSONL job journal
  (``repro.job-journal/1``): every state transition is an fsync'd
  append, so a daemon killed with SIGKILL replays the journal on restart
  and resumes running jobs from their checkpoints;
- :mod:`repro.serve.queue` -- the bounded priority queue with admission
  control: saturation sheds load (HTTP 429 + ``Retry-After``) instead of
  growing without bound;
- :mod:`repro.serve.workers` -- the bounded worker pool: jobs run in
  child processes, worker crashes retry per
  :class:`~repro.resilience.RetryPolicy` then degrade to in-daemon
  execution, and SIGTERM drains gracefully (checkpoint, requeue, flush);
- :mod:`repro.serve.sse` -- Server-Sent Events streaming of the
  per-job heartbeat channel (:mod:`repro.obs.progress`);
- :mod:`repro.serve.app` -- the asyncio HTTP server tying it together,
  plus the ``repro serve`` entry point.
"""

from repro.serve.app import ServeConfig, ValidationServer, run_server
from repro.serve.jobs import (
    EXIT_CHECKPOINTED,
    JOB_KINDS,
    Job,
    JobSpecError,
    job_key,
    normalize_params,
)
from repro.serve.journal import (
    JOURNAL_SCHEMA,
    JobJournal,
    read_journal,
    recover_jobs,
    replay_journal,
    validate_journal,
)
from repro.serve.queue import AdmissionQueue, QueueFull
from repro.serve.sse import format_event, parse_sse
from repro.serve.workers import WorkerPool

__all__ = [
    "ServeConfig",
    "ValidationServer",
    "run_server",
    "EXIT_CHECKPOINTED",
    "JOB_KINDS",
    "Job",
    "JobSpecError",
    "job_key",
    "normalize_params",
    "JOURNAL_SCHEMA",
    "JobJournal",
    "read_journal",
    "recover_jobs",
    "replay_journal",
    "validate_journal",
    "AdmissionQueue",
    "QueueFull",
    "format_event",
    "parse_sse",
    "WorkerPool",
]
