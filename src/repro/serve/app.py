"""The ``repro serve`` daemon: asyncio HTTP server over the job machinery.

Stdlib only -- a deliberately small, handwritten HTTP/1.1 layer on
``asyncio.start_server`` (every response is ``Connection: close``; the
service's unit of work is a job, not a connection).  The server owns the
in-memory job table and wires the durable pieces together:

- every externally visible transition goes **journal first**
  (:class:`~repro.serve.journal.JobJournal` fsyncs before the HTTP
  response leaves), so a SIGKILLed daemon replays to exactly the state
  clients were told about;
- on startup the journal is replayed and interrupted jobs re-enter the
  queue *resumable* (:func:`~repro.serve.journal.recover_jobs`);
- admission control maps a full queue -- or an RSS above the configured
  memory budget -- to ``429`` + ``Retry-After``;
- ``SIGTERM`` / ``POST /drain`` triggers the graceful sequence: stop
  admitting (``503``), SIGTERM running children (they checkpoint and
  exit), journal ``drain_complete``, exit ``0``.

HTTP surface
------------
- ``POST /jobs``            submit (``202``; ``200`` on dedup; ``429`` shed;
  ``503`` draining; ``400`` bad spec)
- ``GET /jobs``             job summaries + queue stats
- ``GET /jobs/<id>``        full job document
- ``GET /jobs/<id>/result`` the result (``409`` until terminal)
- ``GET /jobs/<id>/events`` live SSE: heartbeats + state transitions
- ``DELETE /jobs/<id>``     cancel a *queued* job (``409`` if running)
- ``GET /healthz``, ``GET /stats``, ``POST /drain``
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import re
import signal
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Set, Tuple

from repro.resilience import RetryPolicy
from repro.resilience.atomic import atomic_write_text
from repro.obs.progress import tail_heartbeats
from repro.obs.resource import current_rss_mb
from repro.serve.jobs import Job, JobPaths, JobSpecError
from repro.serve.journal import (
    JobJournal,
    read_journal,
    recover_jobs,
    replay_journal,
)
from repro.serve.queue import AdmissionQueue, QueueFull
from repro.serve.sse import POLL_INTERVAL, SSE_CONTENT_TYPE, format_event
from repro.serve.workers import WorkerPool

logger = logging.getLogger("repro.serve")

#: Largest request body the server will read (a job spec is ~1 KB).
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

_JOB_PATH = re.compile(r"^/jobs/([0-9a-f]{16})(/result|/events)?$")


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs to run (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0
    state_dir: str = ".repro-serve"
    workers: int = 2
    max_pending: int = 64
    #: Shed new work (429) while daemon RSS exceeds this many MiB.
    memory_budget_mb: Optional[float] = None
    #: "process" forks a child per attempt (the real daemon); "inline"
    #: runs jobs in a thread (benchmarks, platforms without fork).
    execution: str = "process"
    #: Per-attempt hard timeout; a child exceeding it is killed and the
    #: attempt counts as a crash (then retry policy applies).
    job_timeout: Optional[float] = None
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_retries=2, backoff_seconds=0.2)
    )
    #: After retries are exhausted, run one last attempt in-daemon.
    degrade_inline: bool = True
    cache_dir: Optional[str] = None
    #: Where to write the bound port (for --port 0 orchestration).
    port_file: Optional[str] = None

    def __post_init__(self) -> None:
        if self.execution not in ("process", "inline"):
            raise ValueError(f"unknown execution mode {self.execution!r}")
        if self.cache_dir is None:
            self.cache_dir = str(Path(self.state_dir) / "cache")


class ValidationServer:
    """The daemon: job table + queue + worker pool + journal + HTTP."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.state_dir = Path(config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.draining = False
        self.started_at = time.time()
        self.stats: Dict[str, int] = {
            "submitted": 0, "deduplicated": 0, "completed": 0, "failed": 0,
            "retried": 0, "degraded": 0, "shed": 0, "cancelled": 0,
            "recovered": 0,
        }
        # A restarted daemon may hold a code digest memoized by a parent
        # process from *before* the deploy that restarted it (fork-based
        # supervisors re-exec nothing).  Refresh it before replaying the
        # journal so every recovered job keys against the code actually
        # on disk -- a stale digest would silently serve pre-deploy
        # artifacts to post-deploy jobs.
        from repro.core.cache import code_version

        code_version(refresh=True)
        # Crash recovery: fold the journal back into the job table, then
        # requeue whatever was queued or running when the last daemon
        # died.  Running jobs come back *resumable* -- their wave
        # checkpoints are on disk.
        records, dropped = read_journal(self.journal_path)
        self.jobs: Dict[str, Job] = replay_journal(records)
        requeue = recover_jobs(self.jobs)
        self.journal = JobJournal(self.journal_path)
        self.journal.append(
            "serve_start", pid=os.getpid(),
            recovered=len(requeue), dropped_tail_lines=dropped,
        )
        self.queue = AdmissionQueue(config.max_pending)
        for job in requeue:
            if job.resumable:
                self.journal.append("requeued", job.id, reason="recovery",
                                    resumable=True)
                self.stats["recovered"] += 1
            self.queue.push(job, force=True)
        if requeue:
            self.journal.append("recovered", count=len(requeue))
        self.pool = WorkerPool(self)
        self._server: Optional[asyncio.AbstractServer] = None
        self._sse_tasks: Set[asyncio.Task] = set()
        self._drain_task: Optional[asyncio.Task] = None
        self.port: Optional[int] = None

    # -- paths ---------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.state_dir / "journal.jsonl"

    def paths_for(self, job_id: str) -> JobPaths:
        return JobPaths.for_job(self.state_dir, job_id)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.port_file:
            atomic_write_text(Path(self.config.port_file), f"{self.port}\n")
        self.pool.start()

    def begin_drain(self) -> asyncio.Task:
        """Idempotent drain kick-off; every caller awaits the same task."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain()
            )
        return self._drain_task

    async def drain(self) -> None:
        await self.begin_drain()

    async def _drain(self) -> None:
        """Graceful shutdown: stop admitting, checkpoint, flush, close."""
        self.draining = True
        self.journal.append("drain_begin", pid=os.getpid())
        await self.pool.drain()
        if self._sse_tasks:
            # SSE loops notice ``draining`` within one poll; give them
            # a bounded window to say goodbye, then cut them off.
            try:
                await asyncio.wait_for(
                    asyncio.gather(*self._sse_tasks, return_exceptions=True),
                    timeout=3 * POLL_INTERVAL + 1.0,
                )
            except asyncio.TimeoutError:
                for task in self._sse_tasks:
                    task.cancel()
        self.journal.append("drain_complete", pid=os.getpid())
        self.journal.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- transitions the worker pool drives (journal first, then memory) -----

    def note_started(self, job: Job, mode: str) -> None:
        self.journal.append(
            "started", job.id, attempt=job.attempts, worker_pid=job.worker_pid,
            mode=mode, dequeued_at=job.dequeued_at, resume=job.resumable,
        )

    def note_retry(self, job: Job, attempt: int, error: str) -> None:
        self.stats["retried"] += 1
        self.journal.append("requeued", job.id, reason="retry",
                            attempt=attempt, error=error, resumable=True)

    def note_degraded(self, job: Job) -> None:
        job.degraded = True
        self.stats["degraded"] += 1
        self.journal.append("degraded", job.id, attempt=job.attempts)

    def complete_job(self, job: Job, result: Dict[str, Any]) -> None:
        job.result = result
        job.error = None
        job.finished_at = time.time()
        self.journal.append("completed", job.id, result=result,
                            attempts=job.attempts)
        job.state = "done"
        self.stats["completed"] += 1
        if job.dequeued_at is not None:
            self.queue.record_duration(job.finished_at - job.dequeued_at)

    def fail_job(self, job: Job, error: str) -> None:
        job.error = error
        job.finished_at = time.time()
        self.journal.append("failed", job.id, error=error,
                            attempts=job.attempts)
        job.state = "failed"
        self.stats["failed"] += 1
        if job.dequeued_at is not None:
            self.queue.record_duration(job.finished_at - job.dequeued_at)

    def requeue_job(self, job: Job, reason: str) -> None:
        job.resumable = True
        job.worker_pid = None
        self.journal.append("requeued", job.id, reason=reason, resumable=True)
        job.state = "queued"
        if reason != "drain":
            self.queue.push(job, force=True)

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await asyncio.wait_for(self._read_request(reader),
                                                 timeout=10.0)
            except (asyncio.IncompleteReadError, asyncio.LimitOverrunError,
                    asyncio.TimeoutError, ValueError):
                return
            if request is None:
                return
            method, path, body = request
            if method == "GET" and _JOB_PATH.match(path) and \
                    path.endswith("/events"):
                await self._handle_sse(writer, path)
                return
            status, doc, headers = self._route(method, path, body)
            self._write_response(writer, status, doc, headers)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception:  # noqa: BLE001 - one bad connection, not the daemon
            logger.exception("error handling request")
            try:
                self._write_response(writer, 500, {"error": "internal error"})
                await writer.drain()
            except OSError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        header_blob = await reader.readuntil(b"\r\n\r\n")
        head, _, _ = header_blob.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            return None
        method, target = parts[0].upper(), parts[1]
        path = target.split("?", 1)[0]
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > MAX_BODY_BYTES:
            raise ValueError("body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        doc: Dict[str, Any],
                        headers: Optional[Dict[str, str]] = None) -> None:
        payload = json.dumps(doc, default=repr).encode()
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)

    # -- routing -------------------------------------------------------------

    def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path == "/jobs" and method == "GET":
            return 200, {
                "jobs": [job.summary() for job in self.jobs.values()],
                "queue": self._queue_stats(),
            }, None
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "draining": self.draining,
                         "pid": os.getpid(), "port": self.port}, None
        if path == "/stats" and method == "GET":
            return 200, self._stats_doc(), None
        if path == "/drain" and method == "POST":
            self.begin_drain()
            return 202, {"draining": True}, None
        match = _JOB_PATH.match(path)
        if match:
            job = self.jobs.get(match.group(1))
            if job is None:
                return 404, {"error": f"unknown job {match.group(1)!r}"}, None
            suffix = match.group(2)
            if suffix is None and method == "GET":
                return 200, job.to_dict(), None
            if suffix is None and method == "DELETE":
                return self._cancel(job)
            if suffix == "/result" and method == "GET":
                return self._result(job)
        return 405, {"error": f"no route for {method} {path}"}, None

    def _submit(
        self, body: bytes
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        if self.draining:
            return 503, {"error": "draining; resubmit to the next daemon"}, None
        try:
            job = Job.from_submission(json.loads(body.decode() or "{}"))
        except ValueError as exc:
            # JobSpecError and plain JSON decode errors both land here.
            kind = "invalid job spec" if isinstance(exc, JobSpecError) \
                else "invalid JSON"
            return 400, {"error": f"{kind}: {exc}"}, None
        existing = self.jobs.get(job.id)
        if existing is not None and existing.state not in ("failed", "cancelled"):
            # Content-addressed dedup: same kind+params+budget IS the
            # same job.  (failed/cancelled jobs may be resubmitted.)
            self.stats["deduplicated"] += 1
            return 200, {"job_id": existing.id, "state": existing.state,
                         "deduplicated": True}, None
        if self.config.memory_budget_mb is not None:
            rss = current_rss_mb()
            if rss is not None and rss > self.config.memory_budget_mb:
                self.stats["shed"] += 1
                retry_after = self.queue.retry_after(self.config.workers)
                return 429, {
                    "error": f"memory budget exceeded (rss={rss:.0f} MiB)",
                    "retry_after": retry_after,
                }, {"Retry-After": str(retry_after)}
        try:
            position = self.queue.push(job, workers=self.config.workers)
        except QueueFull as exc:
            self.stats["shed"] += 1
            return 429, {
                "error": str(exc), "pending": exc.pending,
                "retry_after": exc.retry_after,
            }, {"Retry-After": str(exc.retry_after)}
        # Journal before the 202 leaves: once a client has been told
        # "accepted", a crash must not forget the job.
        self.jobs[job.id] = job
        self.stats["submitted"] += 1
        self.journal.append(
            "submitted", job.id,
            job={"id": job.id, "kind": job.kind, "params": job.params,
                 "priority": job.priority, "budget": job.budget,
                 "submitted_at": job.submitted_at},
        )
        return 202, {"job_id": job.id, "state": "queued",
                     "position": position, "deduplicated": False}, None

    def _cancel(
        self, job: Job
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        if job.terminal:
            return 200, {"job_id": job.id, "state": job.state}, None
        if not self.queue.cancel(job.id):
            return 409, {"error": f"job {job.id} is {job.state}; only queued "
                                  "jobs can be cancelled"}, None
        job.finished_at = time.time()
        self.journal.append("cancelled", job.id)
        job.state = "cancelled"
        self.stats["cancelled"] += 1
        return 200, {"job_id": job.id, "state": "cancelled"}, None

    def _result(
        self, job: Job
    ) -> Tuple[int, Dict[str, Any], Optional[Dict[str, str]]]:
        if job.state == "done":
            result = job.result or self.paths_for(job.id).load_result()
            return 200, {"job_id": job.id, "result": result}, None
        if job.state == "failed":
            return 200, {"job_id": job.id, "state": "failed",
                         "error": job.error}, None
        return 409, {"job_id": job.id, "state": job.state,
                     "error": "job not finished"}, None

    def _queue_stats(self) -> Dict[str, Any]:
        return {
            "pending": len(self.queue),
            "max_pending": self.queue.max_pending,
            "shed": self.queue.shed_count,
            "retry_after": self.queue.retry_after(self.config.workers),
        }

    def _stats_doc(self) -> Dict[str, Any]:
        rss = current_rss_mb()
        return {
            "pid": os.getpid(),
            "uptime_seconds": time.time() - self.started_at,
            "draining": self.draining,
            "workers": self.config.workers,
            "jobs": len(self.jobs),
            "rss_mb": rss,
            "queue": self._queue_stats(),
            "counters": dict(self.stats),
        }

    # -- SSE -----------------------------------------------------------------

    async def _handle_sse(self, writer: asyncio.StreamWriter,
                          path: str) -> None:
        job = self.jobs.get(_JOB_PATH.match(path).group(1))
        if job is None:
            self._write_response(writer, 404, {"error": "unknown job"})
            await writer.drain()
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            f"Content-Type: {SSE_CONTENT_TYPE}\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode())
        task = asyncio.current_task()
        self._sse_tasks.add(task)
        try:
            await self._stream_events(writer, job)
        finally:
            self._sse_tasks.discard(task)

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             job: Job) -> None:
        heartbeat_path = str(self.paths_for(job.id).heartbeats)
        offset = 0
        last_state: Optional[str] = None
        while True:
            if job.state != last_state:
                writer.write(format_event("state", job.summary()))
                last_state = job.state
            records, offset = tail_heartbeats(heartbeat_path, offset)
            for record in records:
                writer.write(format_event("heartbeat", record))
            await writer.drain()
            if job.terminal:
                writer.write(format_event("done", job.summary()))
                await writer.drain()
                return
            if self.draining:
                writer.write(format_event(
                    "drain", {"job_id": job.id, "state": job.state}
                ))
                await writer.drain()
                return
            await asyncio.sleep(POLL_INTERVAL)


def run_server(config: ServeConfig) -> int:
    """Run the daemon until SIGTERM/SIGINT, then drain; the CLI entry."""

    async def _main() -> None:
        server = ValidationServer(config)
        await server.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, ValueError):  # pragma: no cover
                signal.signal(signum, lambda *_: stop.set())
        print(f"repro serve: listening on {config.host}:{server.port} "
              f"(pid {os.getpid()}, state {config.state_dir})", flush=True)
        drain_watch = asyncio.ensure_future(stop.wait())
        # /drain can also initiate shutdown; wake up when either happens.
        while not stop.is_set() and not server.draining:
            await asyncio.wait({drain_watch}, timeout=0.2)
        drain_watch.cancel()
        print("repro serve: draining", file=sys.stderr, flush=True)
        await server.drain()

    asyncio.run(_main())
    return 0
