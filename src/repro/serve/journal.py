"""The durable job journal: every state transition, fsync'd, replayable.

The daemon's job table is an in-memory dict; the journal is its write-
ahead log.  Every transition -- submitted, started, completed, failed,
cancelled, requeued -- appends one JSON line to
``<state_dir>/journal.jsonl`` and **fsyncs** before the transition takes
effect anywhere a client can observe it.  A daemon killed with SIGKILL
therefore restarts by folding the journal back into the job table
(:func:`replay_journal`): ``done`` jobs keep their results, ``queued``
jobs re-enter the queue, and jobs that were ``running`` at the kill are
requeued *resumable* -- their enumeration checkpoints are on disk, so
the retry continues from the last wave instead of starting over, and the
final artifacts byte-compare equal to an uninterrupted run.

Journal schema (``repro.job-journal/1``)
----------------------------------------
One JSON object per line::

    {"schema": "repro.job-journal/1",
     "seq": <monotone line counter, int>,
     "ts": <seconds since the Unix epoch, float>,
     "event": <transition name, str>,
     "job_id": <job id, str, or null for daemon-level events>,
     ...event-specific fields}

Events: ``submitted`` (carries the full job payload), ``started``
(attempt, worker_pid, mode), ``completed`` (result summary), ``failed``
(error), ``cancelled``, ``requeued`` (reason: retry | drain | recovery),
``degraded``, and the daemon-level ``serve_start`` / ``drain_begin`` /
``drain_complete`` / ``recovered``.

Torn tails are expected, not fatal: a crash can land mid-append, so
:func:`read_journal` drops an unparseable *final* line (and only the
final line -- corruption anywhere else is reported loudly by
:func:`validate_journal`).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.serve.jobs import Job

#: Journal line format version.
JOURNAL_SCHEMA = "repro.job-journal/1"

#: Event names a journal may contain.
JOURNAL_EVENTS = (
    "submitted", "started", "completed", "failed", "cancelled",
    "requeued", "degraded",
    "serve_start", "drain_begin", "drain_complete", "recovered",
)


class JobJournal:
    """Append-only, fsync'd JSONL journal of job state transitions."""

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Resume the seq counter past any existing lines so a restarted
        # daemon keeps the monotone ordering replay depends on.
        records, _ = read_journal(self.path)
        self.seq = (records[-1]["seq"] + 1) if records else 0
        self._file = open(self.path, "a")

    def append(self, event: str, job_id: Optional[str] = None,
               **fields: Any) -> Dict[str, Any]:
        """Durably append one transition; returns the written record."""
        record = {
            "schema": JOURNAL_SCHEMA,
            "seq": self.seq,
            "ts": time.time(),
            "event": event,
            "job_id": job_id,
        }
        record.update(fields)
        self.seq += 1
        self._file.write(json.dumps(record, default=repr) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())
        return record

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def read_journal(path) -> Tuple[List[Dict[str, Any]], int]:
    """Load journal records; returns ``(records, dropped_tail_lines)``.

    A torn final line (crash mid-append) is dropped and counted; torn
    lines anywhere *else* are kept as ``{"_corrupt": raw}`` markers so
    :func:`validate_journal` can flag them.
    """
    records: List[Dict[str, Any]] = []
    dropped = 0
    try:
        lines = Path(path).read_text().splitlines()
    except OSError:
        return records, dropped
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            if index == len(lines) - 1:
                dropped += 1
            else:
                records.append({"_corrupt": line})
    return records, dropped


def validate_journal(records: Iterable[Mapping[str, Any]]) -> List[str]:
    """Structural validation of a journal; returns the list of problems."""
    problems: List[str] = []
    last_seq = None
    for index, record in enumerate(records):
        if "_corrupt" in record:
            problems.append(f"line {index}: unparseable (mid-file corruption)")
            continue
        if record.get("schema") != JOURNAL_SCHEMA:
            problems.append(
                f"line {index}: schema {record.get('schema')!r} != "
                f"{JOURNAL_SCHEMA!r}"
            )
        if record.get("event") not in JOURNAL_EVENTS:
            problems.append(f"line {index}: unknown event {record.get('event')!r}")
        seq = record.get("seq")
        if not isinstance(seq, int):
            problems.append(f"line {index}: bad seq {seq!r}")
        elif last_seq is not None and seq <= last_seq:
            problems.append(f"line {index}: seq {seq} not increasing")
        if isinstance(seq, int):
            last_seq = seq
        if not isinstance(record.get("ts"), (int, float)):
            problems.append(f"line {index}: bad ts {record.get('ts')!r}")
        if record.get("event") == "submitted" and not isinstance(
            record.get("job"), dict
        ):
            problems.append(f"line {index}: submitted without a job payload")
    return problems


def replay_journal(
    records: Iterable[Mapping[str, Any]],
) -> Dict[str, Job]:
    """Fold a journal back into the job table.

    Pure state-machine fold -- no filesystem access.  The caller decides
    what to do with the result (the daemon requeues ``queued`` jobs and
    marks interrupted ``running`` jobs resumable).
    """
    jobs: Dict[str, Job] = {}
    for record in records:
        if "_corrupt" in record:
            continue
        event = record.get("event")
        job_id = record.get("job_id")
        if event == "submitted" and isinstance(record.get("job"), dict):
            doc = record["job"]
            jobs[doc["id"]] = Job(
                id=doc["id"],
                kind=doc["kind"],
                params=doc["params"],
                priority=doc.get("priority", 0),
                budget=doc.get("budget"),
                submitted_at=doc.get("submitted_at", record.get("ts", 0.0)),
            )
            continue
        job = jobs.get(job_id)
        if job is None:
            continue
        if event == "started":
            job.state = "running"
            job.attempts = record.get("attempt", job.attempts + 1)
            job.worker_pid = record.get("worker_pid")
            if job.dequeued_at is None:
                job.dequeued_at = record.get("dequeued_at", record.get("ts"))
        elif event == "completed":
            job.state = "done"
            job.finished_at = record.get("ts")
            job.worker_pid = None
            if isinstance(record.get("result"), dict):
                job.result = record["result"]
        elif event == "failed":
            job.state = "failed"
            job.finished_at = record.get("ts")
            job.worker_pid = None
            job.error = record.get("error")
        elif event == "cancelled":
            job.state = "cancelled"
            job.finished_at = record.get("ts")
        elif event == "requeued":
            job.state = "queued"
            job.worker_pid = None
            job.resumable = bool(record.get("resumable", True))
        elif event == "degraded":
            job.degraded = True
    return jobs


def recover_jobs(jobs: Dict[str, Job]) -> List[Job]:
    """Post-replay fixup: interrupted ``running`` jobs become resumable.

    Returns the jobs that must re-enter the queue (recovered runners
    first -- they were admitted earliest -- then still-queued jobs).
    """
    requeue: List[Job] = []
    for job in jobs.values():
        if job.state == "running":
            # The daemon died under this job: its child is gone (orphaned
            # children die with the daemon's process group or finish
            # without anyone to collect the result -- either way the
            # attempt is void), but its checkpoints survive.
            job.state = "queued"
            job.worker_pid = None
            job.resumable = True
            requeue.append(job)
        elif job.state == "queued":
            requeue.append(job)
    requeue.sort(key=lambda j: (-j.priority, j.submitted_at))
    return requeue
