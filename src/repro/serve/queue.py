"""Bounded priority queue with admission control (shed, don't drown).

The daemon's first robustness rule: a saturated service says *no*
quickly (HTTP 429 + ``Retry-After``) instead of accepting work it cannot
finish and growing its queue -- and eventually its RSS -- without bound.
:class:`AdmissionQueue` enforces a hard ``max_pending`` depth; the
server maps :class:`QueueFull` to 429 and computes ``Retry-After`` from
the queue's own observed service times (trailing-average job duration x
queue depth / workers), so the hint clients get is grounded in what the
daemon is actually sustaining.

Ordering is ``(-priority, submission order)``: higher priority first,
FIFO within a priority band.  All access happens on the daemon's single
event loop, so the structure is deliberately lock-free; workers block on
an :class:`asyncio.Event` that every push sets.
"""

from __future__ import annotations

import asyncio
import heapq
import math
from collections import deque
from typing import Deque, List, Optional, Set, Tuple

from repro.serve.jobs import Job


class QueueFull(Exception):
    """Admission refused: the queue is at ``max_pending``."""

    def __init__(self, pending: int, retry_after: int):
        super().__init__(
            f"queue full ({pending} pending); retry after ~{retry_after}s"
        )
        self.pending = pending
        self.retry_after = retry_after


class AdmissionQueue:
    """Priority queue with a hard depth bound and a service-time estimate."""

    def __init__(self, max_pending: int = 64):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self._heap: List[Tuple[int, int, str]] = []
        self._jobs: dict = {}
        self._cancelled: Set[str] = set()
        self._seq = 0
        self._event = asyncio.Event()
        #: Trailing job durations (seconds) feeding the Retry-After hint.
        self.durations: Deque[float] = deque(maxlen=32)
        self.shed_count = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    # -- admission -----------------------------------------------------------

    def retry_after(self, workers: int = 1) -> int:
        """Seconds a shed client should wait: depth x avg duration / workers."""
        avg = (sum(self.durations) / len(self.durations)) if self.durations else 2.0
        estimate = (len(self._jobs) + 1) * avg / max(1, workers)
        return max(1, min(600, math.ceil(estimate)))

    def push(self, job: Job, workers: int = 1, force: bool = False) -> int:
        """Admit ``job`` (returns queue position) or raise :class:`QueueFull`.

        ``force`` bypasses the depth bound -- used only for journal
        recovery, where shedding previously-admitted work would break
        the durability contract.
        """
        if not force and len(self._jobs) >= self.max_pending:
            self.shed_count += 1
            raise QueueFull(len(self._jobs), self.retry_after(workers))
        self._cancelled.discard(job.id)
        self._jobs[job.id] = job
        heapq.heappush(self._heap, (-job.priority, self._seq, job.id))
        self._seq += 1
        self._event.set()
        return len(self._jobs)

    # -- consumption ---------------------------------------------------------

    def pop_ready(self) -> Optional[Job]:
        """The highest-priority pending job, or ``None`` when empty."""
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs.pop(job_id, None)
            if job is not None and job_id not in self._cancelled:
                if not self._jobs:
                    self._event.clear()
                return job
        self._event.clear()
        return None

    async def get(self) -> Job:
        """Wait until a job is available and return it."""
        while True:
            job = self.pop_ready()
            if job is not None:
                return job
            await self._event.wait()

    def cancel(self, job_id: str) -> bool:
        """Remove a still-queued job; returns whether it was pending."""
        if job_id in self._jobs:
            del self._jobs[job_id]
            self._cancelled.add(job_id)
            return True
        return False

    def record_duration(self, seconds: float) -> None:
        self.durations.append(max(0.0, seconds))

    def pending_ids(self) -> List[str]:
        return list(self._jobs)
