"""The serve job model and the child-process job runner.

A *job* is one pipeline run (enumerate, validate, or campaign) requested
over HTTP.  Two design decisions carry the robustness story:

**Content-addressed identity.**  A job's id is the SHA-256 of its
canonical ``(kind, normalized params, budget)`` payload.  Two clients
submitting the same configuration therefore name the *same* job -- the
daemon's dedup is a dictionary lookup, not a heuristic -- and the
underlying artifact-cache single-flight lock
(:meth:`repro.core.cache.ArtifactCache.single_flight`) guarantees one
build even across unrelated processes (a concurrent CLI run, a second
daemon).

**Out-of-process execution.**  Jobs run in forked child processes
(:func:`spawn_job_process`), so an OOM kill or a chaos-test SIGKILL
takes down one job attempt, never the daemon.  The child installs the
SIGTERM-to-KeyboardInterrupt handler
(:mod:`repro.resilience.signals`), checkpoints enumeration every wave,
streams heartbeats to a per-job JSONL file (the SSE source), and writes
its result atomically.  Exit codes are the contract with the worker
pool:

- ``0``   -- result written (possibly budget-truncated; the result says so);
- ``75``  -- interrupted by drain (SIGTERM): a resumable checkpoint is on
  disk (``EX_TEMPFAIL``, following sendmail convention);
- ``1``   -- the job raised; ``error.json`` holds the details;
- killed  -- anything with a signal: the worker retries per policy.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.resilience import Budget, FaultPlan
from repro.resilience.atomic import atomic_write_text

#: Job kinds the daemon accepts, mirroring the one-shot CLI commands.
JOB_KINDS = ("enumerate", "validate", "campaign")

#: Job lifecycle states (journalled on every transition).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Child exit code meaning "interrupted but checkpointed; requeue me".
EXIT_CHECKPOINTED = 75

#: Parameters accepted for every kind, with their defaults.  The service
#: defaults to the small model (fill_words=1): a shared daemon should be
#: cheap by default and explicit about expensive work.
_COMMON_DEFAULTS: Dict[str, Any] = {
    "fill_words": 1,
    "extra_pipe_stages": 0,
    "kernel": "compiled",
    # Namespacing knob: a tag is part of the job identity, so campaigns
    # that must NOT dedupe against each other (load tests, A/B reruns)
    # submit distinct tags.
    "tag": None,
    # Test machinery, mirroring the pipeline's faults= plumbing: a dict
    # of FaultPlan fields (e.g. {"slow_every_wave": 0.05}) the chaos
    # suite uses to stretch or interrupt jobs deterministically.
    "chaos": None,
}

_KIND_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "enumerate": {"record_all_conditions": False},
    "validate": {
        "limit": 400,
        "seed": 0,
        "bugs": [],
        "run_all": False,
        # Named model edits from repro.incremental.EDIT_CATALOG, applied
        # in order.  Jobs name edits; they never ship code.
        "edits": [],
        # Allow serving this job by diff-and-splice against a cached
        # build of a related model (byte-identical either way).
        "incremental": True,
    },
    "campaign": {"limit": 400, "seed": 0},
}

_BUDGET_FIELDS = ("wall_seconds", "max_memory_mb", "max_states")


class JobSpecError(ValueError):
    """A submission payload that cannot become a job (HTTP 400)."""


def normalize_params(kind: str, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Apply defaults and reject unknown keys; the canonical param dict.

    Normalization runs *before* hashing, so ``{}`` and an explicit
    ``{"fill_words": 1}`` are the same job.
    """
    if kind not in JOB_KINDS:
        raise JobSpecError(f"unknown job kind {kind!r}; known: {list(JOB_KINDS)}")
    allowed = dict(_COMMON_DEFAULTS)
    allowed.update(_KIND_DEFAULTS[kind])
    params = dict(params or {})
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise JobSpecError(
            f"unknown parameter(s) {unknown} for kind {kind!r}; "
            f"accepted: {sorted(allowed)}"
        )
    normalized = dict(allowed)
    normalized.update(params)
    if normalized["kernel"] not in ("compiled", "interpreted"):
        raise JobSpecError(f"unknown kernel {normalized['kernel']!r}")
    if kind == "validate":
        normalized["bugs"] = sorted(int(b) for b in normalized["bugs"] or [])
        from repro.incremental.edits import EDIT_CATALOG

        edits = list(normalized["edits"] or [])
        unknown_edits = sorted(set(edits) - set(EDIT_CATALOG))
        if unknown_edits:
            raise JobSpecError(
                f"unknown model edit(s) {unknown_edits}; catalog: "
                f"{sorted(EDIT_CATALOG)}"
            )
        # Order is semantic (rewrites compose), so it is preserved.
        normalized["edits"] = edits
        if not isinstance(normalized["incremental"], bool):
            raise JobSpecError("incremental must be a boolean")
    chaos = normalized.get("chaos")
    if chaos is not None:
        if not isinstance(chaos, dict):
            raise JobSpecError("chaos must be a dict of FaultPlan fields")
        valid = {f.name for f in dataclasses.fields(FaultPlan)}
        bad = sorted(set(chaos) - valid)
        if bad:
            raise JobSpecError(f"unknown chaos field(s) {bad}")
    return normalized


def normalize_budget(budget: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Canonical per-job budget dict (or ``None`` for unbounded)."""
    if not budget:
        return None
    unknown = sorted(set(budget) - set(_BUDGET_FIELDS))
    if unknown:
        raise JobSpecError(
            f"unknown budget field(s) {unknown}; accepted: {list(_BUDGET_FIELDS)}"
        )
    normalized = {name: budget.get(name) for name in _BUDGET_FIELDS}
    if all(value is None for value in normalized.values()):
        return None
    return normalized


def job_key(kind: str, params: Dict[str, Any],
            budget: Optional[Dict[str, Any]] = None) -> str:
    """Content address of a job: same config, same id, one build."""
    payload = {"kind": kind, "params": params, "budget": budget}
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass
class Job:
    """One submitted job and its full lifecycle state."""

    id: str
    kind: str
    params: Dict[str, Any]
    priority: int = 0
    budget: Optional[Dict[str, Any]] = None
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    #: First dequeue time: the wall budget clock starts *here*, not at
    #: submission -- time spent waiting in the queue is the operator's
    #: capacity problem, not the client's budget.
    dequeued_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    worker_pid: Optional[int] = None
    #: True once a resumable checkpoint is known to exist (set on retry,
    #: drain and crash recovery); the next attempt resumes instead of
    #: restarting.
    resumable: bool = False
    degraded: bool = False
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None

    @classmethod
    def from_submission(cls, payload: Dict[str, Any]) -> "Job":
        """Build a job from a ``POST /jobs`` body; raises :class:`JobSpecError`."""
        if not isinstance(payload, dict):
            raise JobSpecError("submission body must be a JSON object")
        kind = payload.get("kind")
        params = normalize_params(kind, payload.get("params"))
        budget = normalize_budget(payload.get("budget"))
        priority = payload.get("priority", 0)
        if not isinstance(priority, int):
            raise JobSpecError("priority must be an integer")
        extra = sorted(set(payload) - {"kind", "params", "budget", "priority"})
        if extra:
            raise JobSpecError(f"unknown submission field(s) {extra}")
        return cls(
            id=job_key(kind, params, budget),
            kind=kind,
            params=params,
            budget=budget,
            priority=priority,
        )

    def to_dict(self) -> Dict[str, Any]:
        doc = dataclasses.asdict(self)
        doc["wall_remaining"] = self.wall_remaining()
        return doc

    def summary(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
        }

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def wall_remaining(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds left in the wall budget, measured from first dequeue."""
        if not self.budget or self.budget.get("wall_seconds") is None:
            return None
        if self.dequeued_at is None:
            return float(self.budget["wall_seconds"])
        now = time.time() if now is None else now
        return max(0.0, float(self.budget["wall_seconds"]) - (now - self.dequeued_at))


# ---------------------------------------------------------------------------
# On-disk layout for one job
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobPaths:
    """Where one job keeps its durable state under the daemon state dir."""

    root: Path

    @classmethod
    def for_job(cls, state_dir: Path, job_id: str) -> "JobPaths":
        return cls(root=Path(state_dir) / "jobs" / job_id)

    @property
    def result(self) -> Path:
        return self.root / "result.json"

    @property
    def error(self) -> Path:
        return self.root / "error.json"

    @property
    def heartbeats(self) -> Path:
        return self.root / "heartbeats.jsonl"

    @property
    def checkpoints(self) -> Path:
        return self.root / "checkpoints"

    @property
    def graph(self) -> Path:
        return self.root / "graph.json"

    def ensure(self) -> "JobPaths":
        self.root.mkdir(parents=True, exist_ok=True)
        return self

    def load_result(self) -> Optional[Dict[str, Any]]:
        try:
            return json.loads(self.result.read_text())
        except (OSError, ValueError):
            return None

    def load_error(self) -> Optional[str]:
        try:
            return json.loads(self.error.read_text()).get("error")
        except (OSError, ValueError):
            return None

    def has_resumable_checkpoint(self) -> bool:
        from repro.resilience import CheckpointStore

        if not self.checkpoints.is_dir():
            return False
        try:
            return bool(CheckpointStore(self.checkpoints).names())
        except Exception:
            return False


# ---------------------------------------------------------------------------
# Job execution (runs in a child process, or inline under a thread)
# ---------------------------------------------------------------------------


def _chaos_plan(params: Dict[str, Any]) -> Optional[FaultPlan]:
    chaos = params.get("chaos")
    return FaultPlan(**chaos) if chaos else None


def _budget_for_attempt(job_budget: Optional[Dict[str, Any]],
                        wall_remaining: Optional[float]) -> Optional[Budget]:
    if job_budget is None:
        return None
    return Budget(
        wall_seconds=wall_remaining,
        max_memory_mb=job_budget.get("max_memory_mb"),
        max_states=job_budget.get("max_states"),
    )


def execute_job(
    job_doc: Dict[str, Any],
    paths: JobPaths,
    cache_dir: Optional[str],
    wall_remaining: Optional[float],
    resume: bool,
) -> Dict[str, Any]:
    """Run one job attempt to completion; returns (and persists) the result.

    Heartbeats stream to ``paths.heartbeats`` for the SSE endpoint;
    enumeration checkpoints land in ``paths.checkpoints`` every wave so
    any interruption -- drain, crash, SIGKILL -- resumes instead of
    restarting.  The result JSON is written atomically as the last step:
    a result file on disk *means* the job finished.
    """
    from repro.obs import Observer, ProgressReporter
    from repro.pp.fsm_model import PPModelConfig

    kind = job_doc["kind"]
    params = job_doc["params"]
    paths.ensure()
    model_config = PPModelConfig(
        fill_words=params["fill_words"],
        extra_pipe_stages=params["extra_pipe_stages"],
    )
    budget = _budget_for_attempt(job_doc.get("budget"), wall_remaining)
    faults = _chaos_plan(params)
    resume = resume and paths.has_resumable_checkpoint()
    observer = Observer(progress=ProgressReporter(path=str(paths.heartbeats)))
    started = time.perf_counter()
    try:
        if kind == "enumerate":
            result = _run_enumerate(
                model_config, params, paths, budget, faults, resume, observer
            )
        elif kind == "validate":
            result = _run_validate(
                model_config, params, paths, cache_dir, budget, faults,
                resume, observer,
            )
        else:
            result = _run_campaign(
                model_config, params, paths, cache_dir, budget, faults,
                resume, observer,
            )
    finally:
        observer.close()
    result.update(
        kind=kind,
        job_id=job_doc["id"],
        elapsed_seconds=time.perf_counter() - started,
        resumed=resume,
    )
    atomic_write_text(paths.result, json.dumps(result, indent=2, sort_keys=True))
    return result


def _checkpoint_config(paths: JobPaths):
    from repro.resilience import CheckpointConfig

    return CheckpointConfig(paths.checkpoints, every_waves=1)


def _run_enumerate(model_config, params, paths, budget, faults, resume,
                   observer) -> Dict[str, Any]:
    from repro.enumeration import enumerate_states
    from repro.pp.fsm_model import build_pp_control_model

    model = build_pp_control_model(model_config)
    graph, stats = enumerate_states(
        model,
        record_all_conditions=params["record_all_conditions"],
        obs=observer,
        checkpoint=_checkpoint_config(paths),
        resume=resume,
        budget=budget,
        faults=faults,
        kernel=params["kernel"],
    )
    # The graph JSON is the job's byte-comparable artifact: the chaos
    # suite diffs it against an uninterrupted run after kill/resume.
    atomic_write_text(paths.graph, graph.to_json())
    return {
        "num_states": graph.num_states,
        "num_edges": graph.num_edges,
        "truncated": stats.truncated,
        "budget_outcome": stats.budget_outcome,
        "checkpoints_written": stats.checkpoints_written,
        "graph_path": str(paths.graph),
    }


def _run_validate(model_config, params, paths, cache_dir, budget, faults,
                  resume, observer) -> Dict[str, Any]:
    from repro.core.pipeline import ValidationPipeline
    from repro.incremental.edits import resolve_edits
    from repro.pp.rtl.core import CoreConfig

    pipeline = ValidationPipeline(
        model_config=model_config,
        max_instructions_per_trace=params["limit"] or None,
        seed=params["seed"],
        jobs=1,
        cache_dir=cache_dir,
        observer=observer,
        checkpoint_dir=str(paths.checkpoints),
        budget=budget,
        kernel=params["kernel"],
        edits=resolve_edits(params["edits"]),
        incremental=params["incremental"],
    )
    pipeline.build(resume=resume, faults=faults)
    config = CoreConfig(mem_latency=0)
    if params["bugs"]:
        config = config.with_bugs(*params["bugs"])
    report = pipeline.validate(config=config,
                               stop_on_divergence=not params["run_all"])
    atomic_write_text(paths.graph, pipeline.artifacts.graph.to_json())
    return {
        "clean": report.clean,
        "traces_run": report.traces_run,
        "total_traces": report.total_traces,
        "diverging_traces": len(report.diverging_traces),
        "bugs": params["bugs"],
        "edits": params["edits"],
        "truncated": pipeline.artifacts.enumeration.truncated,
        "cache": pipeline.cache_info,
        "graph_path": str(paths.graph),
    }


def _run_campaign(model_config, params, paths, cache_dir, budget, faults,
                  resume, observer) -> Dict[str, Any]:
    from repro.harness.campaign import ValidationCampaign

    campaign = ValidationCampaign(
        model_config=model_config,
        seed=params["seed"],
        max_instructions_per_trace=params["limit"] or None,
        jobs=1,
        cache_dir=cache_dir,
        observer=observer,
        checkpoint_dir=str(paths.checkpoints),
        budget=budget,
        resume=resume,
        kernel=params["kernel"],
    )
    results = campaign.evaluate_all_bugs()
    found = sum(r.outcomes["generated"].detected for r in results)
    atomic_write_text(paths.graph, campaign.pipeline.artifacts.graph.to_json())
    return {
        "bugs_evaluated": len(results),
        "bugs_detected_by_generated": found,
        "truncated": campaign.enum_stats.truncated,
        "cache": campaign.pipeline.cache_info,
        "graph_path": str(paths.graph),
        "table": [
            {
                "bug": r.bug_id,
                "detected": {
                    method: outcome.detected
                    for method, outcome in r.outcomes.items()
                },
            }
            for r in results
        ],
    }


def _die_with_parent() -> None:
    """Linux ``PR_SET_PDEATHSIG``: a SIGKILLed daemon takes its job
    children down with it.

    Without this an orphaned child would keep running after the daemon
    is killed, finish, and tidy away the very checkpoints the restarted
    daemon needs to resume from -- and journal recovery assumes a
    ``running`` job's attempt died with the daemon.  Best-effort: on
    platforms without ``prctl`` the orphan merely wastes some CPU.
    """
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGKILL, 0, 0, 0)  # 1 == PR_SET_PDEATHSIG
        if os.getppid() == 1:  # parent died before prctl took effect
            os.kill(os.getpid(), signal.SIGKILL)
    except (OSError, AttributeError, ValueError):  # pragma: no cover
        pass


def _child_main(job_doc: Dict[str, Any], root: str, cache_dir: Optional[str],
                wall_remaining: Optional[float], resume: bool) -> None:
    """Entry point inside the forked job process."""
    from repro.resilience.signals import install_term_to_interrupt

    _die_with_parent()
    # Drain protocol: the daemon SIGTERMs us; the handler turns that
    # into KeyboardInterrupt, enumeration stops at the next wave boundary
    # (checkpoint already written), and we exit EXIT_CHECKPOINTED.
    install_term_to_interrupt()
    paths = JobPaths(root=Path(root))
    try:
        execute_job(job_doc, paths, cache_dir, wall_remaining, resume)
    except KeyboardInterrupt:
        sys.exit(EXIT_CHECKPOINTED)
    except BaseException as exc:  # noqa: BLE001 - report, then die
        paths.ensure()
        try:
            atomic_write_text(
                paths.error,
                json.dumps({"error": f"{type(exc).__name__}: {exc}"}),
            )
        except OSError:
            pass
        sys.exit(1)
    sys.exit(0)


def spawn_job_process(
    job: Job,
    paths: JobPaths,
    cache_dir: Optional[str],
    wall_remaining: Optional[float],
    resume: bool,
) -> multiprocessing.Process:
    """Fork a child running ``job``; the caller owns wait/kill/retry.

    Fork (not spawn) keeps attempt startup at milliseconds -- the child
    inherits the daemon's imported modules -- and matches the parallel
    enumeration engine's choice.  Platforms without fork fall back to
    the default start method.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platform
        context = multiprocessing.get_context()
    process = context.Process(
        target=_child_main,
        args=(job.to_dict(), str(paths.root), cache_dir, wall_remaining, resume),
        daemon=False,
    )
    process.start()
    return process
