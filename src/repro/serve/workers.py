"""The bounded worker pool: out-of-process jobs, retries, degrade, drain.

Each worker is an asyncio task that pulls one job at a time off the
:class:`~repro.serve.queue.AdmissionQueue` and runs it in a forked child
process (:func:`~repro.serve.jobs.spawn_job_process`).  The failure
handling mirrors the parallel enumeration coordinator's, one level up:

- a child that dies (SIGKILL, OOM, a crash) is **retried** with
  exponential backoff per :class:`~repro.resilience.RetryPolicy`; every
  retry resumes from the job's wave checkpoints, so work done before the
  kill is never repeated;
- a job whose retries are exhausted **degrades** to in-daemon execution
  (a thread), which is slower and unprotected but cannot crash-loop --
  the same ladder the enumeration engines use;
- a **drain** (SIGTERM to the daemon) SIGTERMs running children, whose
  own handler checkpoints and exits ``EXIT_CHECKPOINTED``; the job is
  journalled back to ``queued`` *resumable* and the next daemon start
  picks it up where it stopped.

The per-job wall budget is measured **from first dequeue**: a job that
waited in the queue has spent none of its budget, and a retried job
resumes with only the *remaining* wall time -- crash-looping cannot
extend a budget.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import List, Optional, Set

from repro.serve.jobs import (
    EXIT_CHECKPOINTED,
    Job,
    JobPaths,
    execute_job,
    spawn_job_process,
)

logger = logging.getLogger("repro.serve")

#: How often a worker polls its child process (and the drain flag).
_CHILD_POLL = 0.05


class WorkerPool:
    """N asyncio workers sharing the server's queue, journal and stats."""

    def __init__(self, server):
        self.server = server
        self.config = server.config
        self._tasks: List[asyncio.Task] = []
        self._drain_event = asyncio.Event()
        self._children: Set[object] = set()

    @property
    def draining(self) -> bool:
        return self._drain_event.is_set()

    def start(self) -> None:
        for index in range(self.config.workers):
            self._tasks.append(
                asyncio.create_task(self._worker(index), name=f"worker-{index}")
            )

    async def drain(self) -> None:
        """Stop taking work, checkpoint running children, wait for workers."""
        self._drain_event.set()
        for process in list(self._children):
            if process.is_alive():
                process.terminate()  # SIGTERM -> child checkpoints + exit 75
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()

    # -- the worker loop -----------------------------------------------------

    async def _worker(self, index: int) -> None:
        queue = self.server.queue
        while not self.draining:
            get_task = asyncio.ensure_future(queue.get())
            drain_task = asyncio.ensure_future(self._drain_event.wait())
            done, _ = await asyncio.wait(
                {get_task, drain_task}, return_when=asyncio.FIRST_COMPLETED
            )
            if get_task not in done:
                get_task.cancel()
                drain_task.cancel()
                break
            drain_task.cancel()
            job = get_task.result()
            if self.draining:
                # Grabbed at the drain edge: leave it queued (the journal
                # still says so) for the next daemon start.
                break
            try:
                await self._run_job(job, index)
            except Exception:  # noqa: BLE001 - a worker must never die
                logger.exception("worker %d: unexpected error on job %s",
                                 index, job.id)
                self.server.fail_job(job, "internal worker error")

    async def _run_job(self, job: Job, index: int) -> None:
        server = self.server
        retry = self.config.retry
        max_attempts = retry.max_retries + 1
        job.state = "running"
        if job.dequeued_at is None:
            job.dequeued_at = time.time()
        paths = server.paths_for(job.id).ensure()
        attempt_here = 0
        while True:
            attempt_here += 1
            job.attempts += 1
            resume = job.resumable or attempt_here > 1
            wall_remaining = job.wall_remaining()
            if self.config.execution == "process":
                exitcode = await self._attempt_in_process(
                    job, paths, wall_remaining, resume
                )
            else:
                exitcode = await self._attempt_inline(
                    job, paths, wall_remaining, resume
                )
            if exitcode == 0:
                result = paths.load_result()
                if result is not None:
                    server.complete_job(job, result)
                    return
                exitcode = -1  # clean exit but no result: treat as a crash
            if exitcode == EXIT_CHECKPOINTED:
                # Drain interruption: checkpointed, back to the queue (on
                # disk only -- the daemon is exiting).
                server.requeue_job(job, reason="drain")
                return
            error = paths.load_error() or f"worker process exited {exitcode}"
            if attempt_here < max_attempts:
                server.note_retry(job, attempt_here, error)
                job.resumable = paths.has_resumable_checkpoint()
                await asyncio.sleep(retry.backoff(attempt_here))
                if self.draining:
                    server.requeue_job(job, reason="drain")
                    return
                continue
            # Retries exhausted: degrade to in-daemon execution, the
            # attempt of last resort (slower, but SIGKILL-proof).
            if self.config.execution == "process" and self.config.degrade_inline:
                server.note_degraded(job)
                exitcode = await self._attempt_inline(
                    job, paths, job.wall_remaining(),
                    paths.has_resumable_checkpoint(),
                )
                if exitcode == 0:
                    result = paths.load_result()
                    if result is not None:
                        server.complete_job(job, result)
                        return
                error = paths.load_error() or error
            server.fail_job(job, error)
            return

    async def _attempt_in_process(
        self, job: Job, paths: JobPaths,
        wall_remaining: Optional[float], resume: bool,
    ) -> int:
        process = spawn_job_process(
            job, paths, self.config.cache_dir, wall_remaining, resume
        )
        self._children.add(process)
        job.worker_pid = process.pid
        self.server.note_started(job, mode="process")
        started = time.monotonic()
        terminated = False
        killed = False
        try:
            while process.is_alive():
                if self.draining and not terminated:
                    process.terminate()
                    terminated = True
                timeout = self.config.job_timeout
                if (timeout is not None and not killed
                        and time.monotonic() - started > timeout):
                    logger.warning("job %s attempt timed out after %.1fs; "
                                   "killing worker", job.id, timeout)
                    process.kill()
                    killed = True
                await asyncio.sleep(_CHILD_POLL)
            process.join()
            return process.exitcode if process.exitcode is not None else -1
        finally:
            self._children.discard(process)
            job.worker_pid = None

    async def _attempt_inline(
        self, job: Job, paths: JobPaths,
        wall_remaining: Optional[float], resume: bool,
    ) -> int:
        self.server.note_started(job, mode="inline")

        def _run() -> int:
            try:
                execute_job(
                    job.to_dict(), paths, self.config.cache_dir,
                    wall_remaining, resume,
                )
                return 0
            except BaseException as exc:  # noqa: BLE001
                import json

                from repro.resilience.atomic import atomic_write_text

                try:
                    atomic_write_text(
                        paths.error,
                        json.dumps({"error": f"{type(exc).__name__}: {exc}"}),
                    )
                except OSError:
                    pass
                return 1

        return await asyncio.to_thread(_run)
