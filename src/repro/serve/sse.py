"""Server-Sent Events: stream a job's heartbeat channel to HTTP clients.

``GET /jobs/<id>/events`` replays exactly the substrate PR 6 built: the
job runner's :class:`~repro.obs.progress.ProgressReporter` writes
``repro.heartbeat/1`` JSONL to a per-job file; this module tails that
file (:func:`repro.obs.progress.tail_heartbeats`) and forwards each
record as one SSE ``heartbeat`` event.  The stream is framed by
``state`` events (the job document on attach and on every state change)
and ends with a ``done`` event when the job reaches a terminal state --
or a ``drain`` event when the daemon is shutting down, so no client is
left hanging on a socket the server is about to close.

SSE needs no client library (``curl -N`` renders it) and no protocol
state on the server beyond a file offset, which is what makes it the
right fit for a crash-tolerant daemon: a reconnecting client simply
re-attaches and the tail resumes from the start of the (durable) file.
"""

from __future__ import annotations

import json
from typing import Any, Dict

#: Media type of an SSE response.
SSE_CONTENT_TYPE = "text/event-stream"

#: How often the streamer polls the heartbeat file and the job state.
POLL_INTERVAL = 0.1


def format_event(event: str, data: Dict[str, Any]) -> bytes:
    """One SSE frame: ``event:`` + single-line ``data:`` + blank line."""
    payload = json.dumps(data, default=repr)
    return f"event: {event}\ndata: {payload}\n\n".encode()


def parse_sse(text: str):
    """Parse an SSE byte stream back into ``(event, data)`` pairs.

    Test/CI helper -- the inverse of :func:`format_event` for the frames
    this server emits (single-line ``data:``).
    """
    frames = []
    event = None
    for line in text.splitlines():
        if line.startswith("event:"):
            event = line.split(":", 1)[1].strip()
        elif line.startswith("data:") and event is not None:
            frames.append((event, json.loads(line.split(":", 1)[1].strip())))
            event = None
    return frames
