"""Injection helpers: build core configurations with selected bugs armed."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bugs.catalog import BUGS
from repro.pp.rtl.core import CoreConfig


def inject(config: CoreConfig, *bug_ids: int) -> CoreConfig:
    """A copy of ``config`` with the given bugs armed.

    Unknown bug ids are rejected eagerly so a typo cannot silently run a
    clean design while claiming a bug was injected.
    """
    for bug_id in bug_ids:
        if bug_id not in BUGS:
            raise KeyError(f"unknown bug id {bug_id}; known: {sorted(BUGS)}")
    return config.with_bugs(*bug_ids)


def injected_config(*bug_ids: int, base: Optional[CoreConfig] = None) -> CoreConfig:
    """Convenience: a default configuration with the given bugs armed."""
    return inject(base or CoreConfig(mem_latency=0), *bug_ids)
