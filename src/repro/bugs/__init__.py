"""Bug-injection framework: the six Table 2.1 bugs as switchable mutations.

Each bug is implemented as a guarded deviation inside the RTL model (see
``repro.pp.rtl``); this package is the registry that names them, documents
their trigger scenarios, and builds injected configurations.
"""

from repro.bugs.catalog import Bug, BUGS, ALL_BUG_IDS, bug_table
from repro.bugs.injector import inject, injected_config

__all__ = ["Bug", "BUGS", "ALL_BUG_IDS", "bug_table", "inject", "injected_config"]
