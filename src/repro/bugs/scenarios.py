"""Hand-distilled minimal trigger scenarios for the six Table 2.1 bugs.

Each scenario is the smallest deterministic conjunction of events that
exposes its bug -- exactly the kind of test a designer would *not* have
thought to write, which is the paper's point.  They were distilled from
diverging generated traces and are used by the unit tests, the Fig. 2.2
timing benchmark, and the examples.

All scenarios assume ``CoreConfig(mem_latency=0)`` and the default cache
geometry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pp.asm import assemble
from repro.pp.isa import Instruction
from repro.pp.rtl.stimulus import QueueStimulus


@dataclass
class BugScenario:
    """A deterministic trigger for one catalog bug."""

    bug_id: int
    name: str
    #: The multiple-event conjunction this realizes.
    events: str
    source: str
    fetch_hits: List[bool] = field(default_factory=list)
    dcache_hits: List[bool] = field(default_factory=list)
    inbox_ready: List[bool] = field(default_factory=list)
    outbox_ready: List[bool] = field(default_factory=list)
    victim_dirty: List[bool] = field(default_factory=list)
    #: Register expected to be corrupted when the bug fires (for messages).
    symptom_register: Optional[int] = None

    @property
    def program(self) -> List[Instruction]:
        return assemble(self.source)

    def stimulus(self) -> QueueStimulus:
        return QueueStimulus(
            fetch_hits=list(self.fetch_hits),
            dcache_hits=list(self.dcache_hits),
            inbox_ready=list(self.inbox_ready),
            outbox_ready=list(self.outbox_ready),
            victim_dirty=list(self.victim_dirty),
        )


_SEEDED_LOAD = """
addi r1, r0, 42
sw r1, 0x10(r0)
nop
nop
nop
lw r2, 0x10(r0)
addi r3, r2, 1
addi r4, r0, 9
"""


def bug_scenarios() -> Dict[int, BugScenario]:
    """One minimal trigger per catalog bug, keyed by bug id."""
    return {
        1: BugScenario(
            bug_id=1,
            name="d_refill_clobbers_i_line",
            events=(
                "load D-miss queued behind an I-refill; the refetch misses "
                "again, so the D-fill's words stream back while the I-cache "
                "sits in REQ -- the unqualified valid latches them"
            ),
            source=_SEEDED_LOAD,
            fetch_hits=[True, True, True, True, True, False, False, True, True],
            dcache_hits=[True, False],
            symptom_register=3,
        ),
        2: BugScenario(
            bug_id=2,
            name="simultaneous_i_d_miss_loses_latch",
            events=(
                "load D-miss + I-miss on the following fetch + a second "
                "I-miss on the refetch, so the I-stall is active at the "
                "cycle the D-refill's critical word returns"
            ),
            source=_SEEDED_LOAD,
            fetch_hits=[True, True, True, True, True, False, False, True, True],
            dcache_hits=[True, False],
            symptom_register=2,
        ),
        3: BugScenario(
            bug_id=3,
            name="conflict_stall_address_clobbered",
            events=(
                "load conflicting with a pending split store, with another "
                "load right behind it in the pipe supplying the wrong address"
            ),
            source="""
addi r1, r0, 42
sw r1, 0x10(r0)
lw r2, 0x10(r0)
lw r3, 0x40(r0)
add r4, r2, r3
""",
            dcache_hits=[True, True, True],
            symptom_register=2,
        ),
        4: BugScenario(
            bug_id=4,
            name="fixup_lost_during_memstall",
            events=(
                "switch stalled on a not-ready Inbox (MemStall) while the "
                "next fetch I-misses; the refill's fix-up cycle lands inside "
                "the external stall and the restored fetch is dropped"
            ),
            source="""
switch r1
addi r2, r0, 7
addi r3, r0, 8
""",
            fetch_hits=[True, False, True, True],
            inbox_ready=[False] * 8 + [True],
            symptom_register=3,
        ),
        5: BugScenario(
            bug_id=5,
            name="membus_glitch_garbage_latched",
            events=(
                "load D-miss restarted critical-word-first + a following "
                "store in the pipe (the Membus-valid glitch) + an external "
                "switch stall landing between the glitch and the corrective "
                "rewrite"
            ),
            source="""
addi r1, r0, 42
sw r1, 0x10(r0)
nop
nop
nop
lw r2, 0x10(r0)
switch r3
sw r1, 0x40(r0)
addi r4, r2, 1
""",
            fetch_hits=[True] * 12,
            dcache_hits=[True, False, True],
            inbox_ready=[False, False, False, True],
            symptom_register=2,
        ),
        6: BugScenario(
            bug_id=6,
            name="conflict_stall_stale_load",
            events=(
                "store + load to the same line (conflict stall, D-hit) with "
                "a simultaneous I-stall from a following fetch miss"
            ),
            source="""
addi r1, r0, 42
sw r1, 0x10(r0)
lw r2, 0x10(r0)
addi r3, r2, 1
addi r4, r3, 1
addi r5, r4, 1
""",
            dcache_hits=[True, True],
            fetch_hits=[True, True, True, False, True, True, True, True],
            symptom_register=2,
        ),
    }


def bug5_masked_scenario() -> BugScenario:
    """The Fig. 2.2 variant: identical to bug 5's trigger but with the
    Inbox ready, so the corrective rewrite masks the glitch and *no*
    architectural divergence occurs even with the bug armed."""
    scenario = bug_scenarios()[5]
    scenario.inbox_ready = [True]
    scenario.name = "membus_glitch_masked"
    scenario.events = (
        "same as bug 5 but no external stall lands in the window: the "
        "second Membus drive rewrites the data (performance bug only)"
    )
    return scenario
