"""The catalog of discovered PP bugs (Table 2.1 of the paper).

Each entry reproduces one of the six bugs the generated vectors found in
the "mature" PP design but that hand-written and random vectors had not.
The ``trigger`` field spells out the multiple-event conjunction required,
which is what makes these bugs improbable under random stimulus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Bug:
    """One entry of Table 2.1."""

    bug_id: int
    title: str
    explanation: str
    trigger: str
    #: Which units the bug's events span (for the multiple-event taxonomy).
    units: Tuple[str, ...]


BUGS: Dict[int, Bug] = {
    1: Bug(
        bug_id=1,
        title=(
            "Interface miscommunication between PP's cache controller and "
            "the Memory Controller."
        ),
        explanation=(
            "Qualification of an interface signal was needed, but the two "
            "units thought that the other would perform it. The bug "
            "manifested itself as incorrect data being returned to the "
            "I-Cache."
        ),
        trigger=(
            "An I-cache refill outstanding while a D-cache refill's words "
            "stream back: the unqualified data-valid lets the D-transfer "
            "clobber the I-line buffer."
        ),
        units=("icache", "memctrl", "dcache"),
    ),
    2: Bug(
        bug_id=2,
        title="Latch not qualified on all stall conditions and lost data.",
        explanation=(
            "On a simultaneous I & D Cache miss, the latch holding the data "
            "that was to be returned after the D-Cache refill was not "
            "qualified on the I-Stall and lost its data by the time the "
            "I-Cache miss was serviced."
        ),
        trigger=(
            "A load D-miss whose critical word returns while an I-cache "
            "refill is simultaneously in progress."
        ),
        units=("dcache", "icache", "stall"),
    ),
    3: Bug(
        bug_id=3,
        title=(
            "Cache conflict stall can cause wrong address to be used on the "
            "stalled load."
        ),
        explanation=(
            "The address used in the load of a conflict stall was not held "
            "during the stall. If there was no following instruction that "
            "used the address bus of the cache, the correct address from "
            "the load remained. However, if the load in the conflict stall "
            "was followed by another load/store instruction, the address of "
            "the following load/store was erroneously used."
        ),
        trigger=(
            "A load conflicting with a pending split store, with another "
            "load/store immediately behind it in the pipe."
        ),
        units=("dcache", "pipeline"),
    ),
    4: Bug(
        bug_id=4,
        title="I-Stall fix-up cycle lost if I-Stall condition occurs during Mem-Stall.",
        explanation=(
            "The I-Cache refill machine takes a cycle to restore the "
            "correct values to the instruction registers after an I-Stall. "
            "However, it was not qualified on MemStall, so was lost if the "
            "I-Stall condition arose after MemStall was asserted. This can "
            "happen if a switch or send is executing in the stalled "
            "instruction and the external unit signals the PP to wait."
        ),
        trigger=(
            "An I-miss refill finishing its fix-up cycle while a switch/"
            "send external stall (MemStall) is asserted."
        ),
        units=("icache", "stall", "inbox", "outbox"),
    ),
    5: Bug(
        bug_id=5,
        title=(
            "Glitch on bus valid signal allows Z values to be latched on a "
            "load that missed followed by any other load/store instruction "
            "interrupted by an external stall condition."
        ),
        explanation=(
            "A load that missed drives its critical word onto Membus; a "
            "following load/store glitches the Membus-valid signal after "
            "the word is driven, latching high-impedance garbage. The "
            "refill logic re-drives the data a second time (masking the "
            "glitch) -- unless an external stall arises between the glitch "
            "and the second write, leaving garbage in the register file."
        ),
        trigger=(
            "Load D-miss + following load/store in the pipe + external "
            "stall landing inside the refill window."
        ),
        units=("dcache", "membus", "stall", "inbox", "outbox"),
    ),
    6: Bug(
        bug_id=6,
        title=(
            "Cache conflict stall with D-Cache hit and simultaneous I-stall "
            "results in stale data being loaded."
        ),
        explanation=(
            "A cache conflict stall occurs because of the split store "
            "operation. When the address of the load following a store is "
            "the same as the store, a conflict stall is taken to write out "
            "the store data before loading it. When there is a simultaneous "
            "I-stall caused by an external condition, the load receives the "
            "stale data instead of the newly written data."
        ),
        trigger=(
            "Store + load to the same line (conflict stall) while an "
            "I-cache refill is simultaneously in progress."
        ),
        units=("dcache", "icache", "stall"),
    ),
}

ALL_BUG_IDS: Tuple[int, ...] = tuple(sorted(BUGS))


def bug_table() -> str:
    """Render the catalog in the shape of Table 2.1."""
    lines = ["Bug  Description"]
    for bug in BUGS.values():
        lines.append(f"{bug.bug_id:>3}  {bug.title}")
        lines.append(f"     {bug.explanation}")
    return "\n".join(lines)
