"""End-to-end validation pipeline (Fig. 3.1)."""

from __future__ import annotations

import logging
import os
import weakref
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.cache import (
    ArtifactCache,
    phase_code_version,
    pipeline_phase_keys,
)
from repro.enumeration import (
    EnumerationStats,
    StateGraph,
    WorkerPool,
    enumerate_states,
    enumerate_states_parallel,
    make_worker_pool,
)
from repro.harness.compare import ComparisonResult, run_vector_traces
from repro.incremental.diff import LOCALIZED, NO_OP, diff_models
from repro.incremental.edits import EditedPPControl, ModelEdit
from repro.incremental.recent import RecentBuilds
from repro.incremental.replay import incremental_enumerate
from repro.incremental.report import IncrementalReport
from repro.incremental.splice import (
    clean_flags_for,
    dirty_flags,
    edge_costs,
    export_memo,
    graphs_equal,
    import_memo,
    splice_traces,
    tour_clean_flags,
)
from repro.obs.observer import Observer, resolve
from repro.pp.fsm_model import PPModelConfig, pp_control_model
from repro.pp.rtl.core import CoreConfig
from repro.resilience import Budget, CheckpointConfig, RetryPolicy
from repro.smurphi.fingerprint import fingerprint_model
from repro.tour import IndexedTourGenerator, TourSet
from repro.tour.fig33 import Tour
from repro.vectors import (
    TraceSet,
    TransitionEventMemo,
    VectorGenerator,
    pack_trace_set,
    pp_instruction_cost,
    unpack_trace_set,
)

logger = logging.getLogger("repro.pipeline")


@dataclass
class PipelineArtifacts:
    """Everything the pipeline produces along the way.

    Useful both for inspection and for reusing expensive intermediates
    (the state graph and tours are design-dependent but bug-independent,
    so one pipeline run can evaluate many candidate designs).
    """

    graph: StateGraph
    enumeration: EnumerationStats
    tours: TourSet
    traces: TraceSet


class ValidationPipeline:
    """The four-step methodology for the Protocol Processor.

    >>> pipeline = ValidationPipeline()
    >>> artifacts = pipeline.build()          # steps 1-3  # doctest: +SKIP
    >>> report = pipeline.validate()          # step 4     # doctest: +SKIP

    Parameters
    ----------
    model_config:
        Scaling of the control model (step 1's abstraction choices).
    max_instructions_per_trace:
        The Fig. 3.3 per-trace split limit; ``None`` disables splitting.
    seed:
        Seed for the biased-random parts of vector generation.
    record_all_conditions:
        Enumerate with one arc per unique transition condition -- the
        paper's proposed fix for the fewer-behaviours blind spot (Fig 4.2).
    jobs:
        Worker processes for enumeration (:func:`enumerate_states_parallel`)
        and trace simulation; ``1`` keeps everything in-process, ``None``
        uses every CPU.
    cache_dir:
        Directory for the persistent artifact cache; ``None`` disables
        caching.  Entries are keyed by config + flags + seed + code version
        (see :mod:`repro.core.cache`), so a warm hit is exactly the build
        this pipeline would have produced.
    use_cache:
        When false, ``cache_dir`` is still *written* after a build but
        never read -- i.e. ``--no-cache`` forces a rebuild that refreshes
        the entry.
    observer:
        Observability sink (:class:`repro.obs.Observer`): every phase of
        the pipeline runs inside a ``span()`` and flushes counters /
        histograms to it.  ``None`` resolves to the shared no-op observer
        (near-zero overhead).
    checkpoint_dir:
        Directory for enumeration checkpoints
        (:class:`~repro.resilience.CheckpointStore`); ``None`` disables
        checkpointing.  Snapshots are written every ``checkpoint_every``
        wave boundaries and an interrupted build can be continued with
        ``resume=True`` to a bit-identical graph.
    budget:
        :class:`~repro.resilience.Budget` for the enumeration phase.  On
        exhaustion the build completes with a *partial* graph
        (``artifacts.enumeration.truncated``); the tours/vectors cover the
        expanded portion, and the build is **not** cached -- a truncated
        artifact must never masquerade as the full one.
    retry:
        :class:`~repro.resilience.RetryPolicy` for parallel enumeration's
        worker-crash recovery (``jobs > 1`` only).
    kernel:
        Transition kernel for enumeration: ``"compiled"`` (default) or
        ``"interpreted"`` (see :mod:`repro.enumeration.kernel`).  Both
        produce bit-identical graphs, so the kernel is deliberately *not*
        part of the artifact cache key -- cached builds are shared.
    edits:
        Ordered :class:`~repro.incremental.ModelEdit` rewrites layered on
        the control model (see :mod:`repro.incremental.edits`).  Their
        semantic digests join the model cache key.
    incremental:
        When a cached build of a *different* (but related) model exists,
        try to serve this build by model-diffing against it: adopt its
        entries wholesale on a no-op diff, re-enumerate only the dirty
        region and splice tours/traces on a localized diff.  The result
        is byte-identical to a cold build either way -- disabling this
        only ever costs time (kept as an escape hatch / A-B switch).
    phase_code_overrides:
        Mapping ``phase -> digest`` overriding the per-phase code digests
        used for cache keys.  A test/benchmark hook: salting a phase's
        digest simulates a source edit to that phase's modules without
        touching the tree.
    """

    def __init__(
        self,
        model_config: Optional[PPModelConfig] = None,
        max_instructions_per_trace: Optional[int] = 400,
        seed: int = 0,
        record_all_conditions: bool = False,
        jobs: Optional[int] = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        observer: Optional[Observer] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        budget: Optional[Budget] = None,
        retry: Optional[RetryPolicy] = None,
        kernel: str = "compiled",
        edits: Sequence[ModelEdit] = (),
        incremental: bool = True,
        phase_code_overrides: Optional[Dict[str, str]] = None,
    ):
        self.model_config = model_config or PPModelConfig(fill_words=2)
        self.max_instructions_per_trace = max_instructions_per_trace
        self.seed = seed
        self.record_all_conditions = record_all_conditions
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        self.obs = resolve(observer)
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.budget = budget
        self.retry = retry
        self.kernel = kernel
        self.edits = tuple(edits)
        self.incremental = incremental
        self.phase_code_overrides = dict(phase_code_overrides or {})
        base = pp_control_model(self.model_config)
        self.control = EditedPPControl(base, self.edits) if self.edits else base
        self._pool: Optional[WorkerPool] = None
        self._artifacts: Optional[PipelineArtifacts] = None
        #: True when the last :meth:`build` was served entirely from cache.
        self.artifacts_from_cache = False
        #: Content address of the last build (the traces phase key -- the
        #: end of the chain, so it covers every input; set when caching on).
        self.cache_key: Optional[str] = None
        #: Per-phase cache keys of the last build (see ``pipeline_phase_keys``).
        self.phase_keys: Optional[Dict[str, str]] = None
        #: Per-phase cache outcome of the last build.
        self.phase_hits: Dict[str, bool] = {}
        #: What the incremental layer did for the last build.
        self.incremental_report: Optional[IncrementalReport] = None

    @property
    def cache_info(self) -> Dict[str, Any]:
        """Cache provenance of the last build, for run reports."""
        return {
            "enabled": self.cache_dir is not None,
            "hit": self.artifacts_from_cache,
            "key": self.cache_key,
            "phase_keys": self.phase_keys,
            "phase_hits": dict(self.phase_hits),
            "incremental": (
                self.incremental_report.to_dict()
                if self.incremental_report is not None
                else None
            ),
        }

    @property
    def resilience_info(self) -> Dict[str, Any]:
        """Resilience outcome of the last build, for run reports."""
        if self._artifacts is None:
            return {}
        stats = self._artifacts.enumeration
        return {
            "truncated": stats.truncated,
            "budget_outcome": stats.budget_outcome,
            "frontier_remaining": stats.frontier_remaining,
            "explored_fraction": stats.explored_fraction,
            "resumed": stats.resumed,
            "checkpoints_written": stats.checkpoints_written,
            "shards_retried": stats.shards_retried,
            "pool_respawns": stats.pool_respawns,
            "degraded": stats.degraded,
            "checkpoint_dir": self.checkpoint_dir,
        }

    def worker_pool(self, jobs: Optional[int]) -> Optional[WorkerPool]:
        """The pipeline-wide persistent :class:`WorkerPool` (lazily built).

        One pool serves enumeration, vector generation *and* trace
        comparison, so workers are forked once per pipeline rather than
        once per phase (or per BFS wave).  ``None`` when the effective
        job count keeps everything in-process.  The pool is rebuilt only
        if the job count changes; a finalizer reaps the workers when the
        pipeline itself is garbage collected.
        """
        effective = (os.cpu_count() or 1) if jobs is None else jobs
        if effective <= 1:
            return None
        pool = self._pool
        if pool is not None and pool.jobs == effective and not pool.closed:
            return pool
        if pool is not None:
            pool.shutdown()
        pool = make_worker_pool(effective, retry=self.retry, obs=self.obs)
        self._pool = pool
        weakref.finalize(self, WorkerPool.shutdown, pool)
        return pool

    def shutdown(self) -> None:
        """Release the pipeline's worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()

    def _phase_digests(self) -> Dict[str, str]:
        """The per-phase code digests this pipeline keys with."""
        return {
            phase: self.phase_code_overrides.get(phase)
            or phase_code_version(phase)
            for phase in ("model", "graph", "tours", "traces")
        }

    def _compute_phase_keys(self) -> Dict[str, str]:
        return pipeline_phase_keys(
            self.model_config,
            record_all_conditions=self.record_all_conditions,
            max_instructions_per_trace=self.max_instructions_per_trace,
            seed=self.seed,
            edits=self.edits,
            code_digests=self.phase_code_overrides,
        )

    def _build_flags(self) -> Dict[str, Any]:
        return {
            "record_all_conditions": self.record_all_conditions,
            "max_instructions_per_trace": self.max_instructions_per_trace,
            "seed": self.seed,
        }

    def _phase_manifest(self, phase: str, **extra: Any) -> Dict[str, Any]:
        manifest = {"phase": phase, "model_config": self.model_config}
        manifest.update(self._build_flags())
        manifest.update(extra)
        return manifest

    def _record_phase(self, phase: str, hit: bool, obs: Observer) -> None:
        self.phase_hits[phase] = hit
        if hit:
            obs.inc("cache.phase_hits", phase=phase)
        else:
            obs.inc("cache.phase_misses", phase=phase)

    def _load_artifacts_from_phases(
        self, cache: ArtifactCache, keys: Dict[str, str]
    ) -> Optional[PipelineArtifacts]:
        """Assemble a full build from the per-phase entries, or ``None``."""
        graph_entry = cache.load(keys["graph"])
        if graph_entry is None:
            return None
        tours_entry = cache.load(keys["tours"])
        if tours_entry is None:
            return None
        traces_entry = cache.load(keys["traces"])
        if traces_entry is None:
            return None
        graph = graph_entry["graph"]
        tours = TourSet(
            graph,
            [Tour(list(e), n) for e, n in tours_entry["tours"]],
            tours_entry["generation_seconds"],
        )
        return PipelineArtifacts(
            graph=graph,
            enumeration=graph_entry["stats"],
            tours=tours,
            traces=unpack_trace_set(traces_entry["traces"]),
        )

    def build(
        self,
        cache_dir: Optional[str] = None,
        use_cache: Optional[bool] = None,
        jobs: Optional[int] = None,
        resume: bool = False,
        faults=None,
    ) -> PipelineArtifacts:
        """Run steps 1-3 (model, enumerate, tour, vectors) or load them.

        With a cache directory configured, a warm hit skips enumeration,
        tour generation and vector generation entirely; a miss builds and
        persists the artifacts for the next run.  Keyword arguments
        override the constructor's defaults for this call only.

        ``resume=True`` continues enumeration from the newest checkpoint
        in ``checkpoint_dir`` (and skips the cache read -- the caller
        explicitly asked to finish a partial run, not load a prior one).
        A build whose enumeration was budget-truncated is returned but
        never cached.  ``faults`` is the chaos-test hook
        (:class:`~repro.resilience.FaultPlan`).
        """
        cache_dir = self.cache_dir if cache_dir is None else cache_dir
        use_cache = self.use_cache if use_cache is None else use_cache
        jobs = self.jobs if jobs is None else jobs
        obs = self.obs
        checkpoint = (
            CheckpointConfig(self.checkpoint_dir, every_waves=self.checkpoint_every)
            if self.checkpoint_dir
            else None
        )

        with obs.span("pipeline.build", jobs=jobs or 0):
            cache = ArtifactCache(cache_dir) if cache_dir else None
            self.phase_hits = {}
            self.incremental_report = IncrementalReport(enabled=self.incremental)
            lock = nullcontext(False)
            if cache is not None:
                self.phase_keys = self._compute_phase_keys()
                self.cache_key = self.phase_keys["traces"]
                if use_cache and not resume:
                    with obs.span("phase.cache_load"):
                        cached = self._load_artifacts_from_phases(
                            cache, self.phase_keys
                        )
                    if cached is not None:
                        obs.inc("cache.hits")
                        obs.event("cache.hit", key=self.cache_key)
                        logger.info("artifact cache hit (%s)", self.cache_key[:12])
                        for phase in ("model", "graph", "tours", "traces"):
                            self._record_phase(phase, True, obs)
                        obs.heartbeat("cache", phase_hits=dict(self.phase_hits))
                        self._artifacts = cached
                        self.artifacts_from_cache = True
                        return cached
                    obs.inc("cache.misses")
                    obs.event("cache.miss", key=self.cache_key)
                    logger.info("artifact cache miss (%s)", self.cache_key[:12])
                # Single-flight: only one process builds a given key at a
                # time; concurrent missers block on the per-key flock and
                # (usually) find the entry stored when they get it.
                lock = cache.single_flight(self.cache_key)
            with lock as waited:
                if waited and use_cache and not resume:
                    obs.inc("cache.single_flight_waits")
                    with obs.span("phase.cache_load"):
                        cached = self._load_artifacts_from_phases(
                            cache, self.phase_keys
                        )
                    if cached is not None:
                        obs.inc("cache.hits")
                        obs.event("cache.hit", key=self.cache_key,
                                  single_flight=True)
                        logger.info(
                            "artifact cache hit after single-flight wait (%s)",
                            self.cache_key[:12],
                        )
                        for phase in ("model", "graph", "tours", "traces"):
                            self._record_phase(phase, True, obs)
                        obs.heartbeat("cache", phase_hits=dict(self.phase_hits))
                        self._artifacts = cached
                        self.artifacts_from_cache = True
                        return cached
                return self._build_locked(
                    cache, use_cache, jobs, resume, faults, checkpoint, obs
                )

    def _build_locked(
        self, cache, use_cache, jobs, resume, faults, checkpoint, obs
    ) -> PipelineArtifacts:
        """Steps 1-3 as per-phase load-or-build, under the single-flight lock.

        Each phase first tries its own cache entry (so a seed change reuses
        the graph and tours, a tour-code edit reuses the graph, ...); a
        phase that builds persists its entry immediately.  Before the graph
        phase, the incremental preparer may satisfy the missing keys from a
        *related* prior build via model diffing (see
        :meth:`_incremental_prepare`).
        """
        keys = self.phase_keys
        report = self.incremental_report
        read_ok = cache is not None and use_cache and not resume
        # Incremental reuse needs a plain build: resume/budget/faults runs
        # have their own semantics (partial graphs, injected failures)
        # that the replay engine deliberately does not reproduce.
        plain = read_ok and self.budget is None and faults is None

        with obs.span("phase.model_build"):
            model = self.control.build()

        fingerprint = None
        if cache is not None:
            with obs.span("phase.fingerprint"):
                fingerprint = fingerprint_model(model)
            model_hit = read_ok and cache.has(keys["model"])
            self._record_phase("model", model_hit, obs)
            if not model_hit:
                cache.store(
                    keys["model"],
                    {"fingerprint": fingerprint},
                    manifest=self._phase_manifest(
                        "model", stable=fingerprint.stable
                    ),
                )

        prepared: Dict[str, Any] = {}
        if plain and self.incremental and not cache.has(keys["graph"]):
            prepared = self._incremental_prepare(
                cache, keys, model, fingerprint, obs, report
            )

        # -- graph ----------------------------------------------------------
        graph = prepared.get("graph")
        stats = prepared.get("stats")
        if graph is None and read_ok:
            entry = cache.load(keys["graph"])
            if entry is not None:
                graph, stats = entry["graph"], entry["stats"]
                self._record_phase("graph", True, obs)
        if graph is None:
            if cache is not None and "graph" not in self.phase_hits:
                self._record_phase("graph", False, obs)
            with obs.span("phase.enumerate", jobs=jobs or 0):
                if jobs is None or jobs > 1:
                    graph, stats = enumerate_states_parallel(
                        model, jobs=jobs,
                        record_all_conditions=self.record_all_conditions,
                        obs=obs,
                        checkpoint=checkpoint,
                        resume=resume,
                        budget=self.budget,
                        retry=self.retry,
                        faults=faults,
                        kernel=self.kernel,
                        pool=self.worker_pool(jobs),
                    )
                else:
                    graph, stats = enumerate_states(
                        model,
                        record_all_conditions=self.record_all_conditions,
                        obs=obs,
                        checkpoint=checkpoint,
                        resume=resume,
                        budget=self.budget,
                        faults=faults,
                        kernel=self.kernel,
                    )
            if cache is not None and not stats.truncated:
                cache.store(
                    keys["graph"],
                    {"graph": graph, "stats": stats},
                    manifest=self._phase_manifest(
                        "graph",
                        num_states=graph.num_states,
                        num_edges=graph.num_edges,
                    ),
                )
                obs.inc("cache.stores")
        if stats.truncated:
            logger.warning(
                "enumeration truncated by budget (%s): building tours/"
                "vectors over the partial graph; result will not be cached",
                stats.budget_outcome,
            )

        # One transition-event memo spans both back-half phases: the
        # tour cost function touches every arc, so vector generation
        # finds it fully warm and replays no transition twice.  The
        # incremental preparer may hand over a memo already warmed by
        # transplanting clean entries from the prior build's sidecar.
        memo = prepared.get("memo") or TransitionEventMemo(self.control, graph)

        # -- tours ----------------------------------------------------------
        tours = prepared.get("tours")
        if tours is None and read_ok:
            entry = cache.load(keys["tours"])
            if entry is not None:
                tours = TourSet(
                    graph,
                    [Tour(list(e), n) for e, n in entry["tours"]],
                    entry["generation_seconds"],
                )
                self._record_phase("tours", True, obs)
                # Warm the memo from the tours sidecar: the key chain
                # guarantees the entries were computed for exactly this
                # model and graph, so every row imports.  Pointless when
                # the traces entry is also present -- nothing downstream
                # will touch the memo -- so only pay for it on a miss.
                if not cache.has(keys["traces"]):
                    sidecar = cache.load(keys["splice"])
                    if sidecar is not None:
                        import_memo(memo, graph, sidecar["memo"])
        if tours is None:
            if cache is not None and "tours" not in self.phase_hits:
                self._record_phase("tours", False, obs)
            with obs.span("phase.tours"):
                cost = pp_instruction_cost(self.control, graph, memo=memo)
                tours = IndexedTourGenerator(
                    graph,
                    instruction_cost=cost,
                    max_instructions_per_trace=self.max_instructions_per_trace,
                ).generate(obs=obs)
            if cache is not None and not stats.truncated:
                self._store_tours(cache, keys, tours, memo, graph, obs)

        # -- traces ---------------------------------------------------------
        traces = prepared.get("traces")
        if traces is None and read_ok:
            entry = cache.load(keys["traces"])
            if entry is not None:
                traces = unpack_trace_set(entry["traces"])
                self._record_phase("traces", True, obs)
        if traces is None:
            if cache is not None and "traces" not in self.phase_hits:
                self._record_phase("traces", False, obs)
            with obs.span("phase.vectors", jobs=jobs or 0):
                traces = VectorGenerator(
                    self.control, graph, seed=self.seed, memo=memo
                ).generate(
                    list(tours), obs=obs, jobs=jobs or (os.cpu_count() or 1),
                    pool=self.worker_pool(jobs),
                )
            if cache is not None and not stats.truncated:
                with obs.span("phase.cache_store"):
                    cache.store(
                        keys["traces"],
                        {"traces": pack_trace_set(traces)},
                        manifest=self._phase_manifest(
                            "traces", num_traces=traces.num_traces
                        ),
                    )
                obs.inc("cache.stores")

        self._artifacts = PipelineArtifacts(
            graph=graph, enumeration=stats, tours=tours, traces=traces
        )
        self.artifacts_from_cache = False
        if cache is not None:
            obs.heartbeat("cache", phase_hits=dict(self.phase_hits))
            if not stats.truncated:
                RecentBuilds(cache.cache_dir).record(
                    flags=self._build_flags(),
                    keys=keys,
                    digests=self._phase_digests(),
                    config=repr(self.model_config),
                )
        return self._artifacts

    def _store_tours(self, cache, keys, tours, memo, graph, obs) -> None:
        """Persist the tours entry plus its splice sidecar.

        The sidecar (per-edge instruction costs + the memo's transition
        outcomes, keyed by packed state) is what lets a *later* build
        splice against this one without replaying transitions.  Tour
        generation just touched every arc, so the memo is fully warm and
        exporting it costs only the pickle.
        """
        cache.store(
            keys["tours"],
            {
                "tours": [(list(t.edge_indices), t.instructions) for t in tours],
                "generation_seconds": tours.stats.generation_seconds,
            },
            manifest=self._phase_manifest("tours", num_tours=len(tours)),
        )
        cache.store(
            keys["splice"],
            {
                "edge_costs": edge_costs(memo, graph),
                "memo": export_memo(memo, graph),
            },
            manifest=self._phase_manifest("splice"),
        )
        obs.inc("cache.stores")

    def _incremental_prepare(
        self,
        cache: ArtifactCache,
        keys: Dict[str, str],
        model,
        fingerprint,
        obs: Observer,
        report: IncrementalReport,
    ) -> Dict[str, Any]:
        """Try to satisfy this build's phase keys from a *related* build.

        Scans the recent-builds journal newest-first for a candidate whose
        cached model fingerprint diffs as no-op or localized against the
        current model.  On a no-op the candidate's entries are adopted by
        byte-copy under this build's keys (the normal load path then finds
        them); on a localized diff the dirty region is re-enumerated, the
        graph grafted, and cached tours/traces spliced where sound.

        Returns a (possibly empty) dict of prepared artifacts for
        :meth:`_build_locked` -- ``graph``/``stats``/``memo`` and,
        when splicing succeeded, ``tours``/``traces``.  Any exception
        falls back to the cold path: incremental reuse is an
        optimization, never a correctness dependency.
        """
        try:
            return self._incremental_prepare_inner(
                cache, keys, model, fingerprint, obs, report
            )
        except Exception as exc:  # noqa: BLE001 -- fall back to full rebuild
            logger.warning(
                "incremental preparation failed (%s); falling back to a "
                "full rebuild", exc,
            )
            report.fallback_reason = f"error: {exc}"
            obs.inc("incremental.fallbacks")
            return {}

    def _incremental_prepare_inner(
        self, cache, keys, model, fingerprint, obs, report
    ) -> Dict[str, Any]:
        journal = RecentBuilds(cache.cache_dir).entries()
        if not journal:
            report.fallback_reason = "no prior builds in journal"
            return {}
        if not fingerprint.stable:
            report.fallback_reason = "current model fingerprint unstable"
            return {}
        digests = self._phase_digests()
        flags = self._build_flags()
        edit_by_digest = {edit.digest(): edit for edit in self.edits}
        last_reason = "no candidate survived diffing"

        for cand in journal:
            ckeys = cand.get("keys", {})
            cflags = cand.get("flags", {})
            cdigests = cand.get("digests", {})
            if ckeys.get("traces") == keys["traces"]:
                continue  # that *is* this build; its entries were pruned
            if cand.get("config") != repr(self.model_config):
                continue  # different scaling: structural by construction
            model_entry = cache.load(ckeys.get("model", ""))
            if model_entry is None:
                last_reason = "candidate model entry pruned"
                continue
            diff = diff_models(model_entry["fingerprint"], fingerprint)
            if diff.classification not in (NO_OP, LOCALIZED):
                last_reason = f"structural diff: {diff.reason}"
                continue

            # Phase adoptability: the candidate's entry is byte-identical
            # to what we would build only if the *code* that phase runs
            # and the flags it keys on are unchanged.  Chained: a phase
            # is only adoptable if everything upstream of it is.
            graph_ok = (
                cdigests.get("graph") == digests["graph"]
                and cflags.get("record_all_conditions")
                == flags["record_all_conditions"]
            )
            tours_ok = (
                graph_ok
                and cdigests.get("tours") == digests["tours"]
                and cflags.get("max_instructions_per_trace")
                == flags["max_instructions_per_trace"]
            )
            traces_ok = (
                tours_ok
                and cdigests.get("traces") == digests["traces"]
                and cflags.get("seed") == flags["seed"]
            )
            if not graph_ok:
                last_reason = "graph phase code/flags changed"
                continue

            report.attempted = True
            report.classification = diff.classification
            report.base_key = ckeys.get("traces")

            if diff.classification == NO_OP:
                return self._adopt_no_op(
                    cache, keys, ckeys, tours_ok, traces_ok, obs, report
                )

            # Localized: every added rule must be one of *our* edits so we
            # hold its scope predicate; otherwise the dirty region is
            # unknowable and the diff is structural for our purposes.
            try:
                scopes = [edit_by_digest[d].scope for d in diff.added_rules]
            except KeyError:
                report.attempted = False
                last_reason = "added rule not among this pipeline's edits"
                continue
            prepared = self._splice_localized(
                cache, keys, ckeys, model, scopes,
                tours_ok, traces_ok, obs, report,
            )
            if prepared:
                return prepared
            report.attempted = False
            last_reason = report.fallback_reason or last_reason

        report.fallback_reason = last_reason
        return {}

    def _adopt_no_op(
        self, cache, keys, ckeys, tours_ok, traces_ok, obs, report
    ) -> Dict[str, Any]:
        """Byte-copy a no-op candidate's entries under this build's keys.

        The diff proved the models semantically identical, so each
        adoptable phase's cached bytes *are* what a cold build would
        store.  The normal per-phase load path then hits on our keys.
        """
        adopted = []
        if cache.copy_entry(ckeys["graph"], keys["graph"]):
            adopted.append("graph")
            if tours_ok and cache.copy_entry(ckeys["tours"], keys["tours"]):
                adopted.append("tours")
                cache.copy_entry(ckeys["splice"], keys["splice"])
                if traces_ok and cache.copy_entry(
                    ckeys["traces"], keys["traces"]
                ):
                    adopted.append("traces")
        report.adopted_phases = tuple(adopted)
        if not adopted:
            report.fallback_reason = "candidate entries pruned"
        obs.inc("incremental.adoptions", len(adopted))
        obs.event(
            "incremental.adopt", base=report.base_key, phases=adopted
        )
        logger.info(
            "incremental: no-op diff vs %s; adopted %s",
            (report.base_key or "")[:12], adopted or "nothing",
        )
        return {}

    def _splice_localized(
        self, cache, keys, ckeys, model, scopes, tours_ok, traces_ok,
        obs, report,
    ) -> Dict[str, Any]:
        """Region re-enumeration + graft + tour/trace splice (localized)."""
        graph_entry = cache.load(ckeys["graph"])
        if graph_entry is None:
            report.fallback_reason = "candidate graph entry pruned"
            return {}
        old_graph = graph_entry["graph"]
        dirty = dirty_flags(model, old_graph, scopes)
        report.dirty_states = sum(dirty)

        with obs.span("phase.incremental_replay"):
            graph, stats, counts = incremental_enumerate(
                model, old_graph, dirty,
                record_all_conditions=self.record_all_conditions,
                kernel=self.kernel,
                obs=obs,
            )
        report.region_states = counts["region_states"]
        report.replayed_states = counts["replayed"]
        # A zero-state region is a pure replay -- effectively a cache hit;
        # any kernel expansion makes the phase an (incremental) rebuild.
        self._record_phase("graph", counts["region_states"] == 0, obs)
        cache.store(
            keys["graph"],
            {"graph": graph, "stats": stats},
            manifest=self._phase_manifest(
                "graph",
                num_states=graph.num_states,
                num_edges=graph.num_edges,
                incremental_base=ckeys.get("traces"),
            ),
        )
        obs.inc("cache.stores")
        adopted = ["graph"]
        prepared: Dict[str, Any] = {"graph": graph, "stats": stats}

        # Warm the memo with the candidate's transition outcomes for
        # clean states; dirty states recompute under the edited model.
        memo = TransitionEventMemo(self.control, graph)
        clean = clean_flags_for(graph, old_graph, dirty)
        sidecar = cache.load(ckeys.get("splice", ""))
        if sidecar is not None:
            import_memo(memo, graph, sidecar["memo"], clean=clean)
        prepared["memo"] = memo

        # Tours are adopted wholesale only when provably identical:
        # same graph content and same per-edge costs (tour generation
        # is a deterministic function of exactly those inputs).
        report.reused_graph = graphs_equal(graph, old_graph)
        if not (tours_ok and report.reused_graph and sidecar is not None):
            report.adopted_phases = tuple(adopted)
            return prepared
        costs = edge_costs(memo, graph)
        if costs != sidecar["edge_costs"]:
            report.adopted_phases = tuple(adopted)
            return prepared
        tours_entry = cache.load(ckeys["tours"])
        if tours_entry is None:
            report.adopted_phases = tuple(adopted)
            return prepared
        tours = TourSet(
            graph,
            [Tour(list(e), n) for e, n in tours_entry["tours"]],
            tours_entry["generation_seconds"],
        )
        # Store under *our* keys -- but export our own memo, not the
        # candidate's sidecar: its dirty-state rows reflect the old model.
        self._store_tours(cache, keys, tours, memo, graph, obs)
        adopted.append("tours")
        prepared["tours"] = tours
        self._record_phase("tours", True, obs)

        if traces_ok:
            traces_entry = cache.load(ckeys["traces"])
            if traces_entry is not None:
                old_traces = unpack_trace_set(traces_entry["traces"])
                tour_clean = tour_clean_flags(graph, list(tours), clean)
                generator = VectorGenerator(
                    self.control, graph, seed=self.seed, memo=memo
                )
                with obs.span("phase.incremental_splice"):
                    spliced, reused, regenerated = splice_traces(
                        generator, list(tours), old_traces.traces, tour_clean
                    )
                traces = TraceSet(traces=spliced)
                cache.store(
                    keys["traces"],
                    {"traces": pack_trace_set(traces)},
                    manifest=self._phase_manifest(
                        "traces",
                        num_traces=traces.num_traces,
                        incremental_base=ckeys.get("traces"),
                    ),
                )
                obs.inc("cache.stores")
                adopted.append("traces")
                prepared["traces"] = traces
                report.spliced_tours = reused
                report.regenerated_traces = regenerated
                obs.inc("incremental.spliced_tours", reused)
                self._record_phase("traces", reused > 0 and regenerated == 0, obs)

        report.adopted_phases = tuple(adopted)
        obs.event(
            "incremental.splice", base=report.base_key, phases=adopted,
            region=report.region_states, spliced=report.spliced_tours,
        )
        logger.info(
            "incremental: localized diff vs %s; region=%d replayed=%d "
            "spliced=%d regenerated=%d",
            (report.base_key or "")[:12], report.region_states,
            report.replayed_states, report.spliced_tours,
            report.regenerated_traces,
        )
        return prepared

    @property
    def artifacts(self) -> PipelineArtifacts:
        if self._artifacts is None:
            self.build()
        return self._artifacts

    def validate(
        self,
        config: Optional[CoreConfig] = None,
        stop_on_divergence: bool = True,
        jobs: Optional[int] = None,
    ) -> "ValidationReport":
        """Step 4: run every trace against the spec; collect divergences.

        ``jobs`` fans the independent trace simulations across worker
        processes (defaulting to the pipeline-wide setting); results and
        the stop-on-divergence cut point match the sequential run exactly.
        """
        from repro.core.report import ValidationReport

        config = config or CoreConfig(mem_latency=0)
        jobs = self.jobs if jobs is None else jobs
        with self.obs.span("pipeline.validate", jobs=jobs or 0):
            results, diverging = run_vector_traces(
                self.artifacts.traces,
                config=config,
                jobs=jobs,
                stop_on_divergence=stop_on_divergence,
                obs=self.obs,
                pool=self.worker_pool(jobs),
            )
        return ValidationReport(
            config=config,
            traces_run=len(results),
            total_traces=self.artifacts.traces.num_traces,
            diverging_traces=diverging,
            results=results,
            enumeration=self.artifacts.enumeration,
            tour_stats=self.artifacts.tours.stats,
            from_cache=self.artifacts_from_cache,
        )
