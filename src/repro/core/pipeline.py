"""End-to-end validation pipeline (Fig. 3.1)."""

from __future__ import annotations

import logging
import os
import weakref
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.cache import ArtifactCache, artifact_key
from repro.enumeration import (
    EnumerationStats,
    StateGraph,
    WorkerPool,
    enumerate_states,
    enumerate_states_parallel,
    make_worker_pool,
)
from repro.harness.compare import ComparisonResult, run_vector_traces
from repro.obs.observer import Observer, resolve
from repro.pp.fsm_model import PPModelConfig, pp_control_model
from repro.pp.rtl.core import CoreConfig
from repro.resilience import Budget, CheckpointConfig, RetryPolicy
from repro.tour import IndexedTourGenerator, TourSet
from repro.vectors import (
    TraceSet,
    TransitionEventMemo,
    VectorGenerator,
    pp_instruction_cost,
)

logger = logging.getLogger("repro.pipeline")


@dataclass
class PipelineArtifacts:
    """Everything the pipeline produces along the way.

    Useful both for inspection and for reusing expensive intermediates
    (the state graph and tours are design-dependent but bug-independent,
    so one pipeline run can evaluate many candidate designs).
    """

    graph: StateGraph
    enumeration: EnumerationStats
    tours: TourSet
    traces: TraceSet


class ValidationPipeline:
    """The four-step methodology for the Protocol Processor.

    >>> pipeline = ValidationPipeline()
    >>> artifacts = pipeline.build()          # steps 1-3  # doctest: +SKIP
    >>> report = pipeline.validate()          # step 4     # doctest: +SKIP

    Parameters
    ----------
    model_config:
        Scaling of the control model (step 1's abstraction choices).
    max_instructions_per_trace:
        The Fig. 3.3 per-trace split limit; ``None`` disables splitting.
    seed:
        Seed for the biased-random parts of vector generation.
    record_all_conditions:
        Enumerate with one arc per unique transition condition -- the
        paper's proposed fix for the fewer-behaviours blind spot (Fig 4.2).
    jobs:
        Worker processes for enumeration (:func:`enumerate_states_parallel`)
        and trace simulation; ``1`` keeps everything in-process, ``None``
        uses every CPU.
    cache_dir:
        Directory for the persistent artifact cache; ``None`` disables
        caching.  Entries are keyed by config + flags + seed + code version
        (see :mod:`repro.core.cache`), so a warm hit is exactly the build
        this pipeline would have produced.
    use_cache:
        When false, ``cache_dir`` is still *written* after a build but
        never read -- i.e. ``--no-cache`` forces a rebuild that refreshes
        the entry.
    observer:
        Observability sink (:class:`repro.obs.Observer`): every phase of
        the pipeline runs inside a ``span()`` and flushes counters /
        histograms to it.  ``None`` resolves to the shared no-op observer
        (near-zero overhead).
    checkpoint_dir:
        Directory for enumeration checkpoints
        (:class:`~repro.resilience.CheckpointStore`); ``None`` disables
        checkpointing.  Snapshots are written every ``checkpoint_every``
        wave boundaries and an interrupted build can be continued with
        ``resume=True`` to a bit-identical graph.
    budget:
        :class:`~repro.resilience.Budget` for the enumeration phase.  On
        exhaustion the build completes with a *partial* graph
        (``artifacts.enumeration.truncated``); the tours/vectors cover the
        expanded portion, and the build is **not** cached -- a truncated
        artifact must never masquerade as the full one.
    retry:
        :class:`~repro.resilience.RetryPolicy` for parallel enumeration's
        worker-crash recovery (``jobs > 1`` only).
    kernel:
        Transition kernel for enumeration: ``"compiled"`` (default) or
        ``"interpreted"`` (see :mod:`repro.enumeration.kernel`).  Both
        produce bit-identical graphs, so the kernel is deliberately *not*
        part of the artifact cache key -- cached builds are shared.
    """

    def __init__(
        self,
        model_config: Optional[PPModelConfig] = None,
        max_instructions_per_trace: Optional[int] = 400,
        seed: int = 0,
        record_all_conditions: bool = False,
        jobs: Optional[int] = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        observer: Optional[Observer] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        budget: Optional[Budget] = None,
        retry: Optional[RetryPolicy] = None,
        kernel: str = "compiled",
    ):
        self.model_config = model_config or PPModelConfig(fill_words=2)
        self.max_instructions_per_trace = max_instructions_per_trace
        self.seed = seed
        self.record_all_conditions = record_all_conditions
        self.jobs = jobs
        self.cache_dir = cache_dir
        self.use_cache = use_cache
        self.obs = resolve(observer)
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.budget = budget
        self.retry = retry
        self.kernel = kernel
        self.control = pp_control_model(self.model_config)
        self._pool: Optional[WorkerPool] = None
        self._artifacts: Optional[PipelineArtifacts] = None
        #: True when the last :meth:`build` was served from the cache.
        self.artifacts_from_cache = False
        #: Content address of the last build (set whenever caching is on).
        self.cache_key: Optional[str] = None

    @property
    def cache_info(self) -> Dict[str, Any]:
        """Cache provenance of the last build, for run reports."""
        return {
            "enabled": self.cache_dir is not None,
            "hit": self.artifacts_from_cache,
            "key": self.cache_key,
        }

    @property
    def resilience_info(self) -> Dict[str, Any]:
        """Resilience outcome of the last build, for run reports."""
        if self._artifacts is None:
            return {}
        stats = self._artifacts.enumeration
        return {
            "truncated": stats.truncated,
            "budget_outcome": stats.budget_outcome,
            "frontier_remaining": stats.frontier_remaining,
            "explored_fraction": stats.explored_fraction,
            "resumed": stats.resumed,
            "checkpoints_written": stats.checkpoints_written,
            "shards_retried": stats.shards_retried,
            "pool_respawns": stats.pool_respawns,
            "degraded": stats.degraded,
            "checkpoint_dir": self.checkpoint_dir,
        }

    def worker_pool(self, jobs: Optional[int]) -> Optional[WorkerPool]:
        """The pipeline-wide persistent :class:`WorkerPool` (lazily built).

        One pool serves enumeration, vector generation *and* trace
        comparison, so workers are forked once per pipeline rather than
        once per phase (or per BFS wave).  ``None`` when the effective
        job count keeps everything in-process.  The pool is rebuilt only
        if the job count changes; a finalizer reaps the workers when the
        pipeline itself is garbage collected.
        """
        effective = (os.cpu_count() or 1) if jobs is None else jobs
        if effective <= 1:
            return None
        pool = self._pool
        if pool is not None and pool.jobs == effective and not pool.closed:
            return pool
        if pool is not None:
            pool.shutdown()
        pool = make_worker_pool(effective, retry=self.retry, obs=self.obs)
        self._pool = pool
        weakref.finalize(self, WorkerPool.shutdown, pool)
        return pool

    def shutdown(self) -> None:
        """Release the pipeline's worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()

    def _cache_key(self) -> str:
        return artifact_key(
            self.model_config,
            record_all_conditions=self.record_all_conditions,
            max_instructions_per_trace=self.max_instructions_per_trace,
            seed=self.seed,
        )

    def build(
        self,
        cache_dir: Optional[str] = None,
        use_cache: Optional[bool] = None,
        jobs: Optional[int] = None,
        resume: bool = False,
        faults=None,
    ) -> PipelineArtifacts:
        """Run steps 1-3 (model, enumerate, tour, vectors) or load them.

        With a cache directory configured, a warm hit skips enumeration,
        tour generation and vector generation entirely; a miss builds and
        persists the artifacts for the next run.  Keyword arguments
        override the constructor's defaults for this call only.

        ``resume=True`` continues enumeration from the newest checkpoint
        in ``checkpoint_dir`` (and skips the cache read -- the caller
        explicitly asked to finish a partial run, not load a prior one).
        A build whose enumeration was budget-truncated is returned but
        never cached.  ``faults`` is the chaos-test hook
        (:class:`~repro.resilience.FaultPlan`).
        """
        cache_dir = self.cache_dir if cache_dir is None else cache_dir
        use_cache = self.use_cache if use_cache is None else use_cache
        jobs = self.jobs if jobs is None else jobs
        obs = self.obs
        checkpoint = (
            CheckpointConfig(self.checkpoint_dir, every_waves=self.checkpoint_every)
            if self.checkpoint_dir
            else None
        )

        with obs.span("pipeline.build", jobs=jobs or 0):
            cache = ArtifactCache(cache_dir) if cache_dir else None
            lock = nullcontext(False)
            if cache is not None:
                self.cache_key = self._cache_key()
                if use_cache and not resume:
                    with obs.span("phase.cache_load"):
                        cached = cache.load(self.cache_key)
                    if cached is not None:
                        obs.inc("cache.hits")
                        obs.event("cache.hit", key=self.cache_key)
                        logger.info("artifact cache hit (%s)", self.cache_key[:12])
                        self._artifacts = cached
                        self.artifacts_from_cache = True
                        return cached
                    obs.inc("cache.misses")
                    obs.event("cache.miss", key=self.cache_key)
                    logger.info("artifact cache miss (%s)", self.cache_key[:12])
                # Single-flight: only one process builds a given key at a
                # time; concurrent missers block on the per-key flock and
                # (usually) find the entry stored when they get it.
                lock = cache.single_flight(self.cache_key)
            with lock as waited:
                if waited and use_cache and not resume:
                    obs.inc("cache.single_flight_waits")
                    with obs.span("phase.cache_load"):
                        cached = cache.load(self.cache_key)
                    if cached is not None:
                        obs.inc("cache.hits")
                        obs.event("cache.hit", key=self.cache_key,
                                  single_flight=True)
                        logger.info(
                            "artifact cache hit after single-flight wait (%s)",
                            self.cache_key[:12],
                        )
                        self._artifacts = cached
                        self.artifacts_from_cache = True
                        return cached
                return self._build_locked(
                    cache, jobs, resume, faults, checkpoint, obs
                )

    def _build_locked(
        self, cache, jobs, resume, faults, checkpoint, obs
    ) -> PipelineArtifacts:
        """Steps 1-3 proper, run under the single-flight lock on a miss."""
        with obs.span("phase.model_build"):
            model = self.control.build()
        with obs.span("phase.enumerate", jobs=jobs or 0):
            if jobs is None or jobs > 1:
                graph, stats = enumerate_states_parallel(
                    model, jobs=jobs,
                    record_all_conditions=self.record_all_conditions,
                    obs=obs,
                    checkpoint=checkpoint,
                    resume=resume,
                    budget=self.budget,
                    retry=self.retry,
                    faults=faults,
                    kernel=self.kernel,
                    pool=self.worker_pool(jobs),
                )
            else:
                graph, stats = enumerate_states(
                    model,
                    record_all_conditions=self.record_all_conditions,
                    obs=obs,
                    checkpoint=checkpoint,
                    resume=resume,
                    budget=self.budget,
                    faults=faults,
                    kernel=self.kernel,
                )
        if stats.truncated:
            logger.warning(
                "enumeration truncated by budget (%s): building tours/"
                "vectors over the partial graph; result will not be cached",
                stats.budget_outcome,
            )
        # One transition-event memo spans both back-half phases: the
        # tour cost function touches every arc, so vector generation
        # finds it fully warm and replays no transition twice.
        memo = TransitionEventMemo(self.control, graph)
        with obs.span("phase.tours"):
            cost = pp_instruction_cost(self.control, graph, memo=memo)
            tours = IndexedTourGenerator(
                graph,
                instruction_cost=cost,
                max_instructions_per_trace=self.max_instructions_per_trace,
            ).generate(obs=obs)
        with obs.span("phase.vectors", jobs=jobs or 0):
            traces = VectorGenerator(
                self.control, graph, seed=self.seed, memo=memo
            ).generate(
                list(tours), obs=obs, jobs=jobs or (os.cpu_count() or 1),
                pool=self.worker_pool(jobs),
            )
        self._artifacts = PipelineArtifacts(
            graph=graph, enumeration=stats, tours=tours, traces=traces
        )
        self.artifacts_from_cache = False
        if cache is not None and not stats.truncated:
            with obs.span("phase.cache_store"):
                cache.store(
                    self.cache_key,
                    self._artifacts,
                    manifest={
                        "model_config": self.model_config,
                        "record_all_conditions": self.record_all_conditions,
                        "max_instructions_per_trace": self.max_instructions_per_trace,
                        "seed": self.seed,
                        "num_states": graph.num_states,
                        "num_edges": graph.num_edges,
                        "num_traces": traces.num_traces,
                    },
                )
            obs.inc("cache.stores")
        return self._artifacts

    @property
    def artifacts(self) -> PipelineArtifacts:
        if self._artifacts is None:
            self.build()
        return self._artifacts

    def validate(
        self,
        config: Optional[CoreConfig] = None,
        stop_on_divergence: bool = True,
        jobs: Optional[int] = None,
    ) -> "ValidationReport":
        """Step 4: run every trace against the spec; collect divergences.

        ``jobs`` fans the independent trace simulations across worker
        processes (defaulting to the pipeline-wide setting); results and
        the stop-on-divergence cut point match the sequential run exactly.
        """
        from repro.core.report import ValidationReport

        config = config or CoreConfig(mem_latency=0)
        jobs = self.jobs if jobs is None else jobs
        with self.obs.span("pipeline.validate", jobs=jobs or 0):
            results, diverging = run_vector_traces(
                self.artifacts.traces,
                config=config,
                jobs=jobs,
                stop_on_divergence=stop_on_divergence,
                obs=self.obs,
                pool=self.worker_pool(jobs),
            )
        return ValidationReport(
            config=config,
            traces_run=len(results),
            total_traces=self.artifacts.traces.num_traces,
            diverging_traces=diverging,
            results=results,
            enumeration=self.artifacts.enumeration,
            tour_stats=self.artifacts.tours.stats,
            from_cache=self.artifacts_from_cache,
        )
