"""End-to-end validation pipeline (Fig. 3.1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.enumeration import EnumerationStats, StateGraph, enumerate_states
from repro.harness.compare import ComparisonResult, run_vector_trace
from repro.pp.fsm_model import PPControlModel, PPModelConfig
from repro.pp.rtl.core import CoreConfig
from repro.tour import TourGenerator, TourSet
from repro.vectors import TraceSet, VectorGenerator, pp_instruction_cost


@dataclass
class PipelineArtifacts:
    """Everything the pipeline produces along the way.

    Useful both for inspection and for reusing expensive intermediates
    (the state graph and tours are design-dependent but bug-independent,
    so one pipeline run can evaluate many candidate designs).
    """

    graph: StateGraph
    enumeration: EnumerationStats
    tours: TourSet
    traces: TraceSet


class ValidationPipeline:
    """The four-step methodology for the Protocol Processor.

    >>> pipeline = ValidationPipeline()
    >>> artifacts = pipeline.build()          # steps 1-3  # doctest: +SKIP
    >>> report = pipeline.validate()          # step 4     # doctest: +SKIP

    Parameters
    ----------
    model_config:
        Scaling of the control model (step 1's abstraction choices).
    max_instructions_per_trace:
        The Fig. 3.3 per-trace split limit; ``None`` disables splitting.
    seed:
        Seed for the biased-random parts of vector generation.
    record_all_conditions:
        Enumerate with one arc per unique transition condition -- the
        paper's proposed fix for the fewer-behaviours blind spot (Fig 4.2).
    """

    def __init__(
        self,
        model_config: Optional[PPModelConfig] = None,
        max_instructions_per_trace: Optional[int] = 400,
        seed: int = 0,
        record_all_conditions: bool = False,
    ):
        self.model_config = model_config or PPModelConfig(fill_words=2)
        self.max_instructions_per_trace = max_instructions_per_trace
        self.seed = seed
        self.record_all_conditions = record_all_conditions
        self.control = PPControlModel(self.model_config)
        self._artifacts: Optional[PipelineArtifacts] = None

    def build(self) -> PipelineArtifacts:
        """Run steps 1-3: model, enumerate, tour, vectors."""
        model = self.control.build()
        graph, stats = enumerate_states(
            model, record_all_conditions=self.record_all_conditions
        )
        cost = pp_instruction_cost(self.control, graph)
        tours = TourGenerator(
            graph,
            instruction_cost=cost,
            max_instructions_per_trace=self.max_instructions_per_trace,
        ).generate()
        traces = VectorGenerator(self.control, graph, seed=self.seed).generate(
            list(tours)
        )
        self._artifacts = PipelineArtifacts(
            graph=graph, enumeration=stats, tours=tours, traces=traces
        )
        return self._artifacts

    @property
    def artifacts(self) -> PipelineArtifacts:
        if self._artifacts is None:
            self.build()
        return self._artifacts

    def validate(
        self,
        config: Optional[CoreConfig] = None,
        stop_on_divergence: bool = True,
    ) -> "ValidationReport":
        """Step 4: run every trace against the spec; collect divergences."""
        from repro.core.report import ValidationReport

        config = config or CoreConfig(mem_latency=0)
        results: List[ComparisonResult] = []
        diverging: List[int] = []
        for index, trace in enumerate(self.artifacts.traces):
            result = run_vector_trace(trace, config=config)
            results.append(result)
            if result.diverged:
                diverging.append(index)
                if stop_on_divergence:
                    break
        return ValidationReport(
            config=config,
            traces_run=len(results),
            total_traces=self.artifacts.traces.num_traces,
            diverging_traces=diverging,
            results=results,
            enumeration=self.artifacts.enumeration,
            tour_stats=self.artifacts.tours.stats,
        )
