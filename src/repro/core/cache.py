"""Persistent, content-addressed cache of pipeline artifacts.

The expensive intermediates of the methodology -- the enumerated state
graph, the transition tours, the generated vector traces -- are
*design-dependent but bug-independent*: one build can evaluate any number
of candidate (possibly bug-injected) implementations.  This module makes
that reuse survive across processes by storing
:class:`~repro.core.pipeline.PipelineArtifacts` on disk under a
content-addressed key.

Keying scheme
-------------
Two keying schemes coexist.  The pipeline stores **per-phase** entries
(translated model fingerprint, state graph, tours, traces) addressed by
:func:`phase_key`: each phase's key chains the parent phase's key with a
*per-phase* code digest (:func:`phase_code_version`) that hashes only the
source subtrees feeding that phase (:data:`PHASE_MODULES`) -- so an edit
to ``obs/`` or ``serve/`` invalidates nothing, and an edit to ``tour/``
keeps the enumerated graph.  :func:`pipeline_phase_keys` derives the full
chain for one build.

The original **monolithic** :func:`artifact_key` remains for callers that
cache one opaque blob per build; its key is the SHA-256 of a canonical
JSON payload of every input that determines the artifacts:

- ``schema``: the on-disk format version (:data:`CACHE_SCHEMA_VERSION`);
- ``code``: a digest of every ``repro`` source file, so *any* code change
  invalidates every entry -- conservative but sound, and cheap to compute;
- ``model_config``: the full :class:`~repro.pp.fsm_model.PPModelConfig`
  (or any dataclass config) as a field dict;
- the enumeration/generation flags: ``record_all_conditions``,
  ``max_instructions_per_trace``, ``seed``.

Changing any of these changes the key, so stale entries are never *read*
-- they are simply orphaned (and can be removed with :meth:`ArtifactCache.prune`).

Deliberately **absent** from the key: ``jobs`` (enumeration, vector
generation, and comparison workers), comparison scheduling/``chunksize``,
the transition kernel, the tour generator choice, and transition-event
memoization.  All of these are output-invariant -- every configuration
produces bit-identical artifacts (golden-tested) -- so a cached build is
shared across all of them.

Storage format
--------------
``<cache_dir>/<key>.pkl`` holds the pickled artifacts; ``<key>.json`` is a
manifest carrying the pickle's SHA-256 (computed at store time) plus the
key inputs for debugging.  Writes go through a temporary file plus
:func:`os.replace`, so a reader never sees a torn entry.

Integrity
---------
:meth:`ArtifactCache.load` re-hashes the pickle and compares it against
the manifest digest *before* unpickling; an entry that fails the check --
or fails to unpickle -- is **quarantined**: the pickle is renamed to
``<key>.corrupt`` (preserving the evidence for debugging), a WARNING is
logged, and the load reports a miss so the caller rebuilds.  A poisoned
cache entry therefore costs one rebuild, never a wrong answer.

Single-flight builds
--------------------
Two processes missing on the same key used to both build (~minutes of
duplicated work) and race their stores.  :meth:`ArtifactCache.single_flight`
is a cross-process per-key build lock -- an ``flock(2)`` on
``<key>.lock`` -- with the standard double-checked protocol: miss, take
the lock, *re-check* the cache (the previous holder may have stored
while we waited), build only if still absent.  ``flock`` locks die with
their holder, so a SIGKILLed builder can never wedge the key; a
*stale lock file* left behind is broken (unlinked and re-acquired) once
it exceeds ``stale_after`` without a live flock holder.  The
``repro serve`` daemon, concurrent CLI runs, and parallel campaigns all
share this one mutex rather than owning their own.

:meth:`store` also bumps a per-key ``<key>.builds`` counter file, so a
test (or an operator) can assert "N concurrent identical submissions
triggered exactly one build" from the filesystem alone.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import logging
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

try:  # POSIX; the lock degrades to a no-op elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from repro.resilience.atomic import atomic_write_text

logger = logging.getLogger("repro.cache")

#: Bump when the pickled artifact layout changes incompatibly.
CACHE_SCHEMA_VERSION = 1

_CODE_VERSION: Optional[str] = None
#: Wall-clock time at which :data:`_CODE_VERSION` was computed.  A
#: long-lived daemon records this in every manifest it writes, so an
#: operator can tell "keys computed from startup-time sources" apart from
#: keys computed after an in-place upgrade (see :func:`code_version`).
_CODE_VERSION_AT: Optional[float] = None
_PHASE_CODE_VERSIONS: Dict[str, str] = {}

#: Pipeline phases, in dependency order.  Each phase's cache entry is keyed
#: by its own inputs plus a digest of only the source trees that feed it
#: (:data:`PHASE_MODULES`), chained through the parent phase's key -- so an
#: edit to ``obs/``, ``serve/``, ``core/`` or the CLI invalidates nothing,
#: and an edit to e.g. ``tour/`` invalidates tours and traces but keeps the
#: enumerated graph.
PHASES = ("model", "graph", "tours", "traces")

#: Source subtrees (relative to the ``repro`` package root) hashed into
#: each phase's code digest.  Upstream code reaches downstream phases
#: through the *key chain* (a model-phase change alters ``key_model``,
#: which is folded into ``key_graph``, and so on), so each set only names
#: the code that feeds its phase directly:
#:
#: - ``model``: the Synchronous-Murphi core, the HDL translator and the PP
#:   model builders -- everything that determines the translated model.
#: - ``graph``: the BFS engines plus ``smurphi`` (the state codec and the
#:   compiled transition kernel live there and shape expansion directly).
#: - ``tours``: the Fig. 3.3 generators plus ``vectors`` (the instruction
#:   cost function and transition-event memo are defined there).
#: - ``traces``: the vector generator plus ``pp`` (ISA instruction
#:   synthesis and the stimulus-queue layout live under ``pp/``).
#:
#: ``incremental`` appears in every phase that the incremental layer can
#: *produce* (graph/tours/traces): a bug fix to the replay or splice code
#: must invalidate entries that code may have written.  Absent everywhere:
#: ``obs``, ``serve``, ``core``, ``cli``, ``harness``, ``resilience``,
#: ``errata``, ``bugs`` -- none of them feed artifact bytes.
PHASE_MODULES: Dict[str, tuple] = {
    "model": ("smurphi", "translate", "pp", "hdl"),
    "graph": ("enumeration", "smurphi", "incremental"),
    "tours": ("tour", "vectors", "incremental"),
    "traces": ("vectors", "pp", "incremental"),
}


def _digest_tree(package_root: Path, subdirs: Optional[tuple] = None) -> str:
    """SHA-256 over relative path + contents of ``.py`` files under root.

    ``subdirs`` restricts the walk to the named subtrees (a *phase* digest);
    ``None`` hashes the whole package (the monolithic :func:`code_version`).
    """
    digest = hashlib.sha256()
    if subdirs is None:
        sources = sorted(package_root.rglob("*.py"))
    else:
        sources = []
        for sub in subdirs:
            sources.extend((package_root / sub).rglob("*.py"))
        sources.sort()
    for source in sources:
        digest.update(str(source.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(source.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def _package_root() -> Path:
    return Path(__file__).resolve().parent.parent


def code_version(refresh: bool = False) -> str:
    """Digest of the ``repro`` package sources (memoized per process).

    Hashing relative path + contents of every ``.py`` file means a cache
    entry is invalidated by any code change that could alter the artifacts,
    without trying to reason about which module feeds which stage.

    The memo is computed at first call, which is a staleness hazard for
    long-lived processes: a ``repro serve`` daemon upgraded in place would
    keep serving keys computed from its startup-time sources.
    ``refresh=True`` recomputes the digest (and drops the per-phase memos)
    -- the daemon calls it on journal replay -- and every manifest records
    the digest plus the time it was computed (``code_computed_at``) so the
    provenance of an entry is auditable.
    """
    global _CODE_VERSION, _CODE_VERSION_AT
    if refresh or _CODE_VERSION is None:
        _CODE_VERSION = _digest_tree(_package_root())
        _CODE_VERSION_AT = time.time()
        if refresh:
            _PHASE_CODE_VERSIONS.clear()
    return _CODE_VERSION


def code_version_info() -> Dict[str, Any]:
    """The memoized digest plus the wall-clock time it was computed."""
    return {"code_version": code_version(), "code_computed_at": _CODE_VERSION_AT}


def phase_code_version(
    phase: str, package_root: Optional[Path] = None, refresh: bool = False
) -> str:
    """Digest of only the source subtrees feeding ``phase``.

    Memoized per process (for the real package root); ``refresh=True``
    recomputes, and ``package_root`` overrides the tree being hashed
    (tests point it at synthetic trees to assert the invalidation matrix).
    """
    if phase not in PHASE_MODULES:
        raise ValueError(f"unknown phase {phase!r}; expected one of {PHASES}")
    if package_root is not None:
        return _digest_tree(Path(package_root), PHASE_MODULES[phase])
    if refresh or phase not in _PHASE_CODE_VERSIONS:
        _PHASE_CODE_VERSIONS[phase] = _digest_tree(
            _package_root(), PHASE_MODULES[phase]
        )
    return _PHASE_CODE_VERSIONS[phase]


def config_payload(model_config: Any) -> Any:
    """Canonical key payload for a model config.

    Dataclasses key by their field dict.  Anything else falls back to
    ``repr`` -- but tagged with the concrete type's qualified name, so two
    *distinct* config classes whose reprs happen to collide (e.g. both
    printing ``Config(n=1)``) still address different cache entries.
    """
    if dataclasses.is_dataclass(model_config):
        return dataclasses.asdict(model_config)
    return {
        "type": f"{type(model_config).__module__}.{type(model_config).__qualname__}",
        "repr": repr(model_config),
    }


def artifact_key(
    model_config: Any,
    *,
    record_all_conditions: bool = False,
    max_instructions_per_trace: Optional[int] = None,
    seed: int = 0,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Content address for one pipeline build's artifacts (monolithic).

    This is the original whole-pipeline key (config + flags + seed + the
    package-wide :func:`code_version`); the pipeline itself now stores
    per-phase entries keyed by :func:`phase_key`, but this function remains
    the address for callers that cache one opaque blob per build.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "code": code_version(),
        "model_config": config_payload(model_config),
        "record_all_conditions": bool(record_all_conditions),
        "max_instructions_per_trace": max_instructions_per_trace,
        "seed": seed,
    }
    if extra:
        payload["extra"] = extra
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


def phase_key(
    phase: str, code: str, parent: Optional[str], payload: Any
) -> str:
    """Content address for one phase's artifact.

    ``code`` is the phase's code digest, ``parent`` the upstream phase's
    key (chaining upstream inputs in), ``payload`` the phase-specific
    inputs (flags, seed, config).
    """
    blob = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "phase": phase,
            "code": code,
            "parent": parent,
            "payload": payload,
        },
        sort_keys=True,
        default=repr,
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def pipeline_phase_keys(
    model_config: Any,
    *,
    record_all_conditions: bool = False,
    max_instructions_per_trace: Optional[int] = None,
    seed: int = 0,
    edits: tuple = (),
    code_digests: Optional[Dict[str, str]] = None,
) -> Dict[str, str]:
    """Per-phase content addresses for one pipeline build.

    The chain mirrors the pipeline's dataflow: the model key covers config
    plus the semantic digests of any model edits; the graph key adds the
    enumeration mode; the tours key the per-trace split limit; the traces
    key the vector seed.  ``code_digests`` overrides individual phase code
    digests (tests and benchmarks use it to simulate source edits without
    touching the tree).

    A derived ``"splice"`` key addresses the incremental-support sidecar
    (per-edge instruction costs + the transition-event memo) stored next
    to the tours entry.
    """
    overrides = code_digests or {}

    def code(phase: str) -> str:
        return overrides.get(phase) or phase_code_version(phase)

    keys: Dict[str, str] = {}
    keys["model"] = phase_key(
        "model",
        code("model"),
        None,
        {
            "model_config": config_payload(model_config),
            "edits": [edit.digest() for edit in edits],
        },
    )
    keys["graph"] = phase_key(
        "graph",
        code("graph"),
        keys["model"],
        {"record_all_conditions": bool(record_all_conditions)},
    )
    keys["tours"] = phase_key(
        "tours",
        code("tours"),
        keys["graph"],
        {"max_instructions_per_trace": max_instructions_per_trace},
    )
    keys["traces"] = phase_key(
        "traces", code("traces"), keys["tours"], {"seed": seed}
    )
    keys["splice"] = phase_key("tours", code("tours"), keys["tours"], "splice")
    return keys


class ArtifactCache:
    """On-disk store of pipeline artifacts addressed by :func:`artifact_key`.

    >>> cache = ArtifactCache("/tmp/repro-cache")        # doctest: +SKIP
    >>> key = artifact_key(PPModelConfig(), seed=0)      # doctest: +SKIP
    >>> cache.load(key) or cache.store(key, artifacts)   # doctest: +SKIP
    """

    def __init__(self, cache_dir):
        self.cache_dir = Path(cache_dir)
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            # Fail before the caller sinks minutes into a build whose
            # artifacts could never be stored.
            raise ValueError(
                f"cache directory {self.cache_dir} is unusable: {exc}"
            ) from exc

    # -- paths ---------------------------------------------------------------

    def pickle_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def manifest_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def quarantine_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.corrupt"

    def lock_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.lock"

    def builds_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.builds"

    # -- single-flight build locking -----------------------------------------

    @contextlib.contextmanager
    def single_flight(
        self,
        key: str,
        poll_interval: float = 0.05,
        stale_after: float = 600.0,
        timeout: Optional[float] = None,
    ) -> Iterator[bool]:
        """Cross-process per-key build lock; yields ``waited``.

        Acquires an exclusive ``flock`` on ``<key>.lock``, blocking (in
        ``poll_interval`` steps, so the process stays signal-responsive)
        while another process holds it.  Yields ``True`` when the lock
        was contended -- the caller should re-check the cache before
        building, because the previous holder probably stored the entry.

        Stale-lock breaking: a lock *file* whose mtime is older than
        ``stale_after`` and whose flock can be taken immediately is the
        debris of a dead builder; it is unlinked and the acquire loop
        re-opens a fresh inode (``flock`` itself dies with its holder,
        so this only tidies the directory -- it can never steal a live
        lock).  ``timeout`` bounds the total wait (``TimeoutError``);
        ``None`` waits forever.  On platforms without ``fcntl`` the lock
        degrades to a no-op -- single-process correctness is unaffected.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield False
            return
        path = self.lock_path(key)
        started = time.monotonic()
        waited = False
        handle = open(path, "a+")
        try:
            while True:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                    # Guard against the unlink race: if another waiter
                    # broke the lock file after we opened it, our flock is
                    # on an orphaned inode no one else can see.  Re-open
                    # and try again on the live path.
                    try:
                        if os.fstat(handle.fileno()).st_ino != path.stat().st_ino:
                            raise OSError("lock file replaced under us")
                    except OSError:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                        handle.close()
                        handle = open(path, "a+")
                        continue
                    # Holders refresh the mtime so a *live* long build is
                    # never mistaken for debris by other waiters.
                    os.utime(path)
                    break
                except OSError:
                    waited = True
                if timeout is not None and time.monotonic() - started > timeout:
                    raise TimeoutError(
                        f"single-flight lock on {key[:12]} not acquired "
                        f"within {timeout}s"
                    )
                try:
                    age = time.time() - path.stat().st_mtime
                except OSError:
                    age = 0.0
                if age > stale_after:
                    # Nobody holds the flock (we just failed on *some*
                    # inode -- retry against a fresh one) yet the file is
                    # ancient: break it and loop.
                    logger.warning(
                        "breaking stale single-flight lock for %s "
                        "(age %.0fs > %.0fs)", key[:12], age, stale_after,
                    )
                    with contextlib.suppress(OSError):
                        os.unlink(path)
                    handle.close()
                    handle = open(path, "a+")
                    continue
                time.sleep(poll_interval)
            if waited:
                logger.debug(
                    "single-flight: waited %.3fs for %s",
                    time.monotonic() - started, key[:12],
                )
            yield waited
        finally:
            with contextlib.suppress(OSError):
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()

    def build_count(self, key: str) -> int:
        """How many times ``store`` ran for ``key`` (0 if never)."""
        try:
            return int(self.builds_path(key).read_text().strip() or 0)
        except (OSError, ValueError):
            return 0

    # -- operations ----------------------------------------------------------

    def has(self, key: str) -> bool:
        return self.pickle_path(key).is_file()

    def _quarantine(self, key: str, reason: str) -> None:
        """Move a bad entry aside (``<key>.corrupt``) so it is rebuilt.

        Renaming rather than deleting keeps the evidence around for
        debugging (was it a torn write?  bit rot?  a tampered file?) while
        guaranteeing the poisoned bytes can never be loaded again.
        """
        path = self.pickle_path(key)
        try:
            os.replace(path, self.quarantine_path(key))
        except OSError:
            pass  # already gone (e.g. a concurrent prune); nothing to keep
        logger.warning(
            "quarantined corrupt cache entry %s (%s); it will be rebuilt",
            key[:12], reason,
        )

    def load(self, key: str) -> Optional[Any]:
        """Return the cached artifacts for ``key``, or ``None`` on a miss.

        The pickle's SHA-256 is checked against the manifest before
        unpickling; a digest mismatch or unpicklable stream quarantines
        the entry (see :meth:`_quarantine`) and counts as a miss.
        """
        path = self.pickle_path(key)
        started = time.perf_counter()
        try:
            blob = path.read_bytes()
        except OSError:
            logger.debug("cache miss for %s", key[:12])
            return None
        expected = None
        try:
            expected = json.loads(self.manifest_path(key).read_text()).get("sha256")
        except (OSError, ValueError):
            pass  # legacy entry without a manifest: fall back to unpickle-or-die
        if expected is not None:
            actual = hashlib.sha256(blob).hexdigest()
            if actual != expected:
                self._quarantine(
                    key,
                    f"sha256 mismatch: manifest says {expected[:12]}, "
                    f"file is {actual[:12]}",
                )
                return None
        try:
            artifacts = pickle.loads(blob)
        except Exception as exc:
            # Unpickling a corrupt stream can raise nearly anything
            # (UnpicklingError, EOFError, ValueError, UnicodeDecodeError,
            # AttributeError...); every failure mode means the same thing
            # here: not a usable entry, quarantine and rebuild it.
            self._quarantine(key, f"unpicklable: {type(exc).__name__}: {exc}")
            return None
        logger.debug(
            "cache hit for %s (%d bytes in %.3fs)",
            key[:12], len(blob), time.perf_counter() - started,
        )
        return artifacts

    def store(
        self, key: str, artifacts: Any, manifest: Optional[Dict[str, Any]] = None
    ) -> Path:
        """Atomically persist ``artifacts`` under ``key``; returns the path.

        The pickle bytes are hashed once here and the digest recorded in
        the manifest (written last, also atomically), giving :meth:`load`
        an end-to-end integrity check on every future hit.  Caller-supplied
        manifest fields are merged in for debugging.
        """
        started = time.perf_counter()
        path = self.pickle_path(key)
        blob = pickle.dumps(artifacts, protocol=pickle.HIGHEST_PROTOCOL)
        # A concurrent prune() may sweep our .tmp between mkstemp and
        # os.replace (FileNotFoundError from the replace).  Losing that
        # race is not an error -- the entry is being written, not read
        # -- so re-create and write again; last writer wins.
        attempts = 5
        for attempt in range(attempts):
            try:
                self._persist(key, path, blob, manifest)
                break
            except FileNotFoundError:
                if attempt == attempts - 1:
                    raise
        logger.debug(
            "cache store for %s (%d bytes in %.3fs)",
            key[:12], len(blob), time.perf_counter() - started,
        )
        return path

    def _persist(
        self, key: str, path: Path, blob: bytes,
        manifest: Optional[Dict[str, Any]],
    ) -> None:
        """One attempt at writing pickle + manifest + build counter."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        full_manifest = dict(manifest or {})
        full_manifest.update(
            schema=CACHE_SCHEMA_VERSION,
            sha256=hashlib.sha256(blob).hexdigest(),
            size=len(blob),
            stored_at=time.time(),
            **code_version_info(),
        )
        atomic_write_text(
            self.manifest_path(key),
            json.dumps(full_manifest, indent=2, sort_keys=True, default=repr),
        )
        # Build-count bookkeeping for the single-flight protocol: under
        # the per-key lock this is an exact "how many times was this
        # entry actually built" counter that chaos tests assert on.
        atomic_write_text(self.builds_path(key), f"{self.build_count(key) + 1}\n")

    def copy_entry(self, src_key: str, dst_key: str) -> bool:
        """Adopt ``src_key``'s entry under ``dst_key`` without re-pickling.

        The incremental layer uses this when a model diff proves two keys
        address byte-identical artifacts (a no-op edit): the pickle bytes
        are copied verbatim -- no load/unpickle/re-pickle round trip -- and
        a fresh manifest records the provenance (``copied_from``).  Returns
        ``False`` (no copy) when the source entry is absent or fails its
        integrity check.
        """
        try:
            blob = self.pickle_path(src_key).read_bytes()
        except OSError:
            return False
        manifest: Dict[str, Any] = {}
        try:
            manifest = json.loads(self.manifest_path(src_key).read_text())
        except (OSError, ValueError):
            pass
        expected = manifest.get("sha256")
        if expected is not None and hashlib.sha256(blob).hexdigest() != expected:
            self._quarantine(src_key, "sha256 mismatch during copy_entry")
            return False
        manifest.pop("sha256", None)
        manifest.pop("stored_at", None)
        manifest["copied_from"] = src_key
        attempts = 5
        for attempt in range(attempts):
            try:
                self._persist(dst_key, self.pickle_path(dst_key), blob, manifest)
                return True
            except FileNotFoundError:
                if attempt == attempts - 1:
                    raise
        return True

    def entries(self) -> list:
        """Describe every stored entry (for ``repro cache``).

        Returns a list of dicts -- key, phase (from the manifest, if the
        writer recorded one), pickle size, age in seconds, build count --
        sorted newest-first.
        """
        rows = []
        if not self.cache_dir.is_dir():
            return rows
        now = time.time()
        for path in sorted(self.cache_dir.glob("*.pkl")):
            key = path.stem
            manifest: Dict[str, Any] = {}
            try:
                manifest = json.loads(self.manifest_path(key).read_text())
            except (OSError, ValueError):
                pass
            try:
                size = path.stat().st_size
            except OSError:
                continue
            stored_at = manifest.get("stored_at")
            rows.append(
                {
                    "key": key,
                    "phase": manifest.get("phase"),
                    "size": size,
                    "stored_at": stored_at,
                    "age_seconds": (now - stored_at) if stored_at else None,
                    "builds": self.build_count(key),
                    "code_computed_at": manifest.get("code_computed_at"),
                }
            )
        rows.sort(key=lambda row: row["stored_at"] or 0.0, reverse=True)
        return rows

    def prune(self) -> int:
        """Remove every entry; returns the number of pickles deleted."""
        removed = 0
        if not self.cache_dir.is_dir():
            return removed
        for path in self.cache_dir.iterdir():
            if path.suffix in (".pkl", ".json", ".tmp", ".corrupt", ".lock",
                               ".builds"):
                try:
                    path.unlink()
                except OSError:
                    continue
                if path.suffix == ".pkl":
                    removed += 1
        return removed
