"""The paper's primary contribution as one public API.

:class:`ValidationPipeline` wires the four steps of Fig. 3.1 together:

1. translate the design into an FSM model (from Verilog via
   :mod:`repro.hdl`/:mod:`repro.translate`, or a hand-built
   :class:`~repro.smurphi.SyncModel`),
2. enumerate the complete control state graph,
3. generate transition tours and map them to test vectors,
4. simulate the RTL implementation against the executable specification
   and report data-value differences.
"""

from repro.core.cache import ArtifactCache, artifact_key, code_version
from repro.core.pipeline import ValidationPipeline, PipelineArtifacts
from repro.core.report import ValidationReport, format_campaign_table

__all__ = [
    "ArtifactCache",
    "artifact_key",
    "code_version",
    "ValidationPipeline",
    "PipelineArtifacts",
    "ValidationReport",
    "format_campaign_table",
]
