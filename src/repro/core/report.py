"""Reporting for validation runs and Table 2.1-style method comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.enumeration import EnumerationStats
from repro.harness.campaign import CampaignResult
from repro.harness.compare import ComparisonResult
from repro.pp.rtl.core import CoreConfig
from repro.tour.fig33 import TourStats


@dataclass
class ValidationReport:
    """Outcome of a full validation run against one design configuration."""

    config: CoreConfig
    traces_run: int
    total_traces: int
    diverging_traces: List[int]
    results: List[ComparisonResult]
    enumeration: EnumerationStats
    tour_stats: TourStats
    #: True when the pipeline artifacts were loaded from the on-disk cache
    #: rather than rebuilt (enumeration + tours + vectors skipped).
    from_cache: bool = False

    @property
    def clean(self) -> bool:
        return not self.diverging_traces

    def summary(self) -> str:
        header = (
            f"Validation of design (bugs={sorted(self.config.bugs) or 'none'}): "
            f"{self.traces_run}/{self.total_traces} traces run"
        )
        if self.clean:
            return header + " -- no divergence (design matches specification)"
        lines = [header + f" -- {len(self.diverging_traces)} diverging trace(s)"]
        for index in self.diverging_traces[:5]:
            lines.append(f"  trace {index}: {self.results[index].describe()}")
        if len(self.diverging_traces) > 5:
            lines.append(f"  ... and {len(self.diverging_traces) - 5} more")
        return "\n".join(lines)


def format_campaign_table(results: Sequence[CampaignResult]) -> str:
    """Render a Table 2.1-style matrix: bug x method -> found / missed.

    Method columns are derived from the results (first-seen order), so a
    campaign run with a new or restricted method set renders its actual
    outcomes instead of silently showing ``-`` under hardcoded columns.
    """
    methods: List[str] = []
    for result in results:
        for method in result.outcomes:
            if method not in methods:
                methods.append(method)
    if not methods:
        methods = ["generated", "random", "directed"]
    lines = [
        f"{'Bug':<6}" + "".join(f"{m:>22}" for m in methods),
    ]
    for result in results:
        cells = []
        for method in methods:
            outcome = result.outcomes.get(method)
            if outcome is None:
                cells.append(f"{'-':>22}")
            elif outcome.detected:
                cells.append(f"{'FOUND (%d instr)' % outcome.instructions_run:>22}")
            else:
                cells.append(f"{'missed (%d instr)' % outcome.instructions_run:>22}")
        label = "clean" if result.bug_id is None else f"#{result.bug_id}"
        lines.append(f"{label:<6}" + "".join(cells))
    return "\n".join(lines)
