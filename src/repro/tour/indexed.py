"""Indexed tour generation: Fig. 3.3 on a CSR graph with a distance index.

:class:`IndexedTourGenerator` produces **bit-identical** output to the
reference :class:`~repro.tour.fig33.TourGenerator` (same tours, same edge
order, same splits -- golden- and property-tested) while replacing its two
scaling bottlenecks:

1. **Flat CSR adjacency.**  The graph is frozen into four integer arrays
   (``indptr``/``out_edge``/``out_dst`` plus a reverse CSR for the index)
   so the greedy DFS and the explore BFS walk plain ``list[int]`` lookups
   instead of per-state tuple rows, and the BFS scratch (visited marks,
   parent edges, depths, queue) is preallocated once and recycled across
   splices with an epoch stamp instead of allocating fresh dicts/deques at
   every stuck point.

2. **A nearest-untraversed-arc index.**  The reference generator re-runs a
   full O(V+E) breadth-first *explore* from scratch at every stuck point
   (~90% of generation time at paper scale).  Here a reverse multi-source
   BFS computes, for every state, the distance to the nearest state that
   still has an untraversed out-arc.  The field is maintained with *lazy
   epoch invalidation*: traversing arcs only ever shrinks the target set,
   so a stale field is always a valid **lower bound** and is only rebuilt
   when an explore actually outruns it.

The index is used strictly to *prune/early-exit* the forward explore, so
the BFS queue order and tie-breaks -- hence the chosen splice path and the
resulting tours -- are unchanged:

- ``dist[s] == INF`` means no untraversed arc was reachable from ``s`` at
  rebuild time; since targets only shrink this stays true forever, so the
  explore returns "unreachable" without touching the graph (this is every
  tour close and the end-of-run check).
- With a bound ``B >= dist[s]``, a discovered node ``w`` at depth ``k``
  with ``k + dist[w] > B`` cannot reach any target soon enough to matter,
  and -- because the field satisfies the BFS triangle inequality from its
  rebuild epoch -- ``w`` can also never be the parent of any node on the
  path the un-pruned BFS would return (see DESIGN.md for the argument).
  Such nodes are marked visited but never enqueued.
- If the bound was stale-low the pruned BFS finds nothing; the generator
  then rebuilds the field (making the bound exact) and retries, with an
  unbounded sweep as the final fallback.  Every escalation step returns
  either the reference path or "not found", never a different path.
"""

from __future__ import annotations

import logging
import time
from typing import List, Optional

from repro.enumeration.graph import StateGraph
from repro.obs.observer import Observer, resolve
from repro.tour.fig33 import InstructionCost, Tour, TourSet, _unit_cost

logger = logging.getLogger("repro.tour")


class IndexedTourGenerator:
    """Drop-in accelerated ``GenerateTours`` (Fig. 3.3).

    Accepts exactly the reference :class:`~repro.tour.fig33.TourGenerator`
    parameters and produces bit-identical :class:`TourSet` output at any
    scale; only the internal exploration machinery differs.
    """

    def __init__(
        self,
        graph: StateGraph,
        instruction_cost: InstructionCost = _unit_cost,
        max_instructions_per_trace: Optional[int] = None,
    ):
        if max_instructions_per_trace is not None and max_instructions_per_trace <= 0:
            raise ValueError("max_instructions_per_trace must be positive")
        self.graph = graph
        self.instruction_cost = instruction_cost
        self.max_instructions = max_instructions_per_trace
        self._build_csr()

    # -- CSR construction -------------------------------------------------------

    def _build_csr(self) -> None:
        """Freeze the graph into flat integer arrays (forward + reverse)."""
        graph = self.graph
        num_states = graph.num_states
        edges = graph.edges()
        self._edge_src = [e.src for e in edges]
        self._edge_dst = [e.dst for e in edges]

        indptr = [0] * (num_states + 1)
        out_edge: List[int] = []
        out_dst: List[int] = []
        for state in range(num_states):
            for index in graph.out_edge_indices(state):
                out_edge.append(index)
                out_dst.append(self._edge_dst[index])
            indptr[state + 1] = len(out_edge)
        self._indptr = indptr
        self._out_edge = out_edge
        self._out_dst = out_dst
        # Prezipped (dst, edge_index) rows: the explore BFS slices these
        # directly, which beats per-position indexing in pure Python.
        self._out_pairs = list(zip(out_dst, out_edge))

        # Reverse CSR (in-edges by destination) for the distance index;
        # only source ids are needed -- the index never reconstructs paths.
        rcounts = [0] * num_states
        for dst in self._edge_dst:
            rcounts[dst] += 1
        rindptr = [0] * (num_states + 1)
        for state in range(num_states):
            rindptr[state + 1] = rindptr[state] + rcounts[state]
        rin_src = [0] * len(edges)
        cursor = list(rindptr[:num_states])
        for index, dst in enumerate(self._edge_dst):
            rin_src[cursor[dst]] = self._edge_src[index]
            cursor[dst] += 1
        self._rindptr = rindptr
        self._rin_src = rin_src

    # -- public API ------------------------------------------------------------

    def generate(self, obs: Optional[Observer] = None) -> TourSet:
        """Run the Fig. 3.3 loop; same events/counters as the reference,
        plus ``tour.explore_pruned`` (BFS enqueues skipped via the index),
        ``tour.explore_short_circuits`` (explores answered straight from
        the distance field) and ``tour.index_rebuilds``."""
        obs = resolve(obs)
        started = time.perf_counter()
        graph = self.graph
        num_states = graph.num_states
        num_edges = graph.num_edges

        self._traversed = bytearray(num_edges)
        self._cursors = list(self._indptr[:num_states])
        self._untraversed_out = [
            self._indptr[s + 1] - self._indptr[s] for s in range(num_states)
        ]
        self._remaining = num_edges
        # Distance index state.  INF exceeds any possible BFS depth.
        self._inf = num_states + 1
        self._dist = [self._inf] * num_states
        self._field_valid = False
        self._field_stale = False
        # Preallocated BFS scratch, recycled across splices via the epoch.
        self._visit_mark = [0] * num_states
        self._visit_epoch = 0
        self._parent = [-1] * num_states
        self._depth = [0] * num_states
        self._queue = [0] * num_states
        # Run counters (flushed once at the end, observability style).
        self._explore_pruned = 0
        self._short_circuits = 0
        self._rebuilds = 0

        tours: List[Tour] = []
        limit_restarts = 0
        explore_splices = 0
        cumulative_instructions = 0
        while self._remaining:
            tour = Tour()
            state = StateGraph.RESET
            limit_hit = False
            while True:
                state = self._traverse_dfs(state, tour)
                if self.max_instructions is not None and tour.instructions >= self.max_instructions:
                    limit_hit = True
                    break
                path = self._explore(state)
                if path is None:
                    break  # nothing else reachable: close this tour
                if path:
                    explore_splices += 1
                for index in path:
                    self._take(index, tour)
                state = self._edge_dst[path[-1]] if path else state
            if tour.edge_indices:
                tours.append(tour)
                limit_restarts += limit_hit
                cumulative_instructions += tour.instructions
                obs.observe("tour.trace_instructions", tour.instructions)
                obs.observe("tour.trace_edges", len(tour))
                obs.event(
                    "tour.trace",
                    index=len(tours) - 1,
                    edges=len(tour),
                    instructions=tour.instructions,
                    cumulative_instructions=cumulative_instructions,
                    covered_arcs=num_edges - self._remaining,
                    graph_arcs=num_edges,
                    limit_hit=limit_hit,
                )
                obs.heartbeat(
                    "tours",
                    traces=len(tours),
                    instructions=cumulative_instructions,
                    covered_arcs=num_edges - self._remaining,
                    graph_arcs=num_edges,
                )
            elif not limit_hit and self._remaining:
                raise RuntimeError(
                    "unreachable untraversed arcs remain; graph is not "
                    "reset-reachable"
                )
        elapsed = time.perf_counter() - started
        obs.inc("tour.traces", len(tours))
        obs.inc("tour.arc_traversals", sum(len(t) for t in tours))
        obs.inc("tour.instructions", cumulative_instructions)
        obs.inc("tour.limit_restarts", limit_restarts)
        obs.inc("tour.explore_splices", explore_splices)
        obs.inc("tour.explore_pruned", self._explore_pruned)
        obs.inc("tour.explore_short_circuits", self._short_circuits)
        obs.inc("tour.index_rebuilds", self._rebuilds)
        obs.observe("tour.seconds", elapsed)
        logger.info(
            "generated %d tours covering %d arcs (%d instructions, "
            "%d limit restarts, %d explore splices; %d pruned enqueues, "
            "%d short circuits, %d index rebuilds) in %.3fs",
            len(tours), num_edges, cumulative_instructions,
            limit_restarts, explore_splices, self._explore_pruned,
            self._short_circuits, self._rebuilds, elapsed,
        )
        return TourSet(self.graph, tours, elapsed)

    # -- phases of Fig. 3.3 ------------------------------------------------------

    def _traverse_dfs(self, state: int, tour: Tour) -> int:
        """Greedy depth-first phase over the CSR rows (reference order)."""
        indptr = self._indptr
        out_edge = self._out_edge
        out_dst = self._out_dst
        traversed = self._traversed
        cursors = self._cursors
        untraversed_out = self._untraversed_out
        while untraversed_out[state]:
            end = indptr[state + 1]
            cursor = cursors[state]
            while cursor < end and traversed[out_edge[cursor]]:
                cursor += 1
            cursors[state] = cursor
            if cursor >= end:
                break  # stale counter; nothing actually untraversed here
            index = out_edge[cursor]
            self._take(index, tour)
            state = out_dst[cursor]
            if self.max_instructions is not None and tour.instructions >= self.max_instructions:
                break
        return state

    def _take(self, index: int, tour: Tour) -> None:
        tour.edge_indices.append(index)
        tour.instructions += self.instruction_cost(self.graph.edge(index))
        if not self._traversed[index]:
            self._traversed[index] = 1
            src = self._edge_src[index]
            self._untraversed_out[src] -= 1
            self._remaining -= 1
            if not self._untraversed_out[src]:
                # A target left the index's source set: finite distances
                # decay to lower bounds (INF entries stay exact forever).
                self._field_stale = True

    # -- the distance index -----------------------------------------------------

    def _rebuild_index(self) -> None:
        """Reverse multi-source BFS: distance to the nearest state that
        still has an untraversed out-arc, for every state at once.

        Level-synchronous over the reverse CSR; the resulting distances
        are source-order independent, so nothing here affects tours.
        """
        self._rebuilds += 1
        inf = self._inf
        num_states = len(self._dist)
        untraversed_out = self._untraversed_out
        self._dist = dist = [inf] * num_states
        frontier = [s for s in range(num_states) if untraversed_out[s]]
        for state in frontier:
            dist[state] = 0
        rindptr = self._rindptr
        rin_src = self._rin_src
        next_depth = 0
        while frontier:
            next_depth += 1
            level: List[int] = []
            push = level.append
            for node in frontier:
                for src in rin_src[rindptr[node]:rindptr[node + 1]]:
                    if dist[src] > next_depth:
                        dist[src] = next_depth
                        push(src)
            frontier = level
        self._field_valid = True
        self._field_stale = False

    #: On a bounded miss the bound doubles this many times (a retry costs
    #: one pruned BFS) before paying for a full index rebuild, which makes
    #: the next bound exact.  1 = rebuild on the first miss: measured on
    #: the pp graph, deferring rebuilds lets the whole field go stale and
    #: the loosened pruning costs more than the rebuilds saved.
    RETRIES_BEFORE_REBUILD = 1

    def _explore(self, state: int) -> Optional[List[int]]:
        """Explore phase: identical result to the reference ``_explore_bfs``.

        Escalation ladder: index-bounded BFS at the field's lower bound ->
        bound-doubling retries -> rebuild the field (exact bound) -> full
        sweep.  Every rung is reference-equivalent for *any* bound as long
        as the field is a valid lower bound (see ``_bounded_bfs``): it
        either returns the reference path or proves no target lies within
        its bound, so only the escalation *cost* depends on staleness,
        never the result.  The final bound of ``2 * num_states`` exceeds
        any possible ``depth + dist`` sum, so the last rung prunes nothing
        and is the reference algorithm itself on CSR arrays.
        """
        if self._untraversed_out[state]:
            return []
        if not self._field_valid:
            self._rebuild_index()
        if self._dist[state] >= self._inf:
            # Sound even when stale: the target set only ever shrinks.
            self._short_circuits += 1
            return None
        bound = self._dist[state]
        ceiling = 2 * len(self._dist)
        retries = 0
        while True:
            path = self._bounded_bfs(state, bound)
            if path is not None:
                return path
            if bound >= ceiling:
                return None  # exact: the full sweep found nothing
            retries += 1
            if retries == self.RETRIES_BEFORE_REBUILD:
                # The stale lower bound keeps undershooting: make it exact.
                self._rebuild_index()
                if self._dist[state] >= self._inf:
                    self._short_circuits += 1
                    return None
                bound = self._dist[state]
            elif retries > self.RETRIES_BEFORE_REBUILD:
                bound = ceiling  # fresh exact bound missed: defensive sweep
            else:
                bound = 2 * bound + 1

    def _bounded_bfs(self, state: int, bound: int) -> Optional[List[int]]:
        """Forward BFS in reference discovery order, skipping (but still
        marking) nodes the index proves useless within ``bound``."""
        self._visit_epoch += 1
        epoch = self._visit_epoch
        visit_mark = self._visit_mark
        parent = self._parent
        depth = self._depth
        queue = self._queue
        dist = self._dist
        indptr = self._indptr
        out_pairs = self._out_pairs
        untraversed_out = self._untraversed_out
        pruned = 0

        visit_mark[state] = epoch
        depth[state] = 0
        queue[0] = state
        head, tail = 0, 1
        while head < tail:
            current = queue[head]
            head += 1
            child_depth = depth[current] + 1
            for dst, edge_index in out_pairs[indptr[current]:indptr[current + 1]]:
                if visit_mark[dst] == epoch:
                    continue
                visit_mark[dst] = epoch
                parent[dst] = edge_index
                # Prune BEFORE the target check: a target always has
                # dist == 0 (stale fields only shrink the target set, so
                # a current target was one at rebuild time too), so this
                # also rejects targets deeper than the bound.  A stale-low
                # bound therefore can never return *any* target -- a
                # return would imply a genuine path shorter than the true
                # nearest-target distance -- and falls through to the
                # rebuild rung instead of picking a wrong-parent detour.
                if child_depth + dist[dst] > bound:
                    pruned += 1
                    continue
                if untraversed_out[dst]:
                    self._explore_pruned += pruned
                    return self._reconstruct(dst, state)
                depth[dst] = child_depth
                queue[tail] = dst
                tail += 1
        self._explore_pruned += pruned
        return None

    def _reconstruct(self, target: int, start: int) -> List[int]:
        path: List[int] = []
        node = target
        parent = self._parent
        edge_src = self._edge_src
        while node != start:
            index = parent[node]
            path.append(index)
            node = edge_src[index]
        path.reverse()
        return path
