"""The paper's tour-generation algorithm (Fig. 3.3), faithfully reproduced.

The generator produces a *set* of tour components, all starting from the
reset state, whose union covers every arc of the state graph.  Within a
tour it proceeds greedily depth-first over untraversed arcs; when stuck it
performs a breadth-first *explore* over the whole graph (traversed arcs
included) and splices in the shortest path to the nearest state that still
has an untraversed out-arc.  Traversing an arc multiple times is cheap in
simulation whereas backtracking/checkpointing is not, so re-traversal is
always preferred.  When no untraversed arc is reachable from the current
point -- or the per-file instruction limit is hit -- the tour is closed and
a new one starts from reset.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.enumeration.graph import Edge, StateGraph
from repro.obs.observer import Observer, resolve

logger = logging.getLogger("repro.tour")

#: Cost function: instructions contributed by traversing one arc.
InstructionCost = Callable[[Edge], int]


def _unit_cost(edge: Edge) -> int:
    return 1


@dataclass
class Tour:
    """One tour component: a walk from reset given as edge indices."""

    edge_indices: List[int] = field(default_factory=list)
    instructions: int = 0

    def __len__(self) -> int:
        return len(self.edge_indices)


@dataclass(frozen=True)
class TourStats:
    """The quantities Table 3.3 reports for a generation run."""

    num_traces: int
    total_edge_traversals: int
    total_instructions: int
    generation_seconds: float
    longest_trace_edges: int
    covered_edges: int
    graph_edges: int

    @property
    def instructions_per_arc(self) -> float:
        """Average instructions needed to test each arc (paper: ~7)."""
        if not self.graph_edges:
            return 0.0
        return self.total_instructions / self.graph_edges

    def estimated_simulation_hours(self, cycles_per_second: float = 100.0) -> float:
        """Paper's 'estimated simulation time @ 100Hz' row (1 arc = 1 cycle)."""
        return self.total_edge_traversals / cycles_per_second / 3600.0

    def estimated_longest_trace_hours(self, cycles_per_second: float = 100.0) -> float:
        return self.longest_trace_edges / cycles_per_second / 3600.0


class TourSet:
    """The result of a generation run: tours plus Table 3.3 statistics."""

    def __init__(self, graph: StateGraph, tours: List[Tour], generation_seconds: float):
        self.graph = graph
        self.tours = tours
        covered = set()
        for tour in tours:
            covered.update(tour.edge_indices)
        self.stats = TourStats(
            num_traces=len(tours),
            total_edge_traversals=sum(len(t) for t in tours),
            total_instructions=sum(t.instructions for t in tours),
            generation_seconds=generation_seconds,
            longest_trace_edges=max((len(t) for t in tours), default=0),
            covered_edges=len(covered),
            graph_edges=graph.num_edges,
        )

    @property
    def complete(self) -> bool:
        """True when the union of tours covers every arc in the graph."""
        return self.stats.covered_edges == self.graph.num_edges

    def to_json(self) -> str:
        """Canonical serialization of the tour *content*.

        Deliberately excludes ``generation_seconds`` (and the graph, which
        has its own ``to_json``): two runs that produced the same tours
        must serialize identically, which is how the incremental layer's
        byte-for-byte equivalence with cold builds is asserted.
        """
        import json

        return json.dumps(
            {
                "tours": [
                    {"edge_indices": list(t.edge_indices), "instructions": t.instructions}
                    for t in self.tours
                ],
            }
        )

    def __iter__(self):
        return iter(self.tours)

    def __len__(self) -> int:
        return len(self.tours)


class TourGenerator:
    """Implements ``GenerateTours`` of Fig. 3.3.

    Parameters
    ----------
    graph:
        The enumerated state graph (every state reachable from reset).
    instruction_cost:
        Instructions contributed by an arc traversal; defaults to one per
        arc.  The PP mapping charges one instruction per issued class.
    max_instructions_per_trace:
        The per-output-file limit of Fig. 3.3 (the paper evaluates both no
        limit and a 10,000-instruction limit in Table 3.3).  ``None``
        disables the limit.
    """

    def __init__(
        self,
        graph: StateGraph,
        instruction_cost: InstructionCost = _unit_cost,
        max_instructions_per_trace: Optional[int] = None,
    ):
        if max_instructions_per_trace is not None and max_instructions_per_trace <= 0:
            raise ValueError("max_instructions_per_trace must be positive")
        self.graph = graph
        self.instruction_cost = instruction_cost
        self.max_instructions = max_instructions_per_trace

    # -- public API ------------------------------------------------------------

    def generate(self, obs: Optional[Observer] = None) -> TourSet:
        """Run the full Fig. 3.3 loop until every arc has been traversed.

        ``obs`` receives one ``tour.trace`` event per closed tour with
        cumulative arcs-covered / instructions (the raw Fig 4.1 coverage
        curve), plus end-of-run counters: ``tour.traces``,
        ``tour.arc_traversals``, ``tour.instructions``,
        ``tour.limit_restarts`` (tours closed by the per-trace limit) and
        ``tour.explore_splices`` (BFS paths spliced in when the greedy
        DFS got stuck).
        """
        obs = resolve(obs)
        started = time.perf_counter()
        graph = self.graph
        # One shared (edge_index, dst) adjacency view for every DFS walk
        # and explore restart of this run (the graph is frozen by now).
        adjacency = graph.out_adjacency()
        traversed = [False] * graph.num_edges
        # Per-state cursor into the out-edge list: edges before the cursor
        # are all traversed, so the DFS scan restarts where it left off.
        cursors = [0] * graph.num_states
        untraversed_out = [len(out) for out in adjacency]
        # Maintained decrementally by _take (an O(V) sum per outer
        # iteration is measurable on large graphs with many tours).
        self._remaining = graph.num_edges

        tours: List[Tour] = []
        limit_restarts = 0
        explore_splices = 0
        cumulative_instructions = 0
        while self._remaining:
            tour = Tour()
            state = StateGraph.RESET
            limit_hit = False
            while True:
                state = self._traverse_dfs(
                    state, tour, traversed, cursors, untraversed_out, adjacency
                )
                if self.max_instructions is not None and tour.instructions >= self.max_instructions:
                    limit_hit = True
                    break
                path = self._explore_bfs(state, untraversed_out, adjacency)
                if path is None:
                    break  # nothing else reachable: close this tour
                if path:
                    explore_splices += 1
                for index in path:
                    self._take(index, tour, traversed, untraversed_out)
                state = graph.edge(path[-1]).dst if path else state
            remaining = self._remaining
            if tour.edge_indices:
                tours.append(tour)
                limit_restarts += limit_hit
                cumulative_instructions += tour.instructions
                obs.observe("tour.trace_instructions", tour.instructions)
                obs.observe("tour.trace_edges", len(tour))
                obs.event(
                    "tour.trace",
                    index=len(tours) - 1,
                    edges=len(tour),
                    instructions=tour.instructions,
                    cumulative_instructions=cumulative_instructions,
                    covered_arcs=graph.num_edges - remaining,
                    graph_arcs=graph.num_edges,
                    limit_hit=limit_hit,
                )
            elif not limit_hit and remaining:
                # Defensive: reset has no untraversed reachable arc yet arcs
                # remain -- impossible for graphs enumerated from reset.
                raise RuntimeError(
                    "unreachable untraversed arcs remain; graph is not "
                    "reset-reachable"
                )
        elapsed = time.perf_counter() - started
        obs.inc("tour.traces", len(tours))
        obs.inc("tour.arc_traversals", sum(len(t) for t in tours))
        obs.inc("tour.instructions", cumulative_instructions)
        obs.inc("tour.limit_restarts", limit_restarts)
        obs.inc("tour.explore_splices", explore_splices)
        obs.observe("tour.seconds", elapsed)
        logger.info(
            "generated %d tours covering %d arcs (%d instructions, "
            "%d limit restarts, %d explore splices) in %.3fs",
            len(tours), graph.num_edges, cumulative_instructions,
            limit_restarts, explore_splices, elapsed,
        )
        return TourSet(self.graph, tours, elapsed)

    # -- phases of Fig. 3.3 -------------------------------------------------------

    def _traverse_dfs(
        self,
        state: int,
        tour: Tour,
        traversed: List[bool],
        cursors: List[int],
        untraversed_out: List[int],
        adjacency: Sequence[Sequence[tuple]],
    ) -> int:
        """Greedy depth-first phase: follow untraversed arcs until stuck.

        States can be visited multiple times as long as an untraversed arc
        leaves them; a vector is generated for every arc taken.
        """
        while untraversed_out[state]:
            out = adjacency[state]
            cursor = cursors[state]
            while cursor < len(out) and traversed[out[cursor][0]]:
                cursor += 1
            cursors[state] = cursor
            if cursor >= len(out):
                break  # stale counter; nothing actually untraversed here
            index, dst = out[cursor]
            self._take(index, tour, traversed, untraversed_out)
            state = dst
            # Limit check comes *after* taking an arc: every DFS round makes
            # at least one arc of progress, so a long explore path can never
            # starve the trace into repeating itself forever.
            if self.max_instructions is not None and tour.instructions >= self.max_instructions:
                break
        return state

    def _explore_bfs(
        self,
        state: int,
        untraversed_out: List[int],
        adjacency: Sequence[Sequence[tuple]],
    ) -> Optional[List[int]]:
        """Explore phase: shortest path (over *all* arcs) from ``state`` to
        any state with an untraversed out-arc, or ``None`` if unreachable.

        The path's arcs are appended to the tour even though they are
        already traversed -- re-traversal is cheap, backtracking is not.
        """
        if untraversed_out[state]:
            return []
        parent_edge: dict = {state: None}
        queue = deque([state])
        while queue:
            current = queue.popleft()
            for index, dst in adjacency[current]:
                if dst in parent_edge:
                    continue
                parent_edge[dst] = index
                if untraversed_out[dst]:
                    return self._reconstruct(parent_edge, dst)
                queue.append(dst)
        return None

    def _reconstruct(self, parent_edge: dict, target: int) -> List[int]:
        path: List[int] = []
        node = target
        while parent_edge[node] is not None:
            index = parent_edge[node]
            path.append(index)
            node = self.graph.edge(index).src
        path.reverse()
        return path

    def _take(
        self,
        index: int,
        tour: Tour,
        traversed: List[bool],
        untraversed_out: List[int],
    ) -> None:
        edge = self.graph.edge(index)
        tour.edge_indices.append(index)
        tour.instructions += self.instruction_cost(edge)
        if not traversed[index]:
            traversed[index] = True
            untraversed_out[edge.src] -= 1
            self._remaining -= 1
