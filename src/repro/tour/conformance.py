"""Protocol-conformance test generation: the related-work baseline.

Section 5 of the paper contrasts its method with protocol conformance
testing [ADL+91]: both derive covering test sequences from FSMs, but in
conformance testing only the *specification* is observable -- tests are a
transition tour of the spec with per-state verification via UIO (Unique
Input/Output) sequences.  The structural weakness the paper points out:
extra behaviours present only in the implementation can never be
exercised, because the generator never saw them.

This module implements the classical recipe (reset-based transition tour
+ UIO state checks) over our state graphs, so the comparison is runnable:
see ``tests/test_conformance.py`` and the Fig. 4.1 benchmark.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.enumeration.graph import StateGraph
from repro.smurphi.model import SyncModel
from repro.smurphi.state import StateCodec

#: Maps a model state dict to its observable output.
OutputFn = Callable[[dict], object]


def _default_output(state: dict) -> object:
    return tuple(sorted(state.items()))


class _Machine:
    """Convenience wrapper: step a SyncModel by choice dicts."""

    def __init__(self, model: SyncModel, output_fn: Optional[OutputFn] = None):
        self.model = model
        self.codec = StateCodec(model.state_vars)
        self.output_fn = output_fn or _default_output

    def run(self, inputs: Sequence[dict]) -> List[object]:
        """Outputs observed after each input, starting from reset."""
        state = self.model.reset_state()
        outputs = []
        for choice in inputs:
            state = self.model.step(state, choice)
            outputs.append(self.output_fn(state))
        return outputs


def uio_sequences(
    model: SyncModel,
    graph: StateGraph,
    output_fn: Optional[OutputFn] = None,
    max_length: int = 6,
) -> Dict[int, List[dict]]:
    """A UIO sequence per state: an input sequence whose output trace is
    unique to that state among all states of the graph.

    Breadth-first over input sequences; states with no UIO within
    ``max_length`` map to ``None`` (classical UIO existence is not
    guaranteed).
    """
    codec = StateCodec(model.state_vars)
    output = output_fn or _default_output
    states = [codec.unpack(graph.state_key(i)) for i in range(graph.num_states)]
    all_choices = _representative_choices(model, states)

    found: Dict[int, Optional[List[dict]]] = {}
    for target in range(graph.num_states):
        found[target] = _find_uio(
            model, states, target, all_choices, output, max_length
        )
    return found


def _representative_choices(model: SyncModel, states: List[dict]) -> List[dict]:
    """The union of choice combinations active in any state (inputs a
    conformance tester is allowed to apply)."""
    seen = set()
    combos: List[dict] = []
    for state in states:
        for choice in model.enumerate_choices(state):
            key = tuple(sorted(choice.items()))
            if key not in seen:
                seen.add(key)
                combos.append(choice)
    return combos


def _find_uio(model, states, target, all_choices, output, max_length):
    """BFS for an input sequence separating ``target`` from every other
    state by its output trace."""
    # Each frontier entry: (inputs_so_far, current state per original id,
    # surviving candidate ids whose trace matched target's so far).
    initial_candidates = list(range(len(states)))
    frontier = deque([([], {i: states[i] for i in initial_candidates},
                      initial_candidates)])
    while frontier:
        inputs, positions, candidates = frontier.popleft()
        if len(inputs) >= max_length:
            continue
        for choice in all_choices:
            next_positions = {}
            traces = {}
            usable = True
            for sid in candidates:
                try:
                    nxt = model.step(positions[sid], choice)
                except Exception:
                    usable = False
                    break
                next_positions[sid] = nxt
                traces[sid] = output(nxt)
            if not usable:
                continue
            target_trace = traces[target]
            survivors = [s for s in candidates if traces[s] == target_trace]
            new_inputs = inputs + [choice]
            if survivors == [target]:
                return new_inputs
            if len(survivors) < len(candidates):
                frontier.append(
                    (new_inputs, {s: next_positions[s] for s in survivors},
                     survivors)
                )
    return None


@dataclass
class ConformanceTest:
    """One conformance test: inputs from reset + the expected output trace."""

    arc_index: int
    inputs: List[dict]
    expected_outputs: List[object]


@dataclass
class ConformanceSuite:
    """A spec-derived conformance test suite."""

    tests: List[ConformanceTest] = field(default_factory=list)
    states_without_uio: int = 0

    @property
    def total_inputs(self) -> int:
        return sum(len(t.inputs) for t in self.tests)


def conformance_suite(
    spec: SyncModel,
    graph: StateGraph,
    output_fn: Optional[OutputFn] = None,
    max_uio_length: int = 6,
) -> ConformanceSuite:
    """The classical recipe: for every arc of the *specification* graph,
    a reset-based test: shortest input path to the arc's source, the
    arc's input, then the destination's UIO sequence."""
    machine = _Machine(spec, output_fn)
    uio = uio_sequences(spec, graph, output_fn, max_uio_length)
    paths = _shortest_input_paths(spec, graph)
    suite = ConformanceSuite(
        states_without_uio=sum(1 for v in uio.values() if v is None)
    )
    for index, edge in enumerate(graph.edges()):
        prefix = paths.get(edge.src)
        if prefix is None:
            continue
        arc_input = dict(zip(spec.choice_names, edge.condition))
        check = uio.get(edge.dst) or []
        inputs = prefix + [arc_input] + check
        suite.tests.append(
            ConformanceTest(
                arc_index=index,
                inputs=inputs,
                expected_outputs=machine.run(inputs),
            )
        )
    return suite


def _shortest_input_paths(model: SyncModel, graph: StateGraph) -> Dict[int, List[dict]]:
    """Shortest input sequence from reset to each state, over graph arcs."""
    paths: Dict[int, List[dict]] = {StateGraph.RESET: []}
    queue = deque([StateGraph.RESET])
    while queue:
        current = queue.popleft()
        for edge in graph.out_edges(current):
            if edge.dst not in paths:
                paths[edge.dst] = paths[current] + [
                    dict(zip(model.choice_names, edge.condition))
                ]
                queue.append(edge.dst)
    return paths


@dataclass
class ConformanceVerdict:
    tests_run: int
    failures: List[int]  # arc indices whose output traces mismatched

    @property
    def passed(self) -> bool:
        return not self.failures


def run_conformance(
    implementation: SyncModel,
    suite: ConformanceSuite,
    output_fn: Optional[OutputFn] = None,
) -> ConformanceVerdict:
    """Execute a spec-derived suite against an implementation machine."""
    machine = _Machine(implementation, output_fn)
    failures = []
    for test in suite.tests:
        if machine.run(test.inputs) != test.expected_outputs:
            failures.append(test.arc_index)
    return ConformanceVerdict(tests_run=len(suite.tests), failures=failures)
