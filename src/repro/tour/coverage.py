"""Arc-coverage accounting for tour sets and arbitrary walks.

The whole point of the methodology is the coverage guarantee: the union of
all tour components traverses every control transition arc at least once.
This module verifies that claim for any collection of walks and reports
per-arc traversal counts (useful for spotting hot arcs that dominate
simulation time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.enumeration.graph import StateGraph
from repro.tour.fig33 import Tour


@dataclass(frozen=True)
class CoverageReport:
    """Coverage of a set of walks over a state graph."""

    graph_edges: int
    covered_edges: int
    total_traversals: int
    max_traversals_of_one_arc: int
    uncovered_edge_indices: tuple

    @property
    def complete(self) -> bool:
        return self.covered_edges == self.graph_edges

    @property
    def coverage_fraction(self) -> float:
        if not self.graph_edges:
            return 1.0
        return self.covered_edges / self.graph_edges

    @property
    def redundancy(self) -> float:
        """Traversals per covered arc; 1.0 would be an exact Euler tour."""
        if not self.covered_edges:
            return 0.0
        return self.total_traversals / self.covered_edges


def arc_coverage(graph: StateGraph, walks: Iterable[Sequence[int]]) -> CoverageReport:
    """Compute coverage of ``walks`` (sequences of edge indices) over ``graph``.

    Also validates that each walk is a genuine path: consecutive arcs must
    chain dst -> src, catching malformed tours before they reach the
    simulator.
    """
    counts = [0] * graph.num_edges
    total = 0
    for walk in walks:
        previous_dst = None
        for index in walk:
            edge = graph.edge(index)
            if previous_dst is not None and edge.src != previous_dst:
                raise ValueError(
                    f"walk is not a path: arc {index} starts at {edge.src}, "
                    f"previous arc ended at {previous_dst}"
                )
            previous_dst = edge.dst
            counts[index] += 1
            total += 1
    uncovered = tuple(i for i, c in enumerate(counts) if c == 0)
    return CoverageReport(
        graph_edges=graph.num_edges,
        covered_edges=graph.num_edges - len(uncovered),
        total_traversals=total,
        max_traversals_of_one_arc=max(counts, default=0),
        uncovered_edge_indices=uncovered,
    )


@dataclass(frozen=True)
class CoveragePoint:
    """One point of the Fig 4.1-style coverage curve: cumulative coverage
    after simulating everything up to and including one trace."""

    trace_index: int
    cumulative_instructions: int
    cumulative_covered_edges: int
    coverage_fraction: float


def coverage_curve(graph: StateGraph, tours: Iterable[Tour]) -> List[CoveragePoint]:
    """Cumulative arcs-covered vs instructions-simulated, per trace.

    This is the data behind the paper's Fig 4.1/4.2 coverage-vs-test-length
    curves: traces are consumed in generation order, and each point gives
    the unique arcs covered so far against the instruction budget spent.
    """
    covered: set = set()
    instructions = 0
    points: List[CoveragePoint] = []
    for index, tour in enumerate(tours):
        covered.update(tour.edge_indices)
        instructions += tour.instructions
        points.append(CoveragePoint(
            trace_index=index,
            cumulative_instructions=instructions,
            cumulative_covered_edges=len(covered),
            coverage_fraction=(
                len(covered) / graph.num_edges if graph.num_edges else 1.0
            ),
        ))
    return points
