"""Chinese Postman / Euler tours: the optimal-traversal baseline.

The general problem of covering every arc of a (non-symmetric) strongly
connected directed graph with a minimum-length closed walk is the directed
Chinese Postman Problem [EJ72], solvable in polynomial time via min-cost
flow: arcs are duplicated to balance each vertex's in/out degree at minimum
total shortest-path cost, after which the multigraph is Eulerian and an
Euler tour covers every arc exactly once (duplicates excepted).

The paper deliberately does *not* use a single optimal tour (section 3.3):
tours must restart from reset for concurrency and debug-time reasons.  This
module provides the optimum as a lower bound so the benchmark suite can
quantify the overhead of the greedy Fig. 3.3 generator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.enumeration.graph import StateGraph


class PostmanError(Exception):
    """Raised when the graph does not admit the requested tour."""


def _to_multidigraph(graph: StateGraph) -> nx.MultiDiGraph:
    g = nx.MultiDiGraph()
    g.add_nodes_from(range(graph.num_states))
    for index, edge in enumerate(graph.edges()):
        g.add_edge(edge.src, edge.dst, index=index)
    return g


def is_eulerian(graph: StateGraph) -> bool:
    """True when every vertex has in-degree == out-degree and the graph is
    connected on its non-isolated vertices (a closed Euler tour exists)."""
    g = _to_multidigraph(graph)
    active = [n for n in g.nodes if g.in_degree(n) + g.out_degree(n) > 0]
    if not active:
        return True
    sub = g.subgraph(active)
    return nx.is_eulerian(sub)


def euler_tour(graph: StateGraph, start: int = StateGraph.RESET) -> List[int]:
    """Closed Euler tour as a list of edge indices, traversing each arc
    exactly once.  Raises :class:`PostmanError` if the graph is not Eulerian.
    """
    g = _to_multidigraph(graph)
    active = [n for n in g.nodes if g.in_degree(n) + g.out_degree(n) > 0]
    sub = g.subgraph(active).copy()
    if not active:
        return []
    if not nx.is_eulerian(sub):
        raise PostmanError("graph is not Eulerian; use chinese_postman_tour")
    circuit = nx.eulerian_circuit(sub, source=start, keys=True)
    return [sub.edges[u, v, k]["index"] for u, v, k in circuit]


def _imbalances(graph: StateGraph) -> Dict[int, int]:
    """out-degree minus in-degree per vertex."""
    delta = {n: 0 for n in range(graph.num_states)}
    for edge in graph.edges():
        delta[edge.src] += 1
        delta[edge.dst] -= 1
    return delta


def postman_lower_bound(graph: StateGraph) -> int:
    """Minimum number of arc traversals of any closed covering walk.

    Equal to ``num_edges`` plus the min-cost degree-balancing duplications.
    Requires strong connectivity over the arc-active vertices.
    """
    _, extra = _balancing_duplications(graph)
    return graph.num_edges + extra


def _balancing_duplications(graph: StateGraph) -> Tuple[Dict[Tuple[int, int], int], int]:
    """Solve the min-cost flow that balances vertex degrees.

    Returns a map from (src, dst) *graph-arc* endpoints to the number of
    extra traversals assigned along the shortest path between them, plus
    the total number of duplicated traversals.
    """
    g = _to_multidigraph(graph)
    active = [n for n in g.nodes if g.in_degree(n) + g.out_degree(n) > 0]
    if not active:
        return {}, 0
    sub = g.subgraph(active)
    if not nx.is_strongly_connected(nx.DiGraph(sub)):
        raise PostmanError(
            "directed Chinese Postman requires a strongly connected graph"
        )
    delta = _imbalances(graph)
    surplus = [n for n in active if delta[n] > 0]   # need extra in-arcs? no:
    deficit = [n for n in active if delta[n] < 0]
    if not surplus and not deficit:
        return {}, 0

    # Min-cost flow: route delta>0 units from surplus-out vertices to
    # deficit vertices along graph arcs; each unit of flow on an arc is one
    # extra traversal of that arc.
    flow_graph = nx.DiGraph()
    for n in active:
        flow_graph.add_node(n, demand=delta[n])
    for u, v, _ in sub.edges(keys=True):
        if not flow_graph.has_edge(u, v):
            flow_graph.add_edge(u, v, weight=1)
    try:
        flow = nx.min_cost_flow(flow_graph)
    except nx.NetworkXUnfeasible as exc:  # pragma: no cover - guarded above
        raise PostmanError("degree balancing infeasible") from exc
    duplications: Dict[Tuple[int, int], int] = {}
    total = 0
    for u, targets in flow.items():
        for v, amount in targets.items():
            if amount:
                duplications[(u, v)] = duplications.get((u, v), 0) + amount
                total += amount
    return duplications, total


def chinese_postman_tour(graph: StateGraph, start: int = StateGraph.RESET) -> List[int]:
    """Optimal closed covering walk (directed CPP) as edge indices.

    Duplicated traversals reuse an arbitrary parallel arc between the same
    endpoints (any is equivalent for coverage purposes).
    """
    duplications, _ = _balancing_duplications(graph)
    g = _to_multidigraph(graph)
    # Add duplicate arcs carrying the same original edge index.
    arc_by_endpoints: Dict[Tuple[int, int], int] = {}
    for index, edge in enumerate(graph.edges()):
        arc_by_endpoints.setdefault((edge.src, edge.dst), index)
    for (u, v), amount in duplications.items():
        index = arc_by_endpoints.get((u, v))
        if index is None:  # pragma: no cover - flow uses only existing arcs
            raise PostmanError(f"flow used nonexistent arc {u}->{v}")
        for _ in range(amount):
            g.add_edge(u, v, index=index)
    active = [n for n in g.nodes if g.in_degree(n) + g.out_degree(n) > 0]
    if not active:
        return []
    sub = g.subgraph(active).copy()
    if not nx.is_eulerian(sub):
        raise PostmanError("balanced graph unexpectedly not Eulerian")
    if start not in sub:
        start = active[0]
    circuit = nx.eulerian_circuit(sub, source=start, keys=True)
    return [sub.edges[u, v, k]["index"] for u, v, k in circuit]
