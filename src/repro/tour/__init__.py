"""Transition-tour generation over the enumerated state graph (section 3.3).

The primary algorithm is the paper's Fig. 3.3 greedy generator: depth-first
traversal of untraversed arcs, a breadth-first *explore* phase that splices
in shortest paths to remaining untraversed arcs (re-traversing arcs is cheap
in simulation, backtracking is not), restarts from reset, and an optional
per-trace instruction limit.  A classical Chinese-Postman/Euler-tour solver
is included as the optimal-length baseline for the ablation benchmarks.
"""

from repro.tour.fig33 import TourGenerator, Tour, TourSet, TourStats
from repro.tour.indexed import IndexedTourGenerator
from repro.tour.coverage import (
    arc_coverage,
    coverage_curve,
    CoveragePoint,
    CoverageReport,
)
from repro.tour.postman import (
    chinese_postman_tour,
    euler_tour,
    is_eulerian,
    postman_lower_bound,
    PostmanError,
)
from repro.tour.conformance import (
    conformance_suite,
    run_conformance,
    uio_sequences,
    ConformanceSuite,
    ConformanceVerdict,
)

__all__ = [
    "conformance_suite",
    "run_conformance",
    "uio_sequences",
    "ConformanceSuite",
    "ConformanceVerdict",
    "IndexedTourGenerator",
    "TourGenerator",
    "Tour",
    "TourSet",
    "TourStats",
    "arc_coverage",
    "coverage_curve",
    "CoveragePoint",
    "CoverageReport",
    "chinese_postman_tour",
    "euler_tour",
    "is_eulerian",
    "postman_lower_bound",
    "PostmanError",
]
