"""Classify the difference between two model fingerprints.

The classifier is the safety gate of the incremental layer: artifacts are
only reused along paths it explicitly blesses, and every "don't know"
collapses to ``structural`` -- a full rebuild, which is always correct.

Taxonomy
--------
``no-op``
    The fingerprints are completely equal: same core (name, state vars,
    choices, invariants, base step) and same rule stack.  Every cached
    phase can be adopted wholesale.
``localized``
    Same core, and the old rule stack is an *ordered subsequence* of the
    new one -- the edit only appended/inserted rules.  Because rewrites
    compose in order and each added rule declares a scope, the states
    whose outgoing transitions can differ are exactly those where some
    added rule's scope holds (the dirty region); everything else replays
    from cache.  Removals, reorders and in-place rule changes do *not*
    qualify: a removed rewrite's effects are already baked into cached
    artifacts and cannot be un-spliced cheaply, so they classify as
    structural.
``structural``
    Anything else -- including either fingerprint being unstable
    (``stable=False`` means the canonicalizer met something it could not
    digest, so equality is unknowable).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

from repro.smurphi.fingerprint import ModelFingerprint

NO_OP = "no-op"
LOCALIZED = "localized"
STRUCTURAL = "structural"


@dataclasses.dataclass(frozen=True)
class ModelDiff:
    """Outcome of :func:`diff_models`.

    ``added_rules`` holds the semantic digests of the rules present in the
    new model but not the old one (order preserved) -- only meaningful for
    ``localized``.
    """

    classification: str
    added_rules: Tuple[str, ...] = ()
    reason: str = ""


def _is_subsequence(old: Tuple[str, ...], new: Tuple[str, ...]) -> Tuple[bool, Tuple[str, ...]]:
    """Greedy subsequence match on rule digests; returns (ok, added)."""
    added = []
    pos = 0
    for want in old:
        while pos < len(new) and new[pos] != want:
            added.append(new[pos])
            pos += 1
        if pos == len(new):
            return False, ()
        pos += 1
    added.extend(new[pos:])
    return True, tuple(added)


def diff_models(old: ModelFingerprint, new: ModelFingerprint) -> ModelDiff:
    """Classify the edit taking ``old`` to ``new`` (see module docstring)."""
    if not old.stable or not new.stable:
        return ModelDiff(
            STRUCTURAL,
            reason="unstable fingerprint: canonicalization failed somewhere, "
            "equality is unknowable",
        )
    if old == new:
        return ModelDiff(NO_OP, reason="fingerprints identical")
    if old.core() != new.core():
        return ModelDiff(
            STRUCTURAL,
            reason="model core changed (state vars, choices, invariants, "
            "base step or name)",
        )
    old_rules = tuple(digest for _, digest in old.rules)
    new_rules = tuple(digest for _, digest in new.rules)
    ok, added = _is_subsequence(old_rules, new_rules)
    if not ok or not added:
        return ModelDiff(
            STRUCTURAL,
            reason="rule stack changed by removal, reorder or in-place "
            "rewrite; cached effects cannot be un-spliced",
        )
    return ModelDiff(
        LOCALIZED,
        added_rules=added,
        reason=f"{len(added)} rule(s) inserted into an unchanged core",
    )
