"""Region re-enumeration: replay the cached graph, expand only the dirty.

:func:`incremental_enumerate` walks the exact BFS schedule of a cold
:func:`~repro.enumeration.bfs.enumerate_states` run -- same FIFO frontier,
same id assignment, same arc dedup -- but with one shortcut: when the
state being popped exists in the cached graph and the diff proved it
*clean* (no added rule's scope covers it), its cached out-edge list is
**replayed** instead of calling the transition kernel.

Why replaying is sound (the graft argument, DESIGN.md §14): the recorded
out-edges of a state are a function of that state's expansion alone --
they are the deduped ``(condition, dst)`` pairs in first-occurrence order.
For a clean state the edited model's expansion is identical to the cached
model's by the definition of the dirty region, so the cached edge list
*is* the expansion result.  Replaying it interns the same dst keys in the
same order, appends the same new states to the frontier, and records the
same arcs -- by induction over BFS steps the whole run is byte-identical
to cold.  Dirty states (and states absent from the cache) go through the
kernel exactly as a cold run would.

Invariants are only re-checked on states *absent* from the cached graph:
cached states were validated when first enumerated, and a localized diff
guarantees the invariants themselves are unchanged.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.enumeration.bfs import InvariantViolation, _approx_memory
from repro.enumeration.graph import StateGraph
from repro.enumeration.kernel import KernelSpec, resolve_kernel
from repro.enumeration.stats import EnumerationStats
from repro.obs.observer import Observer, resolve
from repro.smurphi.model import SyncModel


def incremental_enumerate(
    model: SyncModel,
    old_graph: StateGraph,
    dirty_old: List[bool],
    record_all_conditions: bool = False,
    kernel: KernelSpec = "compiled",
    obs: Optional[Observer] = None,
) -> Tuple[StateGraph, EnumerationStats, Dict[str, int]]:
    """Enumerate ``model`` reusing ``old_graph`` for clean states.

    ``dirty_old[i]`` marks old-graph state ``i`` as inside the dirty
    region (must be expanded through the kernel).  Returns the new graph,
    cold-compatible stats, and ``{"replayed", "expanded", "region_states"}``
    counters.  The result is byte-identical to a cold enumeration of
    ``model`` (see module docstring).
    """
    obs = resolve(obs)
    kern = resolve_kernel(model, kernel)
    started = time.perf_counter()

    graph = StateGraph(model.choice_names)
    reset = model.reset_state()
    model.validate_state(reset)
    reset_id, _ = graph.intern_state(kern.reset_key())
    assert reset_id == StateGraph.RESET
    violated = model.check_invariants(reset)
    if violated:
        raise InvariantViolation(reset_id, dict(reset), tuple(violated))

    seen_arcs: Set[Tuple] = set()
    transitions_explored = 0
    frontier = deque([reset_id])
    waves = 1
    wave_last = reset_id
    replayed = 0
    expanded = 0

    while frontier:
        if frontier[0] > wave_last:
            waves += 1
            wave_last = graph.num_states - 1
            obs.heartbeat(
                "incremental", wave=waves - 1, states=graph.num_states,
                replayed=replayed, expanded=expanded,
            )
        src_id = frontier.popleft()
        key = graph.state_key(src_id)
        old_id = old_graph.state_id_of_key(key)
        if old_id is not None and not dirty_old[old_id]:
            # Replay: the cached out-edge list is this state's expansion.
            replayed += 1
            for edge in old_graph.out_edges(old_id):
                dst_key = old_graph.state_key(edge.dst)
                dst_id, is_new = graph.intern_state(dst_key)
                if is_new:
                    frontier.append(dst_id)
                arc_key: Tuple
                if record_all_conditions:
                    arc_key = (src_id, dst_id, edge.condition)
                else:
                    arc_key = (src_id, dst_id)
                if arc_key not in seen_arcs:
                    seen_arcs.add(arc_key)
                    graph.add_edge(src_id, dst_id, edge.condition)
            continue
        # Expand: dirty or previously unreachable -- exactly the cold path.
        expanded += 1
        for condition, packed_dst in kern.expand(key):
            transitions_explored += 1
            dst_id, is_new = graph.intern_state(packed_dst)
            if is_new:
                if old_graph.state_id_of_key(packed_dst) is None:
                    nxt = kern.unpack(packed_dst)
                    violated = model.check_invariants(nxt)
                    if violated:
                        raise InvariantViolation(dst_id, nxt, tuple(violated))
                frontier.append(dst_id)
            if record_all_conditions:
                arc_key = (src_id, dst_id, condition)
            else:
                arc_key = (src_id, dst_id)
            if arc_key not in seen_arcs:
                seen_arcs.add(arc_key)
                graph.add_edge(src_id, dst_id, condition)

    elapsed = time.perf_counter() - started
    counts = {
        "replayed": replayed,
        "expanded": expanded,
        "region_states": expanded,
    }
    obs.inc("incremental.region_states", expanded)
    obs.inc("incremental.replayed_states", replayed)
    obs.heartbeat(
        "incremental", wave=waves - 1, states=graph.num_states,
        replayed=replayed, expanded=expanded,
    )
    stats = EnumerationStats(
        model_name=model.name,
        num_states=graph.num_states,
        bits_per_state=model.state_bits(),
        num_edges=graph.num_edges,
        transitions_explored=transitions_explored,
        elapsed_seconds=elapsed,
        approx_memory_bytes=_approx_memory(graph, model.state_bits()),
    )
    return graph, stats, counts
