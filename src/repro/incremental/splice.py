"""Tour/trace splicing: reuse cached downstream artifacts outside the
dirty region.

After a localized re-enumeration, most of the graph -- and therefore most
tours and vector traces -- is untouched.  This module decides, edge by
edge and tour by tour, what can be kept:

- a **memo entry** ``(src_state, condition) -> transition outcome`` is
  valid for the new model iff the source state is clean (no added rule's
  scope covers it);
- a cached **tour set** is reusable wholesale iff the new graph is
  content-equal to the cached one *and* every edge's instruction cost is
  unchanged (tour generation is a deterministic function of graph + costs
  + the split limit);
- a cached **trace** is reusable iff its tour is unchanged and every edge
  it traverses leaves a clean state (each trace owns an independent
  ``random.Random(f"{seed}:{index}")``, so per-index reuse never perturbs
  a regenerated neighbour's randomness).

Everything here is pure bookkeeping over primitives, so the memo sidecar
(``export_memo``) pickles small and transplants across graphs via packed
state keys.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.enumeration.graph import StateGraph
from repro.smurphi.model import SyncModel
from repro.smurphi.state import StateCodec
from repro.tour.fig33 import Tour
from repro.vectors.generator import (
    TestVectorTrace,
    TransitionEventMemo,
    VectorGenerator,
)


def graphs_equal(a: StateGraph, b: StateGraph) -> bool:
    """Content equality: same choices, same interned keys, same edges."""
    return (
        a.choice_names == b.choice_names
        and a._state_keys == b._state_keys
        and a._edges == b._edges
    )


def dirty_flags(
    model: SyncModel,
    graph: StateGraph,
    scopes: Sequence[Callable[[Mapping], bool]],
) -> List[bool]:
    """``flags[i]``: some added rule's scope covers graph state ``i``."""
    codec = StateCodec(model.state_vars)
    flags = []
    for state_id in range(graph.num_states):
        state = codec.unpack(graph.state_key(state_id))
        flags.append(any(scope(state) for scope in scopes))
    return flags


def clean_flags_for(
    new_graph: StateGraph, old_graph: StateGraph, dirty_old: Sequence[bool]
) -> List[bool]:
    """Per-new-graph-state cleanliness, mapped through packed keys.

    A new state is clean iff it existed in the cached graph and was
    outside the dirty region; genuinely new states are never clean.
    """
    flags = []
    for state_id in range(new_graph.num_states):
        old_id = old_graph.state_id_of_key(new_graph.state_key(state_id))
        flags.append(old_id is not None and not dirty_old[old_id])
    return flags


# -- memo sidecar --------------------------------------------------------------


def export_memo(
    memo: TransitionEventMemo, graph: StateGraph
) -> List[Tuple[int, Tuple, Tuple]]:
    """Flatten a memo to ``(packed_src_key, condition, entry)`` rows.

    Packed keys (not graph ids) make the export graph-independent: a
    later build interns its own ids and imports whatever keys it knows.
    """
    return [
        (graph.state_key(src), condition, entry)
        for (src, condition), entry in memo._entries.items()
    ]


def import_memo(
    memo: TransitionEventMemo,
    graph: StateGraph,
    rows: Sequence[Tuple[int, Tuple, Tuple]],
    clean: Optional[Sequence[bool]] = None,
) -> int:
    """Transplant exported rows whose source state exists (and is clean).

    ``clean=None`` trusts every row (key-chain-equal builds: same model,
    same graph); otherwise only rows landing on a clean state import --
    a dirty state's cached outcome was computed under the old model and
    must be recomputed.  Returns the number of rows imported.
    """
    imported = 0
    for packed_key, condition, entry in rows:
        state_id = graph.state_id_of_key(packed_key)
        if state_id is None:
            continue
        if clean is not None and not clean[state_id]:
            continue
        memo._entries[(state_id, tuple(condition))] = tuple(entry)
        imported += 1
    return imported


def edge_costs(memo: TransitionEventMemo, graph: StateGraph) -> List[int]:
    """Per-edge instruction costs via the memo (warm entries are free)."""
    return [memo.lookup_edge(i)[3] for i in range(graph.num_edges)]


# -- trace splicing ------------------------------------------------------------


def tour_clean_flags(
    graph: StateGraph, tours: Sequence[Tour], state_clean: Sequence[bool]
) -> List[bool]:
    """``flags[i]``: tour ``i`` never leaves a dirty state."""
    flags = []
    for tour in tours:
        flags.append(
            all(state_clean[graph.edge(ei).src] for ei in tour.edge_indices)
        )
    return flags


def splice_traces(
    generator: VectorGenerator,
    tours: Sequence[Tour],
    old_traces: Sequence[TestVectorTrace],
    tour_clean: Sequence[bool],
) -> Tuple[List[TestVectorTrace], int, int]:
    """Keep clean tours' cached traces; regenerate the rest.

    Requires ``tours`` to be the *same sequence* the cached traces were
    generated from (the caller only gets here after adopting the cached
    tour set wholesale).  Returns ``(traces, reused, regenerated)``.
    """
    traces: List[TestVectorTrace] = []
    reused = 0
    regenerated = 0
    for index, tour in enumerate(tours):
        if tour_clean[index]:
            traces.append(old_traces[index])
            reused += 1
        else:
            rng = random.Random(f"{generator.seed}:{index}")
            traces.append(generator._trace_from_tour(tour, rng))
            regenerated += 1
    return traces, reused, regenerated
