"""Declarative model edits: scoped rewrites over the PP control model.

A :class:`ModelEdit` is the unit of change the incremental layer reasons
about: a *scope* predicate naming the states it touches, plus a *rewrite*
applied to the base transition's output inside that scope.  Because the
scope is explicit, the diff classifier can mark exactly the states whose
outgoing transitions may differ (the "dirty region") and replay everything
else from the cached graph.

:class:`EditedPPControl` layers an ordered list of edits onto a PP control
model; its :meth:`~EditedPPControl.build` result carries the edits as
``SyncModel.rules`` metadata so fingerprinting and diffing see them.

:data:`EDIT_CATALOG` holds named, semantically pinned edits used by the
serve API (jobs name edits, never ship code), the incremental benchmark,
and the property tests.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

from repro.smurphi.fingerprint import canonical_digest
from repro.smurphi.model import SyncModel

#: ``(state, choice, next_state, events) -> (next_state, events)``
Rewrite = Callable[[Mapping, Mapping, Dict, List[Tuple]], Tuple[Dict, List[Tuple]]]


@dataclasses.dataclass(frozen=True)
class ModelEdit:
    """One scoped rewrite of the control model's transition function.

    ``scope`` decides, from the *source* state alone, whether the rewrite
    may fire -- this is what lets the diff bound the dirty region without
    executing anything.  ``rewrite`` maps the base transition's
    ``(next_state, events)`` to the edited pair; it must return
    domain-valid values (``SyncModel.step`` re-validates every assignment,
    so a violation fails fast rather than corrupting artifacts).
    """

    name: str
    scope: Callable[[Mapping], bool]
    rewrite: Rewrite
    description: str = ""

    def digest(self) -> str:
        """Semantic digest: canonical bytecode of scope + rewrite.

        Keyed into the model phase's cache key, so editing a rewrite's
        *behaviour* re-keys every downstream artifact even though the
        catalog name is unchanged.
        """
        return canonical_digest((self.name, self.scope, self.rewrite))


class EditedPPControl:
    """A PP control model with an ordered stack of :class:`ModelEdit`\\ s.

    Exposes the same surface the pipeline and vector generator use on the
    base control model (``config``, ``state_vars``, ``choices``,
    ``choice_names``, ``step``/``transition_events``/``_step``, ``build``).
    Rewrites compose in declaration order, each seeing the previous one's
    output.
    """

    def __init__(self, base, edits: Sequence[ModelEdit]):
        self.base = base
        self.edits = tuple(edits)
        self.config = base.config
        self.state_vars = base.state_vars
        self.choices = base.choices
        self.choice_names = base.choice_names

    def _step(self, state: Mapping, c: Mapping) -> Tuple[Dict, List[Tuple]]:
        ns, events = self.base._step(state, c)
        for edit in self.edits:
            if edit.scope(state):
                ns, events = edit.rewrite(state, c, ns, events)
        return ns, events

    def step(self, state: Mapping, choice: Mapping) -> Dict:
        ns, _ = self._step(state, choice)
        return ns

    def transition_events(self, state: Mapping, choice: Mapping) -> List[Tuple]:
        _, events = self._step(state, choice)
        return events

    def build(self) -> SyncModel:
        base_model = self.base.build()
        return SyncModel(
            name=base_model.name,
            state_vars=base_model.state_vars,
            choices=base_model.choices,
            next_state=self.step,
            invariants=base_model.invariants,
            rules=self.edits,
            base_step=self.base.step,
        )


def _identity_rewrite(state, choice, ns, events):
    return ns, events


def _flip_inbox_during_refill(state, choice, ns, events):
    # Events-only rewrite: invert the Inbox's answer while the I-refill is
    # streaming.  Next states are untouched, so the state graph is
    # byte-identical and only traces through the scope need regenerating.
    out = []
    for event in events:
        if event[0] == "inbox_query":
            out.append(("inbox_query", not event[1]))
        else:
            out.append(event)
    return ns, out


def _send_clears_st_pend(state, choice, ns, events):
    # Next-state rewrite: a SEND in MEM retires the pending store's
    # comparator early.  Changes reachable successors inside the scope, so
    # the incremental path must re-enumerate and graft the region.
    ns = dict(ns)
    ns["st_pend"] = False
    return ns, events


EDIT_CATALOG: Dict[str, ModelEdit] = {
    edit.name: edit
    for edit in (
        ModelEdit(
            name="noop-touch",
            scope=lambda s: False,
            rewrite=_identity_rewrite,
            description="Scope-empty identity rewrite: dirties nothing; "
            "exercises the localized path with a zero-state region.",
        ),
        ModelEdit(
            name="inbox-flip-fill-tail",
            scope=lambda s: (
                s["mem"] == "SWITCH"
                and s["irefill"] == "FILL"
                and s["st_pend"]
                and s["ifill_cnt"] == 1
                and s["ex"] == "SEND"
            ),
            rewrite=_flip_inbox_during_refill,
            description="Single-condition change: flip the Inbox answer in "
            "exactly one control state (refill tail, SEND in EX, store "
            "pending) -- the smallest localized edit, most tours splice.",
        ),
        ModelEdit(
            name="inbox-flip-refill",
            scope=lambda s: s["mem"] == "SWITCH" and s["irefill"] == "FILL",
            rewrite=_flip_inbox_during_refill,
            description="Flip inbox_query events while the I-refill "
            "streams: events-only, graph unchanged, localized trace splice.",
        ),
        ModelEdit(
            name="send-clears-stpend",
            scope=lambda s: s["mem"] == "SEND" and s["st_pend"],
            rewrite=_send_clears_st_pend,
            description="SEND in MEM clears st_pend: next-state change, "
            "region re-enumeration and graft.",
        ),
    )
}


def resolve_edits(names: Sequence[str]) -> Tuple[ModelEdit, ...]:
    """Map catalog names (order-preserving) to edits; unknown names raise."""
    edits = []
    for name in names:
        if name not in EDIT_CATALOG:
            raise KeyError(
                f"unknown model edit {name!r}; catalog has "
                f"{sorted(EDIT_CATALOG)}"
            )
        edits.append(EDIT_CATALOG[name])
    return tuple(edits)
