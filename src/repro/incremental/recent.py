"""Journal of recent successful builds, per cache directory.

Per-phase cache keys are content addresses: an edited model produces
*different* keys, so the new build cannot find the old entries by key
alone.  :class:`RecentBuilds` is the missing link -- an append-only JSONL
journal (newest last, trimmed to ``limit``) recording, for every complete
build: its phase keys, the per-phase code digests they were computed
from, and the build flags.  The incremental preparer scans it newest-first
for a candidate whose cached model fingerprint diffs as no-op or
localized against the current model.

Entries are advisory: a missing/corrupt journal, or a candidate whose
entries were pruned, just means no incremental reuse this time.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.resilience.atomic import atomic_write_text

RECENT_SCHEMA = "repro.incremental-recent/1"


class RecentBuilds:
    """The ``<cache_dir>/incremental/recent.jsonl`` journal."""

    def __init__(self, cache_dir, limit: int = 32):
        self.path = Path(cache_dir) / "incremental" / "recent.jsonl"
        self.limit = limit

    def record(
        self,
        *,
        flags: Dict[str, Any],
        keys: Dict[str, str],
        digests: Dict[str, str],
        config: Any,
    ) -> None:
        """Append one build record (atomic rewrite, trimmed to ``limit``).

        Deduplicates on the traces key -- rebuilding the same
        configuration refreshes its position instead of flooding the
        journal.
        """
        entry = {
            "schema": RECENT_SCHEMA,
            "flags": flags,
            "keys": keys,
            "digests": digests,
            "config": config,
            "stored_at": time.time(),
        }
        entries = [
            e for e in self._read() if e.get("keys", {}).get("traces") != keys["traces"]
        ]
        entries.append(entry)
        entries = entries[-self.limit :]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            self.path,
            "".join(json.dumps(e, sort_keys=True) + "\n" for e in entries),
        )

    def entries(self) -> List[Dict[str, Any]]:
        """All valid records, newest first."""
        return list(reversed(self._read()))

    def _read(self) -> List[Dict[str, Any]]:
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return []
        out = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if entry.get("schema") == RECENT_SCHEMA:
                out.append(entry)
        return out
