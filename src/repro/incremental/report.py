"""Provenance record of one incremental build attempt."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Tuple


@dataclasses.dataclass
class IncrementalReport:
    """What the incremental layer did (or why it stood down).

    Attached to ``ValidationPipeline.cache_info["incremental"]`` and the
    serve job result, so operators can see whether a re-validation was
    served by adoption (no-op), region splice (localized), or fell back
    to a full rebuild -- and why.
    """

    #: The pipeline's ``incremental=`` switch.
    enabled: bool = False
    #: True when a candidate prior build was found and diffed.
    attempted: bool = False
    #: ``no-op`` / ``localized`` / ``structural`` (from the model diff).
    classification: Optional[str] = None
    #: Traces key of the prior build reused (if any).
    base_key: Optional[str] = None
    #: Phases whose entries were adopted or spliced in.
    adopted_phases: Tuple[str, ...] = ()
    #: Dirty-region size: states expanded through the kernel.
    region_states: int = 0
    #: States replayed from the cached graph.
    replayed_states: int = 0
    #: Old-graph states covered by an added rule's scope.
    dirty_states: int = 0
    #: Cached traces kept verbatim during the splice.
    spliced_tours: int = 0
    #: Traces regenerated because their tour touched the dirty region.
    regenerated_traces: int = 0
    #: True when the re-enumerated graph was content-equal to the cache.
    reused_graph: bool = False
    #: Why the layer fell back (or never engaged); ``None`` on success.
    fallback_reason: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["adopted_phases"] = list(self.adopted_phases)
        return out
