"""Dependency-aware incremental revalidation.

This package turns the common edit-and-revalidate loop into seconds, not
minutes, while keeping one absolute bar: **every incremental result is
byte-identical to a cold build of the same model**.  Three cooperating
pieces (see DESIGN.md §14):

- a semantic diff of model fingerprints (:mod:`.diff`) that classifies an
  edit as *no-op* (adopt every cached phase), *localized* (re-enumerate
  only the dirty region and splice), or *structural* (full rebuild);
- a replaying enumerator (:mod:`.replay`) that walks the same BFS order as
  a cold run but copies cached out-edges for states the diff proved clean;
- a splicer (:mod:`.splice`) that reuses cached tours and vector traces
  whose arcs avoid the dirty region and regenerates only the rest.

Whenever any piece is unsure -- unstable fingerprint, missing cached
entry, flag mismatch -- it falls back to the full rebuild path, so the
worst case is wasted time, never a wrong artifact.
"""

from repro.incremental.diff import ModelDiff, diff_models
from repro.incremental.edits import (
    EDIT_CATALOG,
    EditedPPControl,
    ModelEdit,
    resolve_edits,
)
from repro.incremental.recent import RecentBuilds
from repro.incremental.replay import incremental_enumerate
from repro.incremental.report import IncrementalReport

__all__ = [
    "EDIT_CATALOG",
    "EditedPPControl",
    "IncrementalReport",
    "ModelDiff",
    "ModelEdit",
    "RecentBuilds",
    "diff_models",
    "incremental_enumerate",
    "resolve_edits",
]
