"""Hand-written directed tests: the design team's baseline.

These are the tests a careful designer writes for the corner cases they
*thought of*: each exercises one architectural feature in isolation --
a D-miss with a dirty victim, a split-store conflict, a switch stall, an
I-miss.  The paper's observation (section 3) is that bugs live in the
conjunctions nobody wrote a test for; accordingly these tests pass on all
six injected Table 2.1 bugs in the default configuration, or catch at most
the shallowest, while the generated vectors catch every one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.pp.isa import Instruction, Opcode
from repro.pp.rtl.core import CoreConfig
from repro.pp.rtl.stimulus import QueueStimulus
from repro.harness.compare import ComparisonResult, run_trace


@dataclass
class DirectedTest:
    """One hand-written test: a program plus deterministic forcing."""

    name: str
    description: str
    program: List[Instruction]
    fetch_hits: List[bool] = field(default_factory=list)
    dcache_hits: List[bool] = field(default_factory=list)
    inbox_ready: List[bool] = field(default_factory=list)
    outbox_ready: List[bool] = field(default_factory=list)
    victim_dirty: List[bool] = field(default_factory=list)

    def stimulus(self) -> QueueStimulus:
        return QueueStimulus(
            fetch_hits=self.fetch_hits,
            dcache_hits=self.dcache_hits,
            inbox_ready=self.inbox_ready,
            outbox_ready=self.outbox_ready,
            victim_dirty=self.victim_dirty,
        )

    def run(self, config: Optional[CoreConfig] = None) -> ComparisonResult:
        return run_trace(self.program, self.stimulus(), config=config)


def _ins(op, **kw):
    return Instruction(op, **kw)


def directed_tests() -> List[DirectedTest]:
    """The directed suite: one test per architectural feature."""
    tests = []

    # 1. Basic ALU pipeline flow.
    tests.append(DirectedTest(
        name="alu_pipeline",
        description="Back-to-back dependent ALU ops through the pipe.",
        program=[
            _ins(Opcode.ADDI, rd=1, rs=0, imm=3),
            _ins(Opcode.ADDI, rd=2, rs=1, imm=4),
            _ins(Opcode.ADD, rd=3, rs=1, rt=2),
            _ins(Opcode.SUB, rd=4, rs=3, rt=1),
            _ins(Opcode.XOR, rd=5, rs=4, rt=2),
        ],
    ))

    # 2. D-miss with a dirty victim: fill-before-spill + write-back.
    tests.append(DirectedTest(
        name="dmiss_dirty_victim",
        description="Load miss evicting a dirty line through the spill buffer.",
        program=[
            _ins(Opcode.ADDI, rd=1, rs=0, imm=77),
            _ins(Opcode.SW, rd=1, rs=0, imm=0x00),
            _ins(Opcode.NOP),
            _ins(Opcode.LW, rd=2, rs=0, imm=0x40),
            _ins(Opcode.LW, rd=3, rs=0, imm=0x00),
        ],
        dcache_hits=[True, False, False],
        victim_dirty=[True, True],
    ))

    # 3. Split-store conflict: store then load to the same line.
    tests.append(DirectedTest(
        name="split_store_conflict",
        description="Load to the pending store's line takes a conflict stall.",
        program=[
            _ins(Opcode.ADDI, rd=1, rs=0, imm=55),
            _ins(Opcode.SW, rd=1, rs=0, imm=0x20),
            _ins(Opcode.LW, rd=2, rs=0, imm=0x20),
            _ins(Opcode.ADD, rd=3, rs=2, rt=1),
        ],
        dcache_hits=[True, True],
    ))

    # 4. Switch stall: Inbox not ready for two cycles.
    tests.append(DirectedTest(
        name="switch_stall",
        description="A switch waits out a not-ready Inbox.",
        program=[
            _ins(Opcode.SWITCH, rd=1),
            _ins(Opcode.ADDI, rd=2, rs=1, imm=1),
        ],
        inbox_ready=[False, False, True],
    ))

    # 5. Send stall: Outbox not ready.
    tests.append(DirectedTest(
        name="send_stall",
        description="A send waits out a not-ready Outbox.",
        program=[
            _ins(Opcode.ADDI, rd=1, rs=0, imm=13),
            _ins(Opcode.SEND, rd=1),
            _ins(Opcode.ADDI, rd=2, rs=0, imm=14),
            _ins(Opcode.SEND, rd=2),
        ],
        outbox_ready=[False, True, True],
    ))

    # 6. I-miss refill: fetch stalls, refill, fix-up, resume.
    tests.append(DirectedTest(
        name="imiss_refill",
        description="Instruction fetch misses and resumes after refill.",
        program=[
            _ins(Opcode.ADDI, rd=1, rs=0, imm=9),
            _ins(Opcode.ADDI, rd=2, rs=1, imm=9),
            _ins(Opcode.ADD, rd=3, rs=1, rt=2),
        ],
        fetch_hits=[True, False, True, True],
    ))

    # 7. Store miss: write-allocate refill then split-store completion.
    tests.append(DirectedTest(
        name="store_miss",
        description="Store miss refills the line, then posts the data write.",
        program=[
            _ins(Opcode.ADDI, rd=1, rs=0, imm=31),
            _ins(Opcode.SW, rd=1, rs=0, imm=0x30),
            _ins(Opcode.NOP),
            _ins(Opcode.LW, rd=2, rs=0, imm=0x30),
        ],
        dcache_hits=[False, True],
    ))
    return tests


def run_directed_suite(config: Optional[CoreConfig] = None):
    """Run every directed test; returns {name: ComparisonResult}."""
    return {test.name: test.run(config) for test in directed_tests()}
