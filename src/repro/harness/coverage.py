"""Control-state coverage measurement for RTL simulation runs.

The paper's pitch is a *measurable* degree of confidence: the enumerated
state graph defines the universe of control behaviour, and a simulation
run can be scored by how many of those states and transition arcs it
actually visited.  This module observes a running :class:`PPCore`, maps
its unit states onto the control model's state vector each cycle, and
reports visited-state / visited-arc fractions against the enumerated
graph.

This is what makes the generated-vs-random comparison quantitative:
the transition-tour vectors are *constructed* to visit every arc, while
random vectors cluster in the high-probability core of the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set, Tuple

from repro.enumeration.graph import StateGraph
from repro.pp.fsm_model import PPControlModel
from repro.pp.isa import InstructionClass
from repro.pp.rtl.core import PPCore
from repro.pp.rtl.dcache import DRefillState, SpillState
from repro.pp.rtl.icache import IRefillState
from repro.smurphi.state import StateCodec


@dataclass
class CoverageMeasurement:
    """Visited control states/arcs of one or more simulation runs,
    scored against the enumerated graph."""

    graph_states: int
    graph_arcs: int
    visited_states: int
    visited_arcs: int
    observed_cycles: int
    #: Observed (src, dst) pairs that are NOT arcs of the graph -- nonzero
    #: values quantify abstraction skew between the model and the RTL.
    unmatched_transitions: int

    @property
    def state_coverage(self) -> float:
        return self.visited_states / self.graph_states if self.graph_states else 0.0

    @property
    def arc_coverage(self) -> float:
        return self.visited_arcs / self.graph_arcs if self.graph_arcs else 0.0

    def summary(self) -> str:
        return (
            f"{self.visited_states}/{self.graph_states} states "
            f"({self.state_coverage * 100:.1f}%), "
            f"{self.visited_arcs}/{self.graph_arcs} arcs "
            f"({self.arc_coverage * 100:.1f}%) over {self.observed_cycles} cycles"
        )


class ControlStateObserver:
    """Maps a live :class:`PPCore` onto the control model's state vector.

    The mapping mirrors the abstraction the model applies to the design:
    pipeline registers reduce to instruction classes, cache/refill units
    to their FSM states, in-flight counters to delivered-word counts.
    The model's ``fill_words`` should equal the RTL line size
    (``LINE_WORDS``) for the counters to align.
    """

    def __init__(self, control: PPControlModel, graph: StateGraph):
        self.control = control
        self.graph = graph
        self.codec = StateCodec(control.state_vars)
        self.fill_words = control.config.fill_words
        self.visited_state_keys: Set[int] = set()
        self.visited_arc_pairs: Set[Tuple[int, int]] = set()
        self.unmatched: Set[Tuple[int, int]] = set()
        self.cycles = 0
        self._known_states = {
            graph.state_key(i) for i in range(graph.num_states)
        }
        self._known_arcs = {
            (graph.state_key(e.src), graph.state_key(e.dst)) for e in graph.edges()
        }
        self._previous_key: Optional[int] = None

    # -- the RTL -> model state mapping --------------------------------------

    @staticmethod
    def _bundle_class(bundle) -> str:
        if not bundle:
            return "BUBBLE"
        lead = bundle[0]
        if lead.instr.is_nop():
            return "ALU"
        return lead.klass.value

    def snapshot(self, core: PPCore) -> dict:
        """The control model's view of the core, this cycle."""
        fw = self.fill_words
        icache, dcache = core.icache, core.dcache
        ifill = sum(w is not None for w in icache._line_buffer) if (
            icache.state is IRefillState.FILL
        ) else 0
        dfill = sum(w is not None for w in dcache._line_buffer) if (
            dcache.refill_state is DRefillState.FILL_REST
        ) else 0
        if core._load_wait is not None:
            owner = "LOAD"
        elif core._store_wait is not None:
            owner = "STORE"
        else:
            owner = "NONE"
        state = {
            "ifq": self._bundle_class(core.rd_bundle),
            "ex": self._bundle_class(core.ex_bundle),
            "mem": self._bundle_class(core.mem_bundle),
            "irefill": icache.state.value,
            "ifill_cnt": min(ifill, fw),
            "drefill": dcache.refill_state.value,
            "dfill_cnt": min(dfill, fw),
            "spill": dcache.spill_state.value,
            "st_pend": dcache.pending_store is not None,
            "miss_owner": owner,
        }
        for i in range(self.control.config.extra_pipe_stages):
            state[f"wb{i}"] = "BUBBLE"
        return state

    # -- observation -----------------------------------------------------------

    def observe(self, core: PPCore) -> None:
        """Record the core's control state for the current cycle."""
        key = self.codec.pack(self.snapshot(core))
        self.cycles += 1
        if key in self._known_states:
            self.visited_state_keys.add(key)
        if self._previous_key is not None:
            pair = (self._previous_key, key)
            if pair in self._known_arcs:
                self.visited_arc_pairs.add(pair)
            else:
                self.unmatched.add(pair)
        self._previous_key = key

    def new_run(self) -> None:
        """Reset the arc chaining between independent traces (each trace
        restarts the machine from reset)."""
        self._previous_key = None

    def measurement(self) -> CoverageMeasurement:
        return CoverageMeasurement(
            graph_states=self.graph.num_states,
            graph_arcs=len(self._known_arcs),
            visited_states=len(self.visited_state_keys),
            visited_arcs=len(self.visited_arc_pairs),
            observed_cycles=self.cycles,
            unmatched_transitions=len(self.unmatched),
        )


def run_with_coverage(
    core: PPCore,
    observer: ControlStateObserver,
    max_cycles: int = 500_000,
) -> None:
    """Run ``core`` to completion, observing its control state each cycle."""
    observer.new_run()
    observer.observe(core)
    while not core.halted:
        if core.cycle >= max_cycles:
            raise RuntimeError("core did not halt during coverage run")
        core.step()
        observer.observe(core)
