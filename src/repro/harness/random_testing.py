"""The biased-random testing baseline (section 1's status quo).

Random instruction streams with realistic event probabilities: cache hits
common, external units usually ready.  The point of the Table 2.1
experiment is that the conjunction of improbable events each Table 2.1 bug
needs almost never occurs under this distribution, so random vectors burn
enormous simulation budgets without reaching the corner cases.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.pp.isa import Instruction, InstructionClass, Opcode, random_instruction
from repro.pp.rtl.core import CoreConfig
from repro.pp.rtl.stimulus import RandomStimulus
from repro.harness.compare import ComparisonResult, run_trace
from repro.vectors.generator import DEFAULT_ADDRESS_POOL

#: Instruction-class mix of typical protocol code: mostly ALU work, some
#: memory traffic, occasional task switching / message sends.
DEFAULT_CLASS_WEIGHTS = {
    InstructionClass.ALU: 0.55,
    InstructionClass.LD: 0.20,
    InstructionClass.SD: 0.15,
    InstructionClass.SWITCH: 0.05,
    InstructionClass.SEND: 0.05,
}


def random_program(
    rng: random.Random,
    length: int,
    class_weights=None,
    address_pool: Sequence[int] = DEFAULT_ADDRESS_POOL,
) -> List[Instruction]:
    """A random instruction stream with the given class mix."""
    weights = class_weights or DEFAULT_CLASS_WEIGHTS
    classes = list(weights)
    probabilities = [weights[c] for c in classes]
    program = []
    for _ in range(length):
        klass = rng.choices(classes, probabilities)[0]
        instruction = random_instruction(klass, rng, address_pool=list(address_pool))
        if instruction.opcode in (Opcode.LW, Opcode.SW):
            instruction = Instruction(
                instruction.opcode,
                rd=instruction.rd,
                rs=0,
                imm=rng.choice(list(address_pool)),
            )
        program.append(instruction)
    return program


def random_trace(
    seed: int,
    length: int = 1000,
    config: Optional[CoreConfig] = None,
    stimulus_probabilities: Optional[dict] = None,
) -> ComparisonResult:
    """Run one random test: random program + biased-random forcing."""
    rng = random.Random(seed)
    program = random_program(rng, length)
    stimulus = RandomStimulus(random.Random(seed ^ 0x5EED), **(stimulus_probabilities or {}))
    return run_trace(program, stimulus, config=config)


def random_campaign(
    config: CoreConfig,
    num_traces: int,
    trace_length: int = 1000,
    seed: int = 0,
    stop_on_detection: bool = True,
) -> "RandomCampaignOutcome":
    """Run random traces until a divergence is found or the budget ends."""
    instructions = 0
    for index in range(num_traces):
        result = random_trace(seed + index, trace_length, config=config)
        instructions += trace_length
        if result.diverged:
            return RandomCampaignOutcome(
                detected=True,
                traces_run=index + 1,
                instructions_run=instructions,
                first_divergence=result,
            )
    return RandomCampaignOutcome(
        detected=False, traces_run=num_traces, instructions_run=instructions,
        first_divergence=None,
    )


class RandomCampaignOutcome:
    """Result of a random-testing budget run."""

    def __init__(self, detected, traces_run, instructions_run, first_divergence):
        self.detected = detected
        self.traces_run = traces_run
        self.instructions_run = instructions_run
        self.first_divergence = first_divergence

    def __repr__(self) -> str:
        status = "detected" if self.detected else "missed"
        return (
            f"RandomCampaignOutcome({status} after {self.traces_run} traces, "
            f"{self.instructions_run} instructions)"
        )
