"""RTL-vs-specification comparison for vector traces.

One trace is compared by :func:`run_trace`/:func:`run_vector_trace`; whole
trace sets fan out across worker processes via :func:`run_vector_traces`,
which keeps sequential result order (and the stop-on-divergence cut point)
regardless of how many workers simulate concurrently.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.enumeration.pool import WorkerPool
from repro.obs.observer import Observer, resolve
from repro.pp.isa import Instruction
from repro.pp.rtl.core import BRANCH_OPCODES, CoreConfig, PPCore
from repro.pp.rtl.stimulus import StimulusSource
from repro.pp.spec import ArchState, SpecSimulator
from repro.vectors.generator import TestVectorTrace

logger = logging.getLogger("repro.harness")

#: Inbox task words shared by both models in comparison runs.
DEFAULT_INBOX = tuple(range(0x1000, 0x1000 + 256))


@dataclass
class ComparisonResult:
    """Outcome of one implementation-vs-specification run."""

    diverged: bool
    differences: List[str] = field(default_factory=list)
    write_mismatch: Optional[str] = None
    cycles: int = 0
    instructions: int = 0
    deadlocked: bool = False

    @property
    def clean(self) -> bool:
        return not self.diverged and not self.deadlocked

    def describe(self) -> str:
        if self.deadlocked:
            return f"DEADLOCK after {self.cycles} cycles"
        if not self.diverged:
            return f"match ({self.instructions} instructions, {self.cycles} cycles)"
        parts = list(self.differences[:4])
        if self.write_mismatch:
            parts.append(self.write_mismatch)
        return "DIVERGED: " + "; ".join(parts)


def compare_states(spec_state: ArchState, rtl_state: ArchState) -> List[str]:
    """Architectural differences between specification and implementation."""
    return spec_state.differences(rtl_state)


def _compare_write_streams(
    spec_log: Sequence[Tuple[int, int]], rtl_log: Sequence[Tuple[int, int]]
) -> Optional[str]:
    for index, (expected, actual) in enumerate(zip(spec_log, rtl_log)):
        if expected != actual:
            return (
                f"write #{index}: spec r{expected[0]}={expected[1]:#010x}, "
                f"rtl r{actual[0]}={actual[1]:#010x}"
            )
    if len(spec_log) != len(rtl_log):
        return f"write count: spec {len(spec_log)}, rtl {len(rtl_log)}"
    return None


def run_trace(
    program: Sequence[Instruction],
    stimulus: StimulusSource,
    config: Optional[CoreConfig] = None,
    inbox_tasks: Sequence[int] = DEFAULT_INBOX,
    strict_writes: bool = True,
    max_cycles: int = 500_000,
) -> ComparisonResult:
    """Run ``program`` on the RTL under ``stimulus`` and on the spec; compare.

    ``strict_writes`` additionally compares the register write stream at
    retirement, which catches transient corruption that a later write
    would mask in the final state.
    """
    config = config or CoreConfig(mem_latency=0)
    core = PPCore(program, config, stimulus, inbox_tasks=list(inbox_tasks))
    try:
        core.run(max_cycles=max_cycles)
    except RuntimeError:
        return ComparisonResult(
            diverged=True, deadlocked=True, cycles=core.cycle,
            instructions=len(program),
            differences=["implementation deadlocked"],
        )
    rtl_state = core.architectural_state()
    spec = SpecSimulator(inbox=list(inbox_tasks))
    if any(ins.opcode in BRANCH_OPCODES for ins in program):
        spec_state = spec.run_with_control_flow(program)
    else:
        spec_state = spec.run(program)
    differences = compare_states(spec_state, rtl_state)
    write_mismatch = None
    if strict_writes:
        write_mismatch = _compare_write_streams(spec.write_log, core.regfile.write_log)
    return ComparisonResult(
        diverged=bool(differences or write_mismatch),
        differences=differences,
        write_mismatch=write_mismatch,
        cycles=core.cycle,
        instructions=len(program),
    )


def run_vector_trace(
    trace: TestVectorTrace,
    config: Optional[CoreConfig] = None,
    **kwargs,
) -> ComparisonResult:
    """Convenience wrapper for generated vector traces."""
    return run_trace(trace.program, trace.stimulus(), config=config, **kwargs)


#: Config inherited/pickled into trace-simulation workers.
_TRACE_WORKER_CONFIG: Optional[CoreConfig] = None


def _init_trace_worker(config: CoreConfig) -> None:
    global _TRACE_WORKER_CONFIG
    _TRACE_WORKER_CONFIG = config


def _run_trace_job(trace: TestVectorTrace) -> ComparisonResult:
    return run_vector_trace(trace, config=_TRACE_WORKER_CONFIG)


def _run_indexed_trace_job(
    payload: Tuple[int, TestVectorTrace],
) -> Tuple[int, ComparisonResult]:
    index, trace = payload
    return index, run_vector_trace(trace, config=_TRACE_WORKER_CONFIG)


def _trace_chunk_job(
    payload: Sequence[Tuple[int, TestVectorTrace]], attempt: int = 0
) -> List[Tuple[int, ComparisonResult]]:
    """Pool task: one chunk of indexed traces, config fork-inherited
    through :data:`_TRACE_WORKER_CONFIG` (pure -- safe to retry)."""
    return [_run_indexed_trace_job(item) for item in payload]


def _record_result(obs: Observer, index: int, result: ComparisonResult) -> None:
    """Per-trace comparison metrics (coordinator side, both modes)."""
    obs.inc("compare.traces_run")
    obs.inc("compare.instructions_run", result.instructions)
    obs.inc("compare.cycles_run", result.cycles)
    obs.observe("compare.trace_instructions", result.instructions)
    obs.observe("compare.trace_cycles", result.cycles)
    if result.diverged:
        obs.inc("compare.divergences")
        obs.event("compare.divergence", trace=index, detail=result.describe())
        logger.info("trace %d diverged: %s", index, result.describe())


def run_vector_traces(
    traces: Iterable[TestVectorTrace],
    config: Optional[CoreConfig] = None,
    jobs: Optional[int] = 1,
    stop_on_divergence: bool = True,
    obs: Optional[Observer] = None,
    chunksize: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
) -> Tuple[List[ComparisonResult], List[int]]:
    """Run many traces; return ``(results, diverging_indices)`` in trace order.

    ``jobs>1`` fans the simulations across worker processes but reproduces
    the sequential contract exactly: results come back in trace order, and
    with ``stop_on_divergence`` the result list ends at the first diverging
    trace -- exactly where the sequential loop would have stopped -- even
    if workers raced ahead on later traces.  ``jobs=None`` uses every CPU.

    Scheduling is longest-trace-first over ``imap_unordered`` (the
    coordinator restores trace order), so one long trace dispatched last
    can no longer straggle the whole pool.  ``chunksize`` controls how
    many traces each dispatch hands a worker; the default of
    ``max(1, n // (workers * 4))`` gives every worker ~4 chunks, which
    amortizes dispatch/pickling without re-creating the imbalance that
    one giant chunk of the longest traces would.

    ``obs`` receives per-trace instruction/cycle histograms, running
    ``compare.*`` counters, ``compare.workers``/``compare.chunksize``
    gauges, a ``compare.seconds`` sample, and a ``compare.divergence``
    event (with the divergence site) for every diverging trace.

    ``pool`` accepts the pipeline's persistent
    :class:`~repro.enumeration.pool.WorkerPool`: workers then come from
    (or are re-forked into) the shared pool -- the config is published
    for fork inheritance instead of pickled per spawn -- and dead-worker
    recovery applies (chunks are pure, so retries are safe).  The
    sequential contract above is unchanged; a stop-on-divergence cut
    retires the worker generation exactly like ``pool.terminate()`` did.
    """
    obs = resolve(obs)
    started = time.perf_counter()
    config = config or CoreConfig(mem_latency=0)
    traces = list(traces)
    if jobs is None:
        jobs = os.cpu_count() or 1
    parallel = (
        jobs > 1
        and len(traces) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    results: List[ComparisonResult] = []
    diverging: List[int] = []
    if not parallel:
        obs.gauge("compare.workers", 1)
        for index, trace in enumerate(traces):
            result = run_vector_trace(trace, config=config)
            results.append(result)
            _record_result(obs, index, result)
            obs.heartbeat("compare", traces=index + 1, total=len(traces),
                          divergences=len(diverging) + bool(result.diverged))
            if result.diverged:
                diverging.append(index)
                if stop_on_divergence:
                    break
        obs.observe("compare.seconds", time.perf_counter() - started)
        return results, diverging

    workers = min(jobs, len(traces))
    if chunksize is None:
        chunksize = max(1, len(traces) // (workers * 4))
    obs.gauge("compare.workers", workers)
    obs.gauge("compare.chunksize", chunksize)
    # Longest first (ties by original index, so scheduling is stable):
    # workers start on the expensive traces while the cheap ones fill in
    # the tail of the schedule.
    order = sorted(
        range(len(traces)), key=lambda i: (-traces[i].edges_traversed, i)
    )
    if pool is not None:
        return _run_with_pool(
            traces, config, pool, order, chunksize,
            stop_on_divergence, obs, started,
        )
    ctx = multiprocessing.get_context("fork")
    pool = ctx.Pool(
        processes=workers,
        initializer=_init_trace_worker,
        initargs=(config,),
    )
    # Completions arrive out of order; ``pending`` holds them until every
    # earlier trace has been emitted, so results/metrics/stop decisions
    # happen in exactly the sequential order.
    pending = {}
    next_index = 0
    stopped = False
    try:
        for index, result in pool.imap_unordered(
            _run_indexed_trace_job,
            [(i, traces[i]) for i in order],
            chunksize=chunksize,
        ):
            pending[index] = result
            while not stopped and next_index in pending:
                emitted = pending.pop(next_index)
                results.append(emitted)
                _record_result(obs, next_index, emitted)
                obs.heartbeat("compare", traces=next_index + 1,
                              total=len(traces), workers=workers,
                              divergences=len(diverging) + bool(emitted.diverged))
                if emitted.diverged:
                    diverging.append(next_index)
                    if stop_on_divergence:
                        stopped = True  # in-flight later traces are dropped
                next_index += 1
            if stopped:
                pool.terminate()
                break
        else:
            pool.close()
        pool.join()
    except BaseException:
        pool.terminate()
        pool.join()
        raise
    obs.observe("compare.seconds", time.perf_counter() - started)
    return results, diverging


def _run_with_pool(
    traces: List[TestVectorTrace],
    config: CoreConfig,
    pool: WorkerPool,
    order: List[int],
    chunksize: int,
    stop_on_divergence: bool,
    obs: Observer,
    started: float,
) -> Tuple[List[ComparisonResult], List[int]]:
    """The persistent-pool comparison path (same contract, shared workers)."""
    global _TRACE_WORKER_CONFIG
    # Publish for fork inheritance BEFORE declaring the context: a tag
    # change re-forks workers that inherit exactly this config; an equal
    # tag means the live generation already holds an equal config.
    _TRACE_WORKER_CONFIG = config
    pool.obs = obs
    pool.set_context(("compare", repr(config)))
    indexed = [(i, traces[i]) for i in order]
    chunks = [
        indexed[i : i + chunksize] for i in range(0, len(indexed), chunksize)
    ]
    results: List[ComparisonResult] = []
    diverging: List[int] = []
    pending = {}
    next_index = 0
    stopped = False
    workers = pool.jobs
    # No timeout: simulation time is unbounded in trace length; dead
    # workers still recover via BrokenProcessPool.
    tasks = pool.imap_tasks(_trace_chunk_job, chunks)
    try:
        for _, chunk_result in tasks:
            for index, result in chunk_result:
                pending[index] = result
            while not stopped and next_index in pending:
                emitted = pending.pop(next_index)
                results.append(emitted)
                _record_result(obs, next_index, emitted)
                obs.heartbeat("compare", traces=next_index + 1,
                              total=len(traces), workers=workers,
                              divergences=len(diverging) + bool(emitted.diverged))
                if emitted.diverged:
                    diverging.append(next_index)
                    if stop_on_divergence:
                        stopped = True  # in-flight later traces are dropped
                next_index += 1
            if stopped:
                break
    finally:
        tasks.close()
        if stopped:
            # Drop the in-flight work exactly like the per-call pool's
            # terminate() used to; the next dispatch re-forks lazily.
            pool.retire()
    obs.observe("compare.seconds", time.perf_counter() - started)
    return results, diverging
