"""Full validation campaigns: generated vs random vs directed (Table 2.1).

A :class:`ValidationCampaign` builds the whole methodology pipeline once
(control model -> state graph -> transition tours -> vector traces) and
then evaluates any injected-bug configuration under the three strategies,
reporting which method finds which bug and at what simulation cost.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.bugs.catalog import BUGS
from repro.harness.compare import ComparisonResult, run_vector_traces
from repro.harness.directed import directed_tests
from repro.harness.random_testing import random_campaign
from repro.obs.observer import Observer, resolve
from repro.pp.fsm_model import PPModelConfig
from repro.pp.rtl.core import CoreConfig

logger = logging.getLogger("repro.harness")


@dataclass
class MethodOutcome:
    """One method's result against one configuration."""

    method: str
    detected: bool
    traces_run: int
    instructions_run: int
    detecting_trace: Optional[int] = None
    first_divergence: Optional[ComparisonResult] = None


@dataclass
class CampaignResult:
    """All methods' outcomes for one (possibly bug-injected) design."""

    bug_id: Optional[int]
    outcomes: Dict[str, MethodOutcome] = field(default_factory=dict)

    @property
    def title(self) -> str:
        if self.bug_id is None:
            return "bug-free design"
        return f"bug #{self.bug_id}: {BUGS[self.bug_id].title}"


class ValidationCampaign:
    """Builds the methodology pipeline once; evaluates designs repeatedly.

    Parameters
    ----------
    model_config:
        Control-model scaling (fill words, pipeline depth).
    seed:
        Seed for the biased-random vector fill.
    max_instructions_per_trace:
        The Fig. 3.3 per-trace limit.
    jobs:
        Worker processes for enumeration and trace simulation (``1`` keeps
        everything in-process, ``None`` uses every CPU).
    cache_dir / use_cache:
        Persistent artifact cache settings, forwarded to
        :class:`~repro.core.pipeline.ValidationPipeline`.
    observer:
        Observability sink (:class:`repro.obs.Observer`), forwarded to the
        pipeline and wrapped around every bug x method evaluation.
    checkpoint_dir / checkpoint_every / budget / resume:
        Resilience settings forwarded to the pipeline build: enumeration
        checkpoints, resource budgets, and continuing an interrupted
        enumeration.  A budget-truncated build still runs the campaign --
        over the partial trace set -- and ``enum_stats.truncated`` flags
        that the bug-detection numbers cover only the explored fraction.
    kernel:
        Transition kernel for enumeration (``"compiled"`` default,
        ``"interpreted"`` the validated reference path), forwarded to the
        pipeline.
    """

    def __init__(
        self,
        model_config: Optional[PPModelConfig] = None,
        seed: int = 0,
        max_instructions_per_trace: Optional[int] = 400,
        jobs: Optional[int] = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        observer: Optional[Observer] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        budget=None,
        resume: bool = False,
        kernel: str = "compiled",
        incremental: bool = True,
    ):
        from repro.core.pipeline import ValidationPipeline

        self.model_config = model_config or PPModelConfig(fill_words=2)
        self.seed = seed
        self.jobs = jobs
        self.obs = resolve(observer)
        self.pipeline = ValidationPipeline(
            model_config=self.model_config,
            max_instructions_per_trace=max_instructions_per_trace,
            seed=seed,
            jobs=jobs,
            cache_dir=cache_dir,
            use_cache=use_cache,
            observer=observer,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            budget=budget,
            kernel=kernel,
            incremental=incremental,
        )
        artifacts = self.pipeline.build(resume=resume)
        if artifacts.enumeration.truncated:
            logger.warning(
                "campaign running over a budget-truncated build "
                "(%s exhausted; %.1f%% of discovered states expanded)",
                artifacts.enumeration.budget_outcome,
                100 * artifacts.enumeration.explored_fraction,
            )
        self.control = self.pipeline.control
        self.model = self.control.build()
        self.graph = artifacts.graph
        self.enum_stats = artifacts.enumeration
        self.tours = artifacts.tours
        self.traces = artifacts.traces

    # -- strategies ----------------------------------------------------------------

    def run_generated(
        self,
        config: CoreConfig,
        stop_on_detection: bool = True,
        jobs: Optional[int] = None,
    ) -> MethodOutcome:
        """Replay every generated trace; detect on first divergence.

        ``jobs`` (default: the campaign-wide setting) fans trace
        simulations across worker processes with the sequential
        stop-on-detection semantics preserved.
        """
        jobs = self.jobs if jobs is None else jobs
        # Reuse the pipeline's persistent worker pool: once it exists,
        # its executor threads make forking a fresh legacy Pool from
        # this process unsafe (fork-inherited held locks can deadlock
        # the children), and the warm workers are faster anyway.
        results, diverging = run_vector_traces(
            self.traces, config=config, jobs=jobs,
            stop_on_divergence=stop_on_detection,
            obs=self.obs,
            pool=self.pipeline.worker_pool(jobs),
        )
        traces = list(self.traces)
        instructions = sum(t.num_instructions for t in traces[: len(results)])
        detecting = diverging[0] if diverging else None
        first: Optional[ComparisonResult] = (
            results[detecting] if detecting is not None else None
        )
        return MethodOutcome(
            method="generated",
            detected=bool(diverging),
            traces_run=len(results),
            instructions_run=instructions,
            detecting_trace=detecting,
            first_divergence=first,
        )

    def run_random(
        self,
        config: CoreConfig,
        instruction_budget: Optional[int] = None,
        trace_length: int = 1000,
    ) -> MethodOutcome:
        """Random testing with the same instruction budget as generated."""
        if instruction_budget is None:
            instruction_budget = self.traces.total_instructions
        num_traces = max(1, instruction_budget // trace_length)
        outcome = random_campaign(
            config, num_traces=num_traces, trace_length=trace_length, seed=self.seed
        )
        return MethodOutcome(
            method="random",
            detected=outcome.detected,
            traces_run=outcome.traces_run,
            instructions_run=outcome.instructions_run,
            detecting_trace=outcome.traces_run - 1 if outcome.detected else None,
            first_divergence=outcome.first_divergence,
        )

    def run_directed(self, config: CoreConfig) -> MethodOutcome:
        """The hand-written suite."""
        instructions = 0
        for index, test in enumerate(directed_tests()):
            result = test.run(config)
            instructions += len(test.program)
            if result.diverged:
                return MethodOutcome(
                    method="directed",
                    detected=True,
                    traces_run=index + 1,
                    instructions_run=instructions,
                    detecting_trace=index,
                    first_divergence=result,
                )
        return MethodOutcome(
            method="directed",
            detected=False,
            traces_run=len(directed_tests()),
            instructions_run=instructions,
        )

    # -- the Table 2.1 experiment ---------------------------------------------------

    def evaluate_bug(
        self,
        bug_id: Optional[int],
        methods: Sequence[str] = ("generated", "random", "directed"),
        base_config: Optional[CoreConfig] = None,
    ) -> CampaignResult:
        config = base_config or CoreConfig(mem_latency=0)
        if bug_id is not None:
            config = config.with_bugs(bug_id)
        bug_label = "clean" if bug_id is None else str(bug_id)
        runners = {
            "generated": self.run_generated,
            "random": self.run_random,
            "directed": self.run_directed,
        }
        result = CampaignResult(bug_id=bug_id)
        with self.obs.span("campaign.bug", bug=bug_label):
            for method in ("generated", "random", "directed"):
                if method not in methods:
                    continue
                self.obs.heartbeat("campaign", bug=bug_label, method=method)
                with self.obs.span("campaign.method", method=method, bug=bug_label):
                    outcome = runners[method](config)
                result.outcomes[method] = outcome
                self.obs.heartbeat(
                    "campaign", bug=bug_label, method=method,
                    detected=outcome.detected,
                    instructions=outcome.instructions_run,
                )
                self.obs.inc("campaign.evaluations", method=method)
                self.obs.observe(
                    "campaign.instructions_run",
                    outcome.instructions_run,
                    method=method,
                )
                if outcome.detected:
                    self.obs.inc("campaign.detections", method=method)
                logger.info(
                    "campaign bug=%s method=%s: %s after %d traces / %d instructions",
                    bug_label, method,
                    "detected" if outcome.detected else "missed",
                    outcome.traces_run, outcome.instructions_run,
                )
        return result

    def evaluate_all_bugs(
        self, methods: Sequence[str] = ("generated", "random", "directed")
    ) -> List[CampaignResult]:
        return [self.evaluate_bug(bug_id, methods=methods) for bug_id in sorted(BUGS)]
