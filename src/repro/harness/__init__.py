"""Simulation comparison framework (step 4 of Fig. 3.1).

Runs the RTL implementation and the instruction-level specification on the
same stimulus and flags data-value differences: the final architectural
state (registers, data memory, Outbox stream) and, in strict mode, the
register write stream at retirement.

Three stimulus strategies are provided for the Table 2.1 comparison:
generated transition-tour vectors, biased-random vectors, and hand-written
directed tests.
"""

from repro.harness.compare import ComparisonResult, run_trace, compare_states
from repro.harness.campaign import (
    ValidationCampaign,
    CampaignResult,
    MethodOutcome,
)
from repro.harness.random_testing import random_trace, random_campaign
from repro.harness.directed import directed_tests, DirectedTest
from repro.harness.coverage import (
    ControlStateObserver,
    CoverageMeasurement,
    run_with_coverage,
)

__all__ = [
    "ControlStateObserver",
    "CoverageMeasurement",
    "run_with_coverage",
    "ComparisonResult",
    "run_trace",
    "compare_states",
    "ValidationCampaign",
    "CampaignResult",
    "MethodOutcome",
    "random_trace",
    "random_campaign",
    "directed_tests",
    "DirectedTest",
]
