"""PP instruction set: DLX-based RISC with MAGIC communication extensions.

Instructions are 32-bit words.  Three formats:

- R-format: ``opcode(6) rd(5) rs(5) rt(5) unused(11)``
- I-format: ``opcode(6) rd(5) rs(5) imm(16)`` (imm is signed)
- X-format: ``opcode(6) rd(5) rs(5) unused(16)`` (switch/send)

From the control logic's perspective, instructions collapse into the five
*instruction classes* of Table 3.1 -- the paper's key datapath abstraction.
Branches are not recoverable-exception control transfers in the PP; per the
paper's initial modeling they are folded into the ALU class (they only
matter to control via I-cache misses).  The BR opcodes exist in the ISA so
the squashing-branch extension (section 4 future work) has something to
classify once enabled.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

WORD_MASK = 0xFFFFFFFF
NUM_REGS = 32


class InstructionClass(enum.Enum):
    """The five control-relevant instruction classes of Table 3.1."""

    ALU = "ALU"
    LD = "LD"
    SD = "SD"
    SWITCH = "SWITCH"
    SEND = "SEND"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Table 3.1 verbatim: each class's effect on the control logic.
INSTRUCTION_CLASS_EFFECTS: Dict[InstructionClass, str] = {
    InstructionClass.ALU: (
        "Has no effect since there are no exceptions in the PP."
    ),
    InstructionClass.LD: (
        "Execution of a load can cause transitions in load/store FSMs."
    ),
    InstructionClass.SD: (
        "Execution of a store can cause transitions in load/store FSMs."
    ),
    InstructionClass.SWITCH: (
        "A switch instruction executed while the Inbox is not ready causes "
        "a pipeline stall."
    ),
    InstructionClass.SEND: (
        "A send instruction executed while the Outbox is not ready causes "
        "a pipeline stall."
    ),
}


class Opcode(enum.IntEnum):
    """Machine opcodes.  Values are the 6-bit opcode field."""

    NOP = 0
    ADD = 1
    SUB = 2
    AND = 3
    OR = 4
    XOR = 5
    SLL = 6
    SRL = 7
    SLT = 8
    ADDI = 9
    ANDI = 10
    ORI = 11
    XORI = 12
    LUI = 13
    LW = 16
    SW = 20
    SWITCH = 24
    SEND = 25
    BEQ = 28   # squashing branches: future-work extension
    BNE = 29
    J = 30


#: Opcodes taking register-register operands (R-format).
R_FORMAT = {Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
            Opcode.SLL, Opcode.SRL, Opcode.SLT}
#: Opcodes taking an immediate (I-format).
I_FORMAT = {Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.LUI,
            Opcode.LW, Opcode.SW, Opcode.BEQ, Opcode.BNE, Opcode.J}
#: MAGIC communication opcodes (X-format).
X_FORMAT = {Opcode.SWITCH, Opcode.SEND}

_CLASS_BY_OPCODE: Dict[Opcode, InstructionClass] = {
    Opcode.LW: InstructionClass.LD,
    Opcode.SW: InstructionClass.SD,
    Opcode.SWITCH: InstructionClass.SWITCH,
    Opcode.SEND: InstructionClass.SEND,
}

#: Opcodes belonging to each class (for biased-random vector fill).
OPCODES_BY_CLASS: Dict[InstructionClass, Tuple[Opcode, ...]] = {
    InstructionClass.ALU: (
        Opcode.NOP, Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
        Opcode.XOR, Opcode.SLL, Opcode.SRL, Opcode.SLT, Opcode.ADDI,
        Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.LUI,
    ),
    InstructionClass.LD: (Opcode.LW,),
    InstructionClass.SD: (Opcode.SW,),
    InstructionClass.SWITCH: (Opcode.SWITCH,),
    InstructionClass.SEND: (Opcode.SEND,),
}


def classify_opcode(opcode: Opcode, squashing_branches: bool = False) -> InstructionClass:
    """Map an opcode to its Table 3.1 control class.

    Branches fold into ALU until the squashing-branch extension is enabled
    (when enabled the caller gets a ValueError here as a reminder that the
    BR class is not part of the five-class abstraction).
    """
    if opcode in _CLASS_BY_OPCODE:
        return _CLASS_BY_OPCODE[opcode]
    if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.J) and squashing_branches:
        raise ValueError(
            "branch opcodes need the extended class set; "
            "use repro.pp.branches for the squashing-branch extension"
        )
    return InstructionClass.ALU


@dataclass(frozen=True)
class Instruction:
    """A decoded PP instruction."""

    opcode: Opcode
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0

    def __post_init__(self):
        for name in ("rd", "rs", "rt"):
            value = getattr(self, name)
            if not 0 <= value < NUM_REGS:
                raise ValueError(f"register field {name}={value} out of range")
        if not -(1 << 15) <= self.imm < (1 << 15):
            raise ValueError(f"immediate {self.imm} does not fit in 16 bits")

    @property
    def klass(self) -> InstructionClass:
        return classify_opcode(self.opcode)

    def encode(self) -> int:
        """Pack into a 32-bit word."""
        word = (int(self.opcode) & 0x3F) << 26
        word |= (self.rd & 0x1F) << 21
        word |= (self.rs & 0x1F) << 16
        if self.opcode in R_FORMAT:
            word |= (self.rt & 0x1F) << 11
        else:
            word |= self.imm & 0xFFFF
        return word

    @classmethod
    def decode(cls, word: int) -> "Instruction":
        """Unpack a 32-bit word; raises ValueError on unknown opcodes."""
        opcode_bits = (word >> 26) & 0x3F
        try:
            opcode = Opcode(opcode_bits)
        except ValueError as exc:
            raise ValueError(f"unknown opcode {opcode_bits} in word {word:#010x}") from exc
        rd = (word >> 21) & 0x1F
        rs = (word >> 16) & 0x1F
        if opcode in R_FORMAT:
            return cls(opcode, rd=rd, rs=rs, rt=(word >> 11) & 0x1F)
        imm = word & 0xFFFF
        if imm >= 1 << 15:
            imm -= 1 << 16
        return cls(opcode, rd=rd, rs=rs, imm=imm)

    def is_nop(self) -> bool:
        return self.opcode is Opcode.NOP


NOP = Instruction(Opcode.NOP)


def random_instruction(
    klass: InstructionClass,
    rng: random.Random,
    address_pool: Optional[List[int]] = None,
) -> Instruction:
    """Biased-random member of ``klass`` (the section 3.3 vector fill).

    The parts of a vector that do not impact control -- data values, the
    precise operation, register numbers -- are chosen randomly.  Memory
    operands draw their base/offset from ``address_pool`` when given so the
    harness can steer accesses toward interesting cache sets.
    """
    opcode = rng.choice(OPCODES_BY_CLASS[klass])
    rd = rng.randrange(1, NUM_REGS)
    rs = rng.randrange(0, NUM_REGS)
    if opcode in R_FORMAT:
        return Instruction(opcode, rd=rd, rs=rs, rt=rng.randrange(0, NUM_REGS))
    if opcode in X_FORMAT:
        return Instruction(opcode, rd=rd, rs=rs)
    if opcode in (Opcode.LW, Opcode.SW):
        if address_pool:
            offset = rng.choice(address_pool)
        else:
            offset = rng.randrange(0, 1 << 8) & ~0x3  # word-aligned
        return Instruction(opcode, rd=rd, rs=0, imm=offset)
    return Instruction(opcode, rd=rd, rs=rs, imm=rng.randrange(-(1 << 15), 1 << 15))
