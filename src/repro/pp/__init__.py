"""The Stanford FLASH Protocol Processor (PP) substrate.

The PP (paper section 2) is a DLX-based, statically scheduled, dual-issue
RISC core embedded in the MAGIC node controller.  It has no virtual memory
and no recoverable exceptions, but a high-performance memory system:

- two-way set-associative data cache with *fill-before-spill* refill (a
  dirty victim is copied to a spill buffer so the fill can proceed first)
  and *critical-word-first* restart;
- split stores (tag probe one cycle, data write later) with *conflict
  stalls* when a following access needs the same line;
- an instruction cache whose refill shares one memory-controller port with
  the data cache (the FSM interlock the paper credits for the manageable
  state count);
- ``switch``/``send`` instructions that stall the pipe when the Inbox or
  Outbox is not ready.

This package provides the ISA and assembler, an instruction-level
*specification* simulator, a cycle-accurate RTL-level *implementation*
model (where bugs are injected), abstract environment models, a
hand-derived Synchronous Murphi model of the control (Fig. 3.2), and the
Verilog source of the control sections for the HDL-translation path.
"""

from repro.pp.isa import (
    InstructionClass,
    Instruction,
    Opcode,
    INSTRUCTION_CLASS_EFFECTS,
    classify_opcode,
    random_instruction,
)
from repro.pp.asm import assemble, disassemble, AssemblerError
from repro.pp.spec import SpecSimulator, ArchState
from repro.pp.fsm_model import (
    PPModelConfig,
    build_pp_control_model,
    pp_control_model,
)

__all__ = [
    "InstructionClass",
    "Instruction",
    "Opcode",
    "INSTRUCTION_CLASS_EFFECTS",
    "classify_opcode",
    "random_instruction",
    "assemble",
    "disassemble",
    "AssemblerError",
    "SpecSimulator",
    "ArchState",
    "build_pp_control_model",
    "pp_control_model",
    "PPModelConfig",
]
