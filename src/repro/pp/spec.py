"""Instruction-level executable specification of the PP.

This is the "golden" simulator of Fig. 3.1: it defines architectural
behaviour only -- no pipeline, no caches, no stalls.  The comparison
framework runs the RTL implementation and this specification on the same
instruction stream and flags any data-value difference (register file,
memory, Outbox stream).

Deliberately written in a different style and structure from the RTL model
to avoid the correlated-errors trap the paper warns about (section 4): the
two models share only the ISA definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.pp.isa import Instruction, NUM_REGS, Opcode, WORD_MASK


@dataclass
class ArchState:
    """Architecturally visible state: registers, memory, Outbox stream."""

    regs: List[int] = field(default_factory=lambda: [0] * NUM_REGS)
    memory: Dict[int, int] = field(default_factory=dict)
    outbox: List[int] = field(default_factory=list)
    pc: int = 0
    instructions_retired: int = 0

    def read_mem(self, address: int) -> int:
        return self.memory.get(address & ~0x3 & WORD_MASK, 0)

    def write_mem(self, address: int, value: int) -> None:
        self.memory[address & ~0x3 & WORD_MASK] = value & WORD_MASK

    def snapshot(self) -> "ArchState":
        return ArchState(
            regs=list(self.regs),
            memory=dict(self.memory),
            outbox=list(self.outbox),
            pc=self.pc,
            instructions_retired=self.instructions_retired,
        )

    def differences(self, other: "ArchState") -> List[str]:
        """Human-readable list of architectural mismatches vs ``other``."""
        diffs = []
        for i, (a, b) in enumerate(zip(self.regs, other.regs)):
            if a != b:
                diffs.append(f"r{i}: {a:#010x} != {b:#010x}")
        addresses = sorted(set(self.memory) | set(other.memory))
        for addr in addresses:
            a = self.memory.get(addr, 0)
            b = other.memory.get(addr, 0)
            if a != b:
                diffs.append(f"mem[{addr:#010x}]: {a:#010x} != {b:#010x}")
        if self.outbox != other.outbox:
            diffs.append(f"outbox: {self.outbox} != {other.outbox}")
        return diffs


class SpecSimulator:
    """Executes PP instructions one at a time, architecturally.

    ``inbox`` supplies the task words returned by ``switch``; when
    exhausted, ``switch`` returns zero (matching the RTL model's idle-task
    convention so the two models stay comparable).
    """

    def __init__(self, inbox: Optional[Iterable[int]] = None):
        self.state = ArchState()
        self._inbox: List[int] = list(inbox or [])
        self._inbox_cursor = 0
        #: (register, value) in retirement order -- the golden write stream
        #: the comparison framework checks the RTL's write port against.
        self.write_log: List[tuple] = []

    # -- execution ---------------------------------------------------------

    def execute(self, instruction: Instruction) -> None:
        """Execute one instruction and retire it."""
        handler = self._HANDLERS.get(instruction.opcode)
        if handler is None:
            raise ValueError(f"spec cannot execute {instruction!r}")
        handler(self, instruction)
        self.state.regs[0] = 0  # r0 is hardwired to zero
        if instruction.rd != 0 and self._writes_register(instruction):
            self.write_log.append((instruction.rd, self.state.regs[instruction.rd]))
        self.state.instructions_retired += 1

    @staticmethod
    def _writes_register(instruction: Instruction) -> bool:
        return instruction.opcode not in (
            Opcode.NOP, Opcode.SW, Opcode.SEND, Opcode.BEQ, Opcode.BNE, Opcode.J
        )

    def run(self, program: Sequence[Instruction]) -> ArchState:
        """Execute ``program`` in order (straight-line; no branch targets)."""
        for instruction in program:
            self.execute(instruction)
        return self.state

    def run_with_control_flow(
        self, program: Sequence[Instruction], max_instructions: int = 100_000
    ) -> ArchState:
        """Execute ``program`` honouring branches/jumps, from pc=0 until the
        pc falls off the end or ``max_instructions`` retire."""
        state = self.state
        state.pc = 0
        while 0 <= state.pc < len(program):
            if state.instructions_retired >= max_instructions:
                raise RuntimeError("instruction budget exhausted (runaway loop?)")
            instruction = program[state.pc]
            taken_target = self._branch_target(instruction)
            self.execute(instruction)
            if taken_target is not None:
                state.pc = taken_target
            else:
                state.pc += 1
        return state

    def _branch_target(self, instruction: Instruction) -> Optional[int]:
        op = instruction.opcode
        regs = self.state.regs
        if op is Opcode.BEQ and regs[instruction.rs] == regs[instruction.rd]:
            return self.state.pc + 1 + instruction.imm
        if op is Opcode.BNE and regs[instruction.rs] != regs[instruction.rd]:
            return self.state.pc + 1 + instruction.imm
        if op is Opcode.J:
            return instruction.imm
        return None

    # -- per-opcode semantics -----------------------------------------------

    def _nop(self, ins: Instruction) -> None:
        pass

    def _alu_rr(self, ins: Instruction) -> None:
        a = self.state.regs[ins.rs]
        b = self.state.regs[ins.rt]
        op = ins.opcode
        if op is Opcode.ADD:
            result = a + b
        elif op is Opcode.SUB:
            result = a - b
        elif op is Opcode.AND:
            result = a & b
        elif op is Opcode.OR:
            result = a | b
        elif op is Opcode.XOR:
            result = a ^ b
        elif op is Opcode.SLL:
            result = a << (b & 31)
        elif op is Opcode.SRL:
            result = (a & WORD_MASK) >> (b & 31)
        elif op is Opcode.SLT:
            result = int(_signed(a) < _signed(b))
        else:  # pragma: no cover - dispatch table prevents this
            raise AssertionError(op)
        self.state.regs[ins.rd] = result & WORD_MASK

    def _alu_imm(self, ins: Instruction) -> None:
        a = self.state.regs[ins.rs]
        op = ins.opcode
        if op is Opcode.ADDI:
            result = a + ins.imm
        elif op is Opcode.ANDI:
            result = a & (ins.imm & 0xFFFF)
        elif op is Opcode.ORI:
            result = a | (ins.imm & 0xFFFF)
        elif op is Opcode.XORI:
            result = a ^ (ins.imm & 0xFFFF)
        elif op is Opcode.LUI:
            result = (ins.imm & 0xFFFF) << 16
        else:  # pragma: no cover
            raise AssertionError(op)
        self.state.regs[ins.rd] = result & WORD_MASK

    def _lw(self, ins: Instruction) -> None:
        address = (self.state.regs[ins.rs] + ins.imm) & WORD_MASK
        self.state.regs[ins.rd] = self.state.read_mem(address)

    def _sw(self, ins: Instruction) -> None:
        address = (self.state.regs[ins.rs] + ins.imm) & WORD_MASK
        self.state.write_mem(address, self.state.regs[ins.rd])

    def _switch(self, ins: Instruction) -> None:
        if self._inbox_cursor < len(self._inbox):
            word = self._inbox[self._inbox_cursor] & WORD_MASK
            self._inbox_cursor += 1
        else:
            word = 0
        self.state.regs[ins.rd] = word

    def _send(self, ins: Instruction) -> None:
        self.state.outbox.append(self.state.regs[ins.rd])

    def _branch(self, ins: Instruction) -> None:
        pass  # branch direction handled by run_with_control_flow

    _HANDLERS = {
        Opcode.NOP: _nop,
        Opcode.ADD: _alu_rr,
        Opcode.SUB: _alu_rr,
        Opcode.AND: _alu_rr,
        Opcode.OR: _alu_rr,
        Opcode.XOR: _alu_rr,
        Opcode.SLL: _alu_rr,
        Opcode.SRL: _alu_rr,
        Opcode.SLT: _alu_rr,
        Opcode.ADDI: _alu_imm,
        Opcode.ANDI: _alu_imm,
        Opcode.ORI: _alu_imm,
        Opcode.XORI: _alu_imm,
        Opcode.LUI: _alu_imm,
        Opcode.LW: _lw,
        Opcode.SW: _sw,
        Opcode.SWITCH: _switch,
        Opcode.SEND: _send,
        Opcode.BEQ: _branch,
        Opcode.BNE: _branch,
        Opcode.J: _branch,
    }


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 32) if value >= (1 << 31) else value
