"""The PP control logic in Verilog -- the translator's flagship input.

This is the paper's actual flow: the design exists as (annotated,
synthesizable) Verilog, the HDL translator converts it to a Synchronous
Murphi model, and the designer supplies abstract environment models for
the interfaces (here: the ``pp_control_choices`` choice points, with the
same guards the hand-written model in :mod:`repro.pp.fsm_model` uses).

The control is written as one flat module, the way the synthesis
partition of the real PP's control section would look: one combinational
block computing all ``*_n`` next-state values, one clocked block latching
them.  Encodings mirror the hand model exactly, so
:func:`build_pp_control_model_from_verilog` enumerates to a state graph
with the *same state and edge counts* as the hand-built model -- the
equivalence test that anchors the translation path.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.hdl.elaborate import FlatDesign
from repro.pp.fsm_model import PPModelConfig
from repro.smurphi import BoolType, ChoicePoint, RangeType, SyncModel
from repro.translate import translate_verilog

#: Encodings shared between the Verilog and the abstract environment.
CLASS_BUBBLE, CLASS_ALU, CLASS_LD, CLASS_SD, CLASS_SWITCH, CLASS_SEND = range(6)
IREFILL_IDLE, IREFILL_REQ, IREFILL_FILL, IREFILL_FIXUP = range(4)
DREFILL_IDLE, DREFILL_SPILL, DREFILL_REQ, DREFILL_FILL_CRIT, DREFILL_FILL_REST = range(5)
SPILL_EMPTY, SPILL_HELD, SPILL_WB = range(3)
OWNER_NONE, OWNER_LOAD, OWNER_STORE = range(3)


def pp_control_verilog(fill_words: int = 2) -> str:
    """The PP control section as annotated Verilog source."""
    if fill_words < 1:
        raise ValueError("fill_words must be >= 1")
    return f"""
// Protocol Processor control section (synthesis partition).
// Datapath values are already reduced to distinguished cases at this
// boundary: instructions arrive as one of five classes, addresses as a
// hit/miss bit, the victim as a dirty bit.
module pp_control (
  input clk,
  input [2:0] fetch_class,   // @free abstract decoded instruction class
  input i_hit,               // @free abstract I-cache tag compare
  input d_hit,               // @free abstract D-cache tag compare
  input conflict,            // @free pending-store line comparator
  input victim_dirty,        // @free abstract victim dirty bit
  input inbox_ready,         // @free Inbox handshake
  input outbox_ready,        // @free Outbox handshake
  input mem_word,            // @free memory controller word-valid pacing
  output stall
);
  localparam FW = {fill_words};

  localparam BUBBLE = 0, ALU = 1, LD = 2, SD = 3, SWITCH = 4, SEND = 5;
  localparam I_IDLE = 0, I_REQ = 1, I_FILL = 2, I_FIXUP = 3;
  localparam D_IDLE = 0, D_SPILL = 1, D_REQ = 2, D_CRIT = 3, D_REST = 4;
  localparam SP_EMPTY = 0, SP_HELD = 1, SP_WB = 2;
  localparam OWN_NONE = 0, OWN_LOAD = 1, OWN_STORE = 2;

  // Abstract pipeline instruction registers (Fig. 3.2).
  // @state
  reg [2:0] ifq;
  // @state
  reg [2:0] ex;
  // @state
  reg [2:0] mem;
  // ICache refill FSM.
  // @state
  reg [1:0] irefill;
  // @state
  reg [2:0] ifill_cnt;
  // DCache refill FSM.
  // @state
  reg [2:0] drefill;
  // @state
  reg [2:0] dfill_cnt;
  // Fill/Spill FSM.
  // @state
  reg [1:0] spill;
  // Split-store pending flag (cache conflict FSM).
  // @state
  reg st_pend;
  // Which access owns the in-flight D-refill.
  // @state
  reg [1:0] miss_owner;

  // Fetch classes outside the five defined ones decode as ALU.
  wire [2:0] fclass = (fetch_class == 0 || fetch_class > 5) ? 3'd1 : fetch_class;

  // Shared memory port: one owner at a time, D-fill > I-fill > write-back.
  wire port_d = (drefill == D_CRIT) || (drefill == D_REST);
  wire port_i = (irefill == I_FILL);
  wire port_wb = (spill == SP_WB);
  wire delivered = (port_d || port_i || port_wb) && mem_word;
  wire d_critical = port_d && delivered && (drefill == D_CRIT);
  wire d_fill_done = port_d && delivered &&
      ((drefill == D_CRIT && FW == 1) ||
       (drefill == D_REST && (dfill_cnt + 1 >= FW)));
  wire dcache_busy = (drefill != D_IDLE) || (spill == SP_WB);

  // translate_off
  // Diagnostic-only monitor, excluded from the FSM model.
  reg [31:0] debug_cycle_counter;
  // translate_on

  reg [2:0] ifq_n;
  reg [2:0] ex_n;
  reg [2:0] mem_n;
  reg [1:0] irefill_n;
  reg [2:0] ifill_cnt_n;
  reg [2:0] drefill_n;
  reg [2:0] dfill_cnt_n;
  reg [1:0] spill_n;
  reg st_pend_n;
  reg [1:0] miss_owner_n;
  reg mem_done;
  reg conflict_drained;
  reg port_busy_next;
  reg [2:0] ifq_after;

  assign stall = (irefill != I_IDLE) || (drefill != D_IDLE);

  always @(*) begin
    ifq_n = ifq;
    ex_n = ex;
    mem_n = mem;
    irefill_n = irefill;
    ifill_cnt_n = ifill_cnt;
    drefill_n = drefill;
    dfill_cnt_n = dfill_cnt;
    spill_n = spill;
    st_pend_n = st_pend;
    miss_owner_n = miss_owner;
    mem_done = 0;
    conflict_drained = 0;
    port_busy_next = 0;
    ifq_after = ifq;

    // ---- word delivery on the shared port.
    if (port_d && delivered) begin
      if (drefill == D_CRIT) begin
        if (FW == 1) begin
          drefill_n = D_IDLE;
          dfill_cnt_n = 0;
        end else begin
          drefill_n = D_REST;
          dfill_cnt_n = 1;
        end
      end else begin
        dfill_cnt_n = dfill_cnt + 1;
        if (dfill_cnt + 1 >= FW) begin
          drefill_n = D_IDLE;
          dfill_cnt_n = 0;
        end
      end
    end else if (port_i && delivered) begin
      ifill_cnt_n = ifill_cnt + 1;
      if (ifill_cnt + 1 >= FW) begin
        irefill_n = I_FIXUP;
        ifill_cnt_n = 0;
      end
    end else if (port_wb && delivered) begin
      spill_n = SP_EMPTY;
    end

    // ---- FSM housekeeping (no port needed).
    if (drefill == D_SPILL) drefill_n = D_REQ;
    if (irefill == I_FIXUP) irefill_n = I_IDLE;

    // ---- port grants, priority D > I > spill write-back.
    port_busy_next = (drefill_n == D_CRIT) || (drefill_n == D_REST) ||
                     (irefill_n == I_FILL) || (spill_n == SP_WB);
    if (drefill_n == D_REQ && drefill == D_REQ && !port_busy_next) begin
      drefill_n = D_CRIT;
      port_busy_next = 1;
    end
    if (irefill_n == I_REQ && !port_busy_next && drefill_n == D_IDLE) begin
      irefill_n = I_FILL;
      port_busy_next = 1;
    end
    if (spill_n == SP_HELD && drefill_n == D_IDLE && !port_busy_next &&
        irefill_n != I_FILL) begin
      spill_n = SP_WB;
    end

    // ---- MEM stage.
    if (mem == BUBBLE || mem == ALU) begin
      mem_done = 1;
    end else if (mem == LD) begin
      if (miss_owner == OWN_LOAD) begin
        if (d_critical) begin
          miss_owner_n = OWN_NONE;
          mem_done = 1;          // critical-word-first restart
        end
      end else if (st_pend && conflict) begin
        st_pend_n = 0;           // conflict stall: drain, retry next cycle
        conflict_drained = 1;
      end else if (!dcache_busy) begin
        if (d_hit) begin
          mem_done = 1;
        end else begin
          if (st_pend) st_pend_n = 0;  // drain before the victim spill
          if (victim_dirty) begin
            drefill_n = D_SPILL;       // fill-before-spill
            spill_n = SP_HELD;
          end else begin
            drefill_n = D_REQ;
          end
          dfill_cnt_n = 0;
          miss_owner_n = OWN_LOAD;
        end
      end
    end else if (mem == SD) begin
      if (miss_owner == OWN_STORE) begin
        if (drefill_n == D_IDLE && d_fill_done) begin
          miss_owner_n = OWN_NONE;
          st_pend_n = 1;         // split store posted after refill
          mem_done = 1;
        end
      end else if (st_pend) begin
        st_pend_n = 0;           // second store: conflict stall to drain
        conflict_drained = 1;
      end else if (!dcache_busy) begin
        if (d_hit) begin
          st_pend_n = 1;         // split store: probe now, data write later
          mem_done = 1;
        end else begin
          if (victim_dirty) begin
            drefill_n = D_SPILL;
            spill_n = SP_HELD;
          end else begin
            drefill_n = D_REQ;
          end
          dfill_cnt_n = 0;
          miss_owner_n = OWN_STORE;
        end
      end
    end else if (mem == SWITCH) begin
      mem_done = inbox_ready;    // external stall while the Inbox waits
    end else if (mem == SEND) begin
      mem_done = outbox_ready;
    end

    // ---- split store's idle-cycle data write.
    if (st_pend_n && !conflict_drained && (mem == BUBBLE || mem == ALU) &&
        drefill == D_IDLE) begin
      st_pend_n = 0;
    end

    // ---- pipe advance.
    if (mem_done) begin
      mem_n = ex;
      ex_n = ifq;
      ifq_after = BUBBLE;
    end

    // ---- fetch.
    if (irefill == I_IDLE && ifq_after == BUBBLE) begin
      if (i_hit) ifq_after = fclass;
      else irefill_n = I_REQ;
    end
    ifq_n = ifq_after;
  end

  always @(posedge clk) begin
    ifq <= ifq_n;
    ex <= ex_n;
    mem <= mem_n;
    irefill <= irefill_n;
    ifill_cnt <= ifill_cnt_n;
    drefill <= drefill_n;
    dfill_cnt <= dfill_cnt_n;
    spill <= spill_n;
    st_pend <= st_pend_n;
    miss_owner <= miss_owner_n;
  end
endmodule
"""


def pp_control_choices() -> list:
    """The abstract environment for the translated PP control: the same
    guarded choice points the hand-built model declares, on the Verilog
    module's integer encodings."""
    return [
        ChoicePoint(
            "fetch_class", RangeType(CLASS_ALU, CLASS_SEND),
            guard=lambda s: s["irefill"] == IREFILL_IDLE,
        ),
        ChoicePoint(
            "i_hit", RangeType(0, 1),
            guard=lambda s: s["irefill"] == IREFILL_IDLE, inactive_value=1,
        ),
        ChoicePoint(
            "d_hit", RangeType(0, 1),
            guard=lambda s: s["mem"] in (CLASS_LD, CLASS_SD), inactive_value=1,
        ),
        ChoicePoint(
            "conflict", RangeType(0, 1),
            guard=lambda s: s["mem"] == CLASS_LD and s["st_pend"] == 1,
        ),
        ChoicePoint(
            "victim_dirty", RangeType(0, 1),
            guard=lambda s: s["mem"] in (CLASS_LD, CLASS_SD),
        ),
        ChoicePoint(
            "inbox_ready", RangeType(0, 1),
            guard=lambda s: s["mem"] == CLASS_SWITCH, inactive_value=1,
        ),
        ChoicePoint(
            "outbox_ready", RangeType(0, 1),
            guard=lambda s: s["mem"] == CLASS_SEND, inactive_value=1,
        ),
        ChoicePoint(
            "mem_word", RangeType(0, 1),
            guard=lambda s: (
                s["drefill"] in (DREFILL_FILL_CRIT, DREFILL_FILL_REST)
                or s["irefill"] == IREFILL_FILL
                or s["spill"] == SPILL_WB
            ),
            inactive_value=1,
        ),
    ]


def build_pp_control_model_from_verilog(
    config: Optional[PPModelConfig] = None,
) -> Tuple[SyncModel, FlatDesign]:
    """The paper's real flow: PP control Verilog -> FSM model.

    Returns the translated model plus the flat design (for annotation
    statistics).  The model enumerates to the same state/edge counts as
    the hand-built :func:`repro.pp.fsm_model.build_pp_control_model` for
    the same ``fill_words`` (the equivalence is tested).
    """
    config = config or PPModelConfig(fill_words=2)
    source = pp_control_verilog(fill_words=config.fill_words)
    return translate_verilog(
        source, top="pp_control", choices_override=pp_control_choices()
    )
