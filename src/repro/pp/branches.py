"""Squashing branches: the paper's section 4 extension, implemented.

"The next stage will be modeling squashing branches.  This entails adding
new instruction classes and an abstract model of the branch outcome
determination."

This module does exactly that on top of the base control model:

- a sixth instruction class, **BR**, joins the abstract pipeline
  registers and the fetch-class choice;
- the *branch outcome determination* is abstracted to a nondeterministic
  ``branch_taken`` choice, active when a branch resolves in EX;
- a taken branch squashes the fall-through instruction sitting in the
  fetch queue (the PP's squashing-branch semantics -- no prediction state,
  just kill-on-taken).

The matching RTL behaviour is ``CoreConfig(squashing_branches=True)``, and
:class:`BranchVectorGenerator` realizes the abstract outcome with real
branch instructions: ``beq r0, r0, +1`` for taken (skipping exactly the
squashed slot), ``bne r0, r0, +1`` for not-taken.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Tuple

from repro.pp.fsm_model import PIPE_CLASSES, PPControlModel, PPModelConfig
from repro.pp.isa import Instruction, Opcode
from repro.smurphi import BoolType, ChoicePoint, EnumType, StateVar
from repro.vectors.generator import TestVectorTrace, VectorGenerator

BR_PIPE_CLASSES = PIPE_CLASSES + ("BR",)
BR_FETCH_CLASSES = ("ALU", "LD", "SD", "SWITCH", "SEND", "BR")


class BranchPPControlModel(PPControlModel):
    """The PP control model with the BR class and branch-outcome choice."""

    def __init__(self, config: Optional[PPModelConfig] = None):
        super().__init__(config)
        pipe = EnumType("pipe_class_br", BR_PIPE_CLASSES)
        self.state_vars = [
            StateVar(var.name, pipe, var.reset)
            if var.name in ("ifq", "ex", "mem") or var.name.startswith("wb")
            else var
            for var in self.state_vars
        ]
        self.choices = [
            ChoicePoint(
                "fetch_class",
                EnumType("fetch_class_br", BR_FETCH_CLASSES),
                guard=lambda s: s["irefill"] == "IDLE",
            )
            if point.name == "fetch_class"
            else point
            for point in self.choices
        ]
        self.choices.append(
            ChoicePoint(
                "branch_taken", BoolType(), guard=lambda s: s["ex"] == "BR"
            )
        )
        self.choice_names = [c.name for c in self.choices]

    def _step(self, state: Mapping, c: Mapping) -> Tuple[Dict, List[Tuple]]:
        # A branch looks like an ALU op to the memory system and stall
        # machine; run the base step on the collapsed view, then put the
        # BR class back and apply the squash.
        collapsed_state = {
            k: ("ALU" if v == "BR" else v) if isinstance(v, str) else v
            for k, v in state.items()
        }
        collapsed_choice = dict(c)
        if c["fetch_class"] == "BR":
            collapsed_choice["fetch_class"] = "ALU"
        ns, events = super()._step(collapsed_state, collapsed_choice)
        if c["fetch_class"] == "BR":
            # The base step reported the collapsed class; restore BR so the
            # vector generator emits a real branch instruction.
            events = [
                ("fetch", "BR", e[2], e[3]) if e[0] == "fetch" else e
                for e in events
            ]

        advanced = any(e[0] == "pipe_advance" for e in events)
        fetched_hit = any(e[0] == "fetch" and e[2] for e in events)

        # Re-distinguish BR through the pipe along the same movements the
        # collapsed model made.
        if advanced:
            ns["mem"] = state["ex"]
            ns["ex"] = state["ifq"]
            new_ifq = "BUBBLE"
        else:
            for name in ("mem", "ex"):
                ns[name] = state[name]
            new_ifq = state["ifq"]
        for i in range(self.config.extra_pipe_stages):
            ns[f"wb{i}"] = (state["mem"] if advanced else "BUBBLE") if i == 0 else (
                state[f"wb{i - 1}"]
            )
        if fetched_hit:
            new_ifq = c["fetch_class"]
        ns["ifq"] = new_ifq

        # Branch resolution: active when a BR advances out of EX.
        if state["ex"] == "BR" and advanced:
            events.append(("branch_resolved", bool(c["branch_taken"])))
            if c["branch_taken"]:
                # Squash the fall-through instruction that followed the
                # branch into the pipe.
                ns["ex"] = "BUBBLE"
                events.append(("squash",))
        return ns, events


class BranchVectorGenerator(VectorGenerator):
    """Vector generation for the branch-extended model.

    Branch fetches emit a placeholder not-taken branch; when the tour's
    ``branch_resolved`` event fires, the in-flight branch is patched to a
    ``beq r0, r0, +1`` (always taken, skipping exactly the slot the
    squash killed) or left as ``bne r0, r0, +1`` (never taken).
    """

    def _trace_from_tour(self, tour, rng: random.Random) -> TestVectorTrace:
        trace = TestVectorTrace(edges_traversed=len(tour.edge_indices))
        ifq_index: Optional[int] = None
        ex_index: Optional[int] = None
        mem_index: Optional[int] = None
        pending_store_addr: Optional[int] = None

        for edge_index in tour.edge_indices:
            edge = self.graph.edge(edge_index)
            state = self.codec.unpack(self.graph.state_key(edge.src))
            choice = dict(zip(self.model.choice_names, edge.condition))
            events = self.model.transition_events(state, choice)
            advanced = any(e[0] == "pipe_advance" for e in events)
            squashed = any(e[0] == "squash" for e in events)
            fetched_index: Optional[int] = None

            for event in events:
                kind = event[0]
                if kind == "fetch":
                    _, klass_name, i_hit, dual = event
                    trace.fetch_hits.append(bool(i_hit))
                    if i_hit:
                        fetched_index = len(trace.program)
                        if klass_name == "BR":
                            trace.program.append(
                                Instruction(Opcode.BNE, rd=0, rs=0, imm=1)
                            )
                        else:
                            self._emit_instruction(trace, klass_name, rng)
                        if dual:
                            self._emit_instruction(trace, "ALU", rng)
                elif kind == "branch_resolved":
                    taken = event[1]
                    if taken and ex_index is not None and ex_index < len(trace.program):
                        # Skip exactly the squashed slot.  When the slot
                        # behind the branch was a bubble (nothing fetched
                        # yet), branch to the fall-through target instead so
                        # no real instruction is skipped.
                        skip = 1 if ifq_index is not None else 0
                        trace.program[ex_index] = Instruction(
                            Opcode.BEQ, rd=0, rs=0, imm=skip
                        )
                elif kind == "d_probe":
                    trace.dcache_hits.append(bool(event[1]))
                    if state["mem"] == "SD" and event[1] and mem_index is not None:
                        pending_store_addr = self._operand_address(trace, mem_index)
                elif kind == "refill_start":
                    trace.victim_dirty.append(bool(event[1]))
                    if state["mem"] == "SD" and mem_index is not None:
                        pending_store_addr = self._operand_address(trace, mem_index)
                elif kind == "conflict":
                    self._realize_conflict(
                        trace, bool(event[1]), mem_index, pending_store_addr, rng
                    )
                elif kind == "inbox_query":
                    trace.inbox_ready.append(bool(event[1]))
                elif kind == "outbox_query":
                    trace.outbox_ready.append(bool(event[1]))
                elif kind == "mem_word":
                    trace.mem_pace.append(bool(event[1]))

            next_state = self.model.step(state, choice)
            if not next_state["st_pend"]:
                pending_store_addr = None
            if advanced:
                mem_index, ex_index, ifq_index = ex_index, ifq_index, None
                if squashed:
                    ex_index = None  # the wrong-path slot never executes
            if fetched_index is not None:
                ifq_index = fetched_index
        return trace
