"""MAGIC-level modularization: validating the Outbox against an
abstracted PP.

Section 4 of the paper: "from the Outbox control logic, the entire PP
looks like a single wire indicating that a SEND instruction was executed.
All of the state present in the PP is abstracted to one bit in this
case."  This module carries out exactly that experiment: an Outbox
controller FSM (a two-entry egress queue handshaking with the network
interface) whose only view of the 20+-bit PP control state is the 1-bit
``pp_send`` choice.

The paper also warns such interface abstractions may be too "liberal" --
admitting input sequences the real PP cannot produce -- and proposes
constraining them from the enumeration of the real unit.  The
``constrained`` flag demonstrates the fix: the PP control enumeration
shows a send can never execute while the Outbox stalls the pipe (the
send sits frozen in MEM), so the constrained abstraction gates
``pp_send`` on the stall -- removing the liberal-only back-pressure
overflow behaviour.
"""

from __future__ import annotations

from typing import Optional

from repro.smurphi import BoolType, ChoicePoint, EnumType, RangeType, StateVar, SyncModel

OUTBOX_STATES = ("EMPTY", "ONE", "FULL", "DRAIN")


def build_outbox_model(constrained: bool = False) -> SyncModel:
    """The Outbox controller with the PP abstracted to one bit.

    State: a two-entry egress queue (EMPTY/ONE/FULL) plus a DRAIN state
    entered when the queue overflows pressure and the PP must be stalled.
    Choices: ``pp_send`` (the one-bit PP abstraction) and ``ni_ready``
    (the network interface accepting a message this cycle).

    ``constrained=True`` adds the enumeration-derived environment
    constraint: the real PP cannot issue a send while the Outbox is
    stalling the pipe.
    """
    state_vars = [
        StateVar("q", EnumType("outbox_q", OUTBOX_STATES), "EMPTY"),
        StateVar("pp_stalled", BoolType(), False),
    ]

    def nxt(s, c):
        send = bool(c["pp_send"])
        if constrained and s["pp_stalled"]:
            # Enumeration of the real PP shows a send cannot execute while
            # the Outbox stalls the pipe: the send is frozen in MEM.
            send = False
        drain = bool(c["ni_ready"])
        occupancy = {"EMPTY": 0, "ONE": 1, "FULL": 2, "DRAIN": 2}[s["q"]]
        overflow_pressure = send and occupancy >= 2
        if send and occupancy < 2:
            occupancy += 1
        if drain and occupancy > 0:
            occupancy -= 1
        if overflow_pressure and occupancy >= 2:
            # A send hammered a still-full queue: back-pressure state until
            # the network interface drains an entry.
            new_q = "DRAIN"
        else:
            new_q = ("EMPTY", "ONE", "FULL")[occupancy]
        return {
            "q": new_q,
            "pp_stalled": new_q in ("FULL", "DRAIN"),
        }

    return SyncModel(
        name=f"outbox_ctrl({'constrained' if constrained else 'liberal'})",
        state_vars=state_vars,
        choices=[
            ChoicePoint("pp_send", BoolType()),
            ChoicePoint("ni_ready", BoolType()),
        ],
        next_state=nxt,
        invariants={
            "stall_matches_queue": lambda s: s["pp_stalled"] == (
                s["q"] in ("FULL", "DRAIN")
            ),
        },
    )
