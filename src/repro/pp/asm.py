"""A small two-pass assembler / disassembler for the PP ISA.

Syntax (one instruction per line; ``;`` or ``#`` start comments)::

    loop:   addi r1, r0, 4      ; rd, rs, imm
            lw   r2, 8(r1)      ; rd, offset(rs)
            sw   r2, 12(r1)
            add  r3, r1, r2     ; rd, rs, rt
            switch r4
            send r4
            beq  r1, r2, loop   ; label resolved to signed word offset
            nop

Labels resolve to PC-relative word offsets for branches and absolute word
addresses for ``j``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.pp.isa import (
    I_FORMAT,
    Instruction,
    Opcode,
    R_FORMAT,
    X_FORMAT,
)


class AssemblerError(Exception):
    """Raised on any syntax or semantic error, with line information."""

    def __init__(self, line_no: int, message: str):
        self.line_no = line_no
        super().__init__(f"line {line_no}: {message}")


_LABEL_RE = re.compile(r"^(\w+):")
_REG_RE = re.compile(r"^[rR](\d{1,2})$")
_MEM_RE = re.compile(r"^(-?\w+)\((\s*[rR]\d{1,2}\s*)\)$")

_MNEMONICS: Dict[str, Opcode] = {op.name.lower(): op for op in Opcode}


def _parse_reg(token: str, line_no: int) -> int:
    match = _REG_RE.match(token.strip())
    if not match:
        raise AssemblerError(line_no, f"expected register, got {token!r}")
    num = int(match.group(1))
    if num >= 32:
        raise AssemblerError(line_no, f"register r{num} out of range")
    return num


def _parse_imm(token: str, labels: Dict[str, int], line_no: int, pc: int, relative: bool) -> int:
    token = token.strip()
    if token in labels:
        return labels[token] - (pc + 1) if relative else labels[token]
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(line_no, f"bad immediate or unknown label {token!r}") from exc


def _strip(line: str) -> str:
    for marker in (";", "#", "//"):
        index = line.find(marker)
        if index >= 0:
            line = line[:index]
    return line.strip()


def assemble(source: str) -> List[Instruction]:
    """Assemble ``source`` into a list of instructions (word address order)."""
    # Pass 1: collect labels.
    labels: Dict[str, int] = {}
    statements: List[Tuple[int, str]] = []
    pc = 0
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = _strip(raw)
        while True:
            match = _LABEL_RE.match(line)
            if not match:
                break
            label = match.group(1)
            if label in labels:
                raise AssemblerError(line_no, f"duplicate label {label!r}")
            labels[label] = pc
            line = line[match.end():].strip()
        if line:
            statements.append((line_no, line))
            pc += 1

    # Pass 2: encode.
    program: List[Instruction] = []
    for pc, (line_no, line) in enumerate(statements):
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = [p.strip() for p in parts[1].split(",")] if len(parts) > 1 else []
        opcode = _MNEMONICS.get(mnemonic)
        if opcode is None:
            raise AssemblerError(line_no, f"unknown mnemonic {mnemonic!r}")
        program.append(_encode_one(opcode, operands, labels, line_no, pc))
    return program


def _encode_one(
    opcode: Opcode,
    operands: List[str],
    labels: Dict[str, int],
    line_no: int,
    pc: int,
) -> Instruction:
    if opcode is Opcode.NOP:
        if operands:
            raise AssemblerError(line_no, "nop takes no operands")
        return Instruction(Opcode.NOP)
    if opcode in R_FORMAT:
        if len(operands) != 3:
            raise AssemblerError(line_no, f"{opcode.name.lower()} needs rd, rs, rt")
        return Instruction(
            opcode,
            rd=_parse_reg(operands[0], line_no),
            rs=_parse_reg(operands[1], line_no),
            rt=_parse_reg(operands[2], line_no),
        )
    if opcode in X_FORMAT:
        if len(operands) != 1:
            raise AssemblerError(line_no, f"{opcode.name.lower()} needs one register")
        return Instruction(opcode, rd=_parse_reg(operands[0], line_no))
    if opcode in (Opcode.LW, Opcode.SW):
        if len(operands) != 2:
            raise AssemblerError(line_no, f"{opcode.name.lower()} needs rd, offset(rs)")
        match = _MEM_RE.match(operands[1])
        if not match:
            raise AssemblerError(line_no, f"expected offset(rs), got {operands[1]!r}")
        offset = _parse_imm(match.group(1), labels, line_no, pc, relative=False)
        return Instruction(
            opcode,
            rd=_parse_reg(operands[0], line_no),
            rs=_parse_reg(match.group(2), line_no),
            imm=offset,
        )
    if opcode in (Opcode.BEQ, Opcode.BNE):
        if len(operands) != 3:
            raise AssemblerError(line_no, f"{opcode.name.lower()} needs rs, rt(rd), target")
        return Instruction(
            opcode,
            rd=_parse_reg(operands[1], line_no),
            rs=_parse_reg(operands[0], line_no),
            imm=_parse_imm(operands[2], labels, line_no, pc, relative=True),
        )
    if opcode is Opcode.J:
        if len(operands) != 1:
            raise AssemblerError(line_no, "j needs one target")
        return Instruction(opcode, imm=_parse_imm(operands[0], labels, line_no, pc, relative=False))
    if opcode in I_FORMAT:
        if len(operands) != 3:
            raise AssemblerError(line_no, f"{opcode.name.lower()} needs rd, rs, imm")
        return Instruction(
            opcode,
            rd=_parse_reg(operands[0], line_no),
            rs=_parse_reg(operands[1], line_no),
            imm=_parse_imm(operands[2], labels, line_no, pc, relative=False),
        )
    raise AssemblerError(line_no, f"unhandled opcode {opcode!r}")  # pragma: no cover


def disassemble(instruction: Instruction) -> str:
    """Render one instruction back to assembler syntax."""
    op = instruction.opcode
    name = op.name.lower()
    if op is Opcode.NOP:
        return "nop"
    if op in R_FORMAT:
        return f"{name} r{instruction.rd}, r{instruction.rs}, r{instruction.rt}"
    if op in X_FORMAT:
        return f"{name} r{instruction.rd}"
    if op in (Opcode.LW, Opcode.SW):
        return f"{name} r{instruction.rd}, {instruction.imm}(r{instruction.rs})"
    if op in (Opcode.BEQ, Opcode.BNE):
        return f"{name} r{instruction.rs}, r{instruction.rd}, {instruction.imm}"
    if op is Opcode.J:
        return f"{name} {instruction.imm}"
    return f"{name} r{instruction.rd}, r{instruction.rs}, {instruction.imm}"
