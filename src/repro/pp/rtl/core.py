"""The PP pipeline core: dual-issue, in-order, with the stall machine.

Five stages (IF, RD, EX, MEM, WB) over the units of Fig. 3.2.  The pipe
does not freeze globally: an I-stall starves the front end with bubbles
while the back end drains, which is what makes *simultaneous* I- and
D-side events (the paper's "multiple event" bug class) reachable.

Bug-injection hooks for all six Table 2.1 bugs live here and in the cache
units; each is guarded by a bug id in ``CoreConfig.bugs`` so a single
switch turns a correct design into each of the documented faulty ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.pp.isa import (
    Instruction,
    InstructionClass,
    Opcode,
    WORD_MASK,
)
from repro.pp.rtl.dcache import DCache, DRefillState
from repro.pp.rtl.icache import ICache, IRefillState
from repro.pp.rtl.inbox import Inbox
from repro.pp.rtl.memctrl import MemoryController, Requester
from repro.pp.rtl.memory import LINE_WORDS, MainMemory, line_base
from repro.pp.rtl.outbox import Outbox
from repro.pp.rtl.regfile import RegisterFile
from repro.pp.rtl.stimulus import NaturalStimulus, StimulusSource

#: The bit pattern latched from a floating (high-impedance) bus -- what a
#: register receives when Bug #5's corrective rewrite never happens.
GARBAGE_Z = 0x5A5A5A5A
#: The value left in an unqualified latch that lost its data (Bug #2).
LOST_DATA = 0x00000000

BRANCH_OPCODES = (Opcode.BEQ, Opcode.BNE, Opcode.J)


@dataclass
class CoreConfig:
    """Static configuration of the core (and which bugs are injected)."""

    dual_issue: bool = True
    icache_sets: int = 8
    dcache_sets: int = 4
    mem_latency: int = 2
    text_base: int = 0x0010_0000
    #: Squashing branches (the paper's section 4 extension): fetch
    #: continues down the fall-through path and a taken branch squashes
    #: the wrongly fetched instructions at resolution.  When off, fetch
    #: simply waits for the branch to resolve (no speculation).
    squashing_branches: bool = False
    bugs: frozenset = frozenset()

    def with_bugs(self, *bug_ids: int) -> "CoreConfig":
        return CoreConfig(
            dual_issue=self.dual_issue,
            icache_sets=self.icache_sets,
            dcache_sets=self.dcache_sets,
            mem_latency=self.mem_latency,
            text_base=self.text_base,
            squashing_branches=self.squashing_branches,
            bugs=frozenset(self.bugs) | frozenset(bug_ids),
        )


@dataclass(frozen=True)
class TraceEvent:
    """One entry of the cycle-level event trace (used by the Bug #5
    timing-diagram benchmark and by debugging)."""

    cycle: int
    name: str
    detail: str = ""


@dataclass
class MicroOp:
    """One instruction in flight."""

    instr: Instruction
    pc: int
    src1: int = 0        # regs[rs]
    src2: int = 0        # regs[rt]
    store_val: int = 0   # regs[rd] for SW / SEND
    addr: int = 0        # effective address (EX)
    result: Optional[int] = None
    writes_reg: Optional[int] = None

    @property
    def klass(self) -> InstructionClass:
        return self.instr.klass

    @property
    def is_mem(self) -> bool:
        return self.klass in (InstructionClass.LD, InstructionClass.SD)

    @property
    def is_branch(self) -> bool:
        return self.instr.opcode in BRANCH_OPCODES


Bundle = List[MicroOp]


class PPCore:
    """Cycle-accurate PP model.

    Parameters
    ----------
    program:
        Instruction sequence, loaded at ``config.text_base``.
    config:
        Core configuration, including the injected-bug set.
    stimulus:
        Per-event forcing source (vector replay, random, or natural).
    inbox_tasks:
        Task words the Inbox supplies to ``switch``.
    trace:
        When true, record :class:`TraceEvent` entries in ``self.events``.
    """

    def __init__(
        self,
        program: Sequence[Instruction],
        config: Optional[CoreConfig] = None,
        stimulus: Optional[StimulusSource] = None,
        inbox_tasks: Optional[Sequence[int]] = None,
        trace: bool = False,
    ):
        self.config = config or CoreConfig()
        self.stimulus = stimulus or NaturalStimulus()
        self.program = list(program)
        self.memory = MainMemory()
        self.memory.load_program(
            self.config.text_base, [ins.encode() for ins in self.program]
        )
        self.memctrl = MemoryController(self.memory, latency=self.config.mem_latency)
        self.icache = ICache(self.memory, self.memctrl, num_sets=self.config.icache_sets)
        self.dcache = DCache(self.memory, self.memctrl, num_sets=self.config.dcache_sets)
        self.regfile = RegisterFile()
        self.inbox = Inbox(inbox_tasks)
        self.outbox = Outbox()

        self.pc = 0
        self.cycle = 0
        self.retired = 0
        self.rd_bundle: Optional[Bundle] = None
        self.ex_bundle: Optional[Bundle] = None
        self.mem_bundle: Optional[Bundle] = None
        self.wb_bundle: Optional[Bundle] = None

        # Stall bookkeeping (control signals + statistics).
        self.external_stall = False   # switch/send waiting on Inbox/Outbox
        self._external_stall_prev = False
        self.stall_cycles: Dict[str, int] = {
            "istall": 0, "dstall": 0, "conflict": 0, "external": 0,
            "raw": 0, "structural": 0,
        }
        self._conflict_drained_this_cycle = False

        # In-flight refill ownership: (pc, addr) of the load/store whose
        # miss started the current D-refill.
        self._load_wait: Optional[Tuple[int, int]] = None
        self._store_wait: Optional[Tuple[int, int]] = None
        self._branch_pending = False

        # Bug state.
        self._bugs = self.config.bugs
        self._bug5_watch: Optional[Dict] = None
        self._bug4_drop_fetch = False
        self._bug1_foreign_words: Optional[List[int]] = None

        self._trace_enabled = trace
        self.events: List[TraceEvent] = []

    # -- helpers ------------------------------------------------------------

    def _bug(self, bug_id: int) -> bool:
        return bug_id in self._bugs

    def _trace(self, name: str, detail: str = "") -> None:
        if self._trace_enabled:
            self.events.append(TraceEvent(self.cycle, name, detail))

    @property
    def istall(self) -> bool:
        return self.icache.stalling

    @property
    def halted(self) -> bool:
        return (
            self.pc >= len(self.program)
            and self.rd_bundle is None
            and self.ex_bundle is None
            and self.mem_bundle is None
            and self.wb_bundle is None
            and not self.icache.stalling
            and not self.dcache.busy
            and self.dcache.pending_store is None
            and not self.memctrl.busy
        )

    # -- top-level run loop -----------------------------------------------------

    def step(self) -> None:
        """Advance the whole machine one clock cycle."""
        self._conflict_drained_this_cycle = False

        # Unit clocks first: refill FSMs issue requests, the memory
        # controller makes progress and returns word deliveries.
        self.icache.tick()
        self.dcache.tick()
        self.memctrl.pace_override = self.stimulus.mem_pace() if self.memctrl.busy else None
        deliveries = self.memctrl.tick()
        d_critical: Optional[int] = None
        d_fill_done = False
        for delivery in deliveries:
            if delivery.requester is Requester.ICACHE:
                self.icache.accept(delivery)
                if delivery.is_last and self._bug1_foreign_words is not None:
                    # Bug #1: the unqualified interface signal already let a
                    # D-side transfer clobber the I-line buffer; the wrong
                    # words are installed.
                    self.icache.corrupt_line_buffer(self._bug1_foreign_words)
                    self._trace("bug1_corrupt_iline")
                    self._bug1_foreign_words = None
            elif delivery.requester in (Requester.DCACHE, Requester.SPILL_WB):
                if (
                    self._bug(1)
                    and delivery.requester is Requester.DCACHE
                    and self.icache.state in (IRefillState.REQ, IRefillState.FILL)
                ):
                    foreign = self._bug1_foreign_words or [0] * LINE_WORDS
                    foreign[delivery.word_offset] = delivery.value
                    self._bug1_foreign_words = foreign
                value = self.dcache.accept(delivery)
                if value is not None:
                    d_critical = value
                if delivery.requester is Requester.DCACHE and delivery.is_last:
                    d_fill_done = True

        # Bug #5 window: external stalls during the rest-of-line fill decide
        # whether the corrective Membus rewrite happens.
        if self._bug5_watch is not None and self._external_stall_prev:
            self._bug5_watch["stall_seen"] = True
            self._trace("bug5_stall_in_window")

        self._stage_wb()
        self._stage_mem(d_critical)
        if self._bug5_watch is not None and d_fill_done:
            self._finish_bug5_window()
        self._stage_ex()
        self._stage_rd()
        self._stage_if()

        self._external_stall_prev = self.external_stall
        if self.istall:
            self.stall_cycles["istall"] += 1
        self.cycle += 1

    def run(self, max_cycles: int = 200_000) -> None:
        """Run until the program drains; raises on suspected deadlock."""
        while not self.halted:
            if self.cycle >= max_cycles:
                raise RuntimeError(
                    f"PP did not halt within {max_cycles} cycles "
                    f"(pc={self.pc}, stalls={self.stall_cycles})"
                )
            self.step()

    # -- WB stage ---------------------------------------------------------------

    def _stage_wb(self) -> None:
        if self.wb_bundle is None:
            return
        for uop in self.wb_bundle:
            if uop.writes_reg is not None and uop.result is not None:
                self.regfile.write(uop.writes_reg, uop.result)
                self._trace("reg_write", f"r{uop.writes_reg}={uop.result:#010x}")
            self.retired += 1
        self.wb_bundle = None

    # -- MEM stage -----------------------------------------------------------------

    def _stage_mem(self, d_critical: Optional[int]) -> None:
        self.external_stall = False
        if self.mem_bundle is None:
            self._drain_store_if_idle()
            return
        lead = self.mem_bundle[0]
        done = False
        if lead.klass is InstructionClass.LD:
            done = self._mem_load(lead, d_critical)
        elif lead.klass is InstructionClass.SD:
            done = self._mem_store(lead)
        elif lead.klass is InstructionClass.SWITCH:
            done = self._mem_switch(lead)
        elif lead.klass is InstructionClass.SEND:
            done = self._mem_send(lead)
        else:
            done = True  # ALU / branch bundles spend one cycle here
            self._drain_store_if_idle()
        if done:
            self.wb_bundle = self.mem_bundle
            self.mem_bundle = None

    def _drain_store_if_idle(self) -> None:
        """The split store's data-write happens on a cache-idle cycle."""
        if (
            self.dcache.pending_store is not None
            and self.dcache.refill_state is DRefillState.IDLE
            and not self._conflict_drained_this_cycle
        ):
            self.dcache.drain_pending_store()
            self._trace("store_drain")

    def _mem_load(self, uop: MicroOp, d_critical: Optional[int]) -> bool:
        # A refill for this load is already in flight: wait for the
        # critical word (critical-word-first restart).
        if self._load_wait == (uop.pc, uop.addr):
            if d_critical is not None:
                self._load_wait = None
                return self._load_restart(uop, d_critical)
            self.stall_cycles["dstall"] += 1
            return False
        # Conflict stall: load to the pending store's line must wait for
        # the store's data write.
        if self.dcache.conflicts_with_pending(uop.addr):
            return self._conflict_stall_load(uop)
        # The previous refill's tail or write-back still owns the arrays.
        if self.dcache.busy:
            self.stall_cycles["structural"] += 1
            return False
        hit = self.dcache.probe(uop.addr, self.stimulus.dcache_hit())
        if hit:
            uop.result = self.dcache.read_hit(uop.addr)
            self._trace("load_hit", f"addr={uop.addr:#x}")
            return True
        # Miss: drain any pending store first so the victim spill cannot
        # overtake it, then start the fill-before-spill refill.
        self.dcache.drain_pending_store()
        self.dcache.start_refill(
            uop.addr, for_store=False, force_dirty_victim=self.stimulus.victim_dirty()
        )
        self._load_wait = (uop.pc, uop.addr)
        self._trace("load_miss", f"addr={uop.addr:#x}")
        self.stall_cycles["dstall"] += 1
        return False

    def _load_restart(self, uop: MicroOp, value: int) -> bool:
        """Critical word arrived: restart the stalled load."""
        self._trace("membus_drive", f"data={value:#010x}")
        if self._bug(2) and self.istall:
            # Bug #2: the return-data latch is not qualified on I-Stall; by
            # the time the I-miss is serviced the data is gone.
            value = LOST_DATA
            self._trace("bug2_latch_lost")
        uop.result = value
        if self._bug(5) and self._follower_load_store_present():
            # Bug #5: a following load/store glitches Membus-valid after the
            # critical word; the corrective rewrite happens at fill end
            # unless an external stall lands in the window.
            self._trace("membus_glitch")
            self._bug5_watch = {
                "reg": uop.writes_reg,
                "good": value,
                "stall_seen": False,
            }
        return True

    def _follower_load_store_present(self) -> bool:
        for bundle in (self.ex_bundle, self.rd_bundle):
            if bundle and any(u.is_mem for u in bundle):
                return True
        return False

    def _finish_bug5_window(self) -> None:
        watch = self._bug5_watch
        self._bug5_watch = None
        if watch is None or watch["reg"] is None:
            return
        if watch["stall_seen"] or self.external_stall:
            # The external stall suppressed the second Membus drive: the
            # glitch-latched garbage stays in the register file.
            self.regfile.write(watch["reg"], GARBAGE_Z)
            self._trace("bug5_garbage_latched", f"r{watch['reg']}")
        else:
            # Data rewritten, glitch masked (Fig. 2.2): the register ends
            # up holding the same value, so nothing architectural happens --
            # only a performance bug, invisible to result comparison.
            self._trace("membus_redrive_masked")

    def _conflict_stall_load(self, uop: MicroOp) -> bool:
        self.stall_cycles["conflict"] += 1
        self._conflict_drained_this_cycle = True
        self._trace("conflict_stall", f"addr={uop.addr:#x}")
        if self._bug(3):
            follower = self._follower_mem_addr()
            if follower is not None:
                # Bug #3: the stalled load's address register is not held
                # during the conflict stall; the follower's address wins.
                uop.addr = follower
                self._trace("bug3_addr_clobbered", f"addr={follower:#x}")
        if self._bug(6) and self.istall:
            # Bug #6: with a simultaneous I-stall the load reads the stale
            # word instead of waiting for the store's data write.
            stale = self.dcache.read_hit(uop.addr)
            self.dcache.drain_pending_store()
            uop.result = stale
            self._trace("bug6_stale_load", f"addr={uop.addr:#x}")
            return True
        self.dcache.drain_pending_store()
        return False  # the load retries (and normally hits) next cycle

    def _follower_mem_addr(self) -> Optional[int]:
        if self.ex_bundle:
            for u in self.ex_bundle:
                if u.is_mem:
                    # EX computes the address this cycle; mirror it here.
                    return (u.src1 + u.instr.imm) & WORD_MASK
        return None

    def _mem_store(self, uop: MicroOp) -> bool:
        # A refill this store's own miss started: wait for the line, then
        # post the (split) store's data write.
        if self._store_wait == (uop.pc, uop.addr):
            if self.dcache.refill_state is DRefillState.IDLE:
                self._store_wait = None
                self.dcache.post_store(uop.addr, uop.store_val)
                self._trace("store_posted_after_refill", f"addr={uop.addr:#x}")
                return True
            self.stall_cycles["dstall"] += 1
            return False
        # Second store while one is pending: conflict stall to drain.
        if self.dcache.pending_store is not None:
            self.stall_cycles["conflict"] += 1
            self._conflict_drained_this_cycle = True
            self.dcache.drain_pending_store()
            self._trace("conflict_stall_store")
            return False
        # Someone else's refill tail or write-back owns the arrays.
        if self.dcache.busy:
            self.stall_cycles["structural"] += 1
            return False
        hit = self.dcache.probe(uop.addr, self.stimulus.dcache_hit())
        if hit:
            # Split store: tag probe now, data write on a later idle cycle.
            self.dcache.post_store(uop.addr, uop.store_val)
            self._trace("store_probe_hit", f"addr={uop.addr:#x}")
            return True
        self.dcache.start_refill(
            uop.addr, for_store=True, force_dirty_victim=self.stimulus.victim_dirty()
        )
        self._store_wait = (uop.pc, uop.addr)
        self._trace("store_miss", f"addr={uop.addr:#x}")
        self.stall_cycles["dstall"] += 1
        return False

    def _mem_switch(self, uop: MicroOp) -> bool:
        forced = self.stimulus.inbox_ready()
        self.inbox.ready_override = forced
        if self.inbox.ready():
            uop.result = self.inbox.take_task()
            self._trace("switch_taken", f"task={uop.result:#x}")
            return True
        self.external_stall = True
        self.stall_cycles["external"] += 1
        self._trace("external_stall", "inbox")
        return False

    def _mem_send(self, uop: MicroOp) -> bool:
        forced = self.stimulus.outbox_ready()
        self.outbox.ready_override = forced
        if self.outbox.ready():
            self.outbox.accept(uop.store_val)
            self._trace("send_accepted", f"word={uop.store_val:#x}")
            return True
        self.external_stall = True
        self.stall_cycles["external"] += 1
        self._trace("external_stall", "outbox")
        return False

    # -- EX stage ---------------------------------------------------------------

    def _stage_ex(self) -> None:
        if self.ex_bundle is None or self.mem_bundle is not None:
            return
        for uop in self.ex_bundle:
            self._execute(uop)
        branch = next((u for u in self.ex_bundle if u.is_branch), None)
        if branch is not None:
            self._resolve_branch(branch)
        self.mem_bundle = self.ex_bundle
        self.ex_bundle = None

    def _execute(self, uop: MicroOp) -> None:
        ins = uop.instr
        op = ins.opcode
        a, b = uop.src1, uop.src2
        if uop.is_mem:
            uop.addr = (a + ins.imm) & WORD_MASK
            return
        if op is Opcode.NOP or uop.klass in (
            InstructionClass.SWITCH, InstructionClass.SEND
        ) or uop.is_branch:
            return
        if op is Opcode.ADD:
            uop.result = (a + b) & WORD_MASK
        elif op is Opcode.SUB:
            uop.result = (a - b) & WORD_MASK
        elif op is Opcode.AND:
            uop.result = a & b
        elif op is Opcode.OR:
            uop.result = a | b
        elif op is Opcode.XOR:
            uop.result = a ^ b
        elif op is Opcode.SLL:
            uop.result = (a << (b & 31)) & WORD_MASK
        elif op is Opcode.SRL:
            uop.result = (a & WORD_MASK) >> (b & 31)
        elif op is Opcode.SLT:
            uop.result = int(_signed(a) < _signed(b))
        elif op is Opcode.ADDI:
            uop.result = (a + ins.imm) & WORD_MASK
        elif op is Opcode.ANDI:
            uop.result = a & (ins.imm & 0xFFFF)
        elif op is Opcode.ORI:
            uop.result = a | (ins.imm & 0xFFFF)
        elif op is Opcode.XORI:
            uop.result = a ^ (ins.imm & 0xFFFF)
        elif op is Opcode.LUI:
            uop.result = ((ins.imm & 0xFFFF) << 16) & WORD_MASK
        else:  # pragma: no cover - decode fallback yields NOP
            uop.result = None

    def _resolve_branch(self, uop: MicroOp) -> None:
        ins = uop.instr
        taken = False
        target = 0
        if ins.opcode is Opcode.BEQ:
            taken = uop.src1 == uop.store_val
            target = uop.pc + 1 + ins.imm
        elif ins.opcode is Opcode.BNE:
            taken = uop.src1 != uop.store_val
            target = uop.pc + 1 + ins.imm
        elif ins.opcode is Opcode.J:
            taken = True
            target = ins.imm
        if taken:
            self.pc = target
            self._trace("branch_taken", f"target={target}")
            if self.config.squashing_branches and self.rd_bundle is not None:
                # Squash the fall-through instructions fetched behind the
                # branch; fetch resumes from the target this same cycle.
                self._trace(
                    "branch_squash", f"pc={self.rd_bundle[0].pc} x{len(self.rd_bundle)}"
                )
                self.rd_bundle = None
        self._branch_pending = False

    # -- RD stage -------------------------------------------------------------

    def _stage_rd(self) -> None:
        if self.rd_bundle is None or self.ex_bundle is not None:
            return
        if self._raw_hazard(self.rd_bundle):
            self.stall_cycles["raw"] += 1
            return
        for uop in self.rd_bundle:
            self._read_operands(uop)
        self.ex_bundle = self.rd_bundle
        self.rd_bundle = None

    def _raw_hazard(self, bundle: Bundle) -> bool:
        pending: set = set()
        for other in (self.ex_bundle, self.mem_bundle, self.wb_bundle):
            if other:
                pending.update(
                    u.writes_reg for u in other if u.writes_reg is not None
                )
        pending.discard(0)
        for uop in bundle:
            if any(src in pending for src in self._sources(uop.instr)):
                return True
        return False

    @staticmethod
    def _sources(ins: Instruction) -> Tuple[int, ...]:
        klass = ins.klass
        op = ins.opcode
        if op is Opcode.NOP or op is Opcode.LUI or op is Opcode.J:
            return ()
        if klass is InstructionClass.SWITCH:
            return ()
        if klass is InstructionClass.SEND:
            return (ins.rd,)
        if klass is InstructionClass.SD:
            return (ins.rs, ins.rd)
        if op in (Opcode.BEQ, Opcode.BNE):
            return (ins.rs, ins.rd)
        if op in (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
                  Opcode.SLL, Opcode.SRL, Opcode.SLT):
            return (ins.rs, ins.rt)
        return (ins.rs,)

    def _read_operands(self, uop: MicroOp) -> None:
        ins = uop.instr
        uop.src1 = self.regfile.read(ins.rs)
        uop.src2 = self.regfile.read(ins.rt)
        uop.store_val = self.regfile.read(ins.rd)
        uop.writes_reg = self._dest(ins)

    @staticmethod
    def _dest(ins: Instruction) -> Optional[int]:
        klass = ins.klass
        if ins.opcode is Opcode.NOP or ins.is_nop():
            return None
        if klass in (InstructionClass.SD, InstructionClass.SEND):
            return None
        if ins.opcode in BRANCH_OPCODES:
            return None
        return ins.rd

    # -- IF stage ---------------------------------------------------------------

    def _stage_if(self) -> None:
        if self.icache.state is IRefillState.FIXUP:
            # The fix-up cycle restores the instruction registers.
            self.icache.finish_fixup()
            if self._bug(4) and self.external_stall:
                # Bug #4: the fix-up is not qualified on MemStall; the
                # restored fetch is lost.
                self._bug4_drop_fetch = True
                self._trace("bug4_fixup_lost")
            return
        if self.icache.stalling:
            return
        if self.rd_bundle is not None:
            return
        if self._branch_pending:
            return  # no speculation: wait for the branch to resolve
        if self.pc >= len(self.program):
            return
        address = self.config.text_base + 4 * self.pc
        force = self.stimulus.fetch_hit()
        word = self.icache.lookup(address, force)
        if word is None:
            self.icache.begin_refill(address)
            self._trace("istall", f"pc={self.pc}")
            return
        first = _decode_or_nop(word)
        bundle = [MicroOp(first, self.pc)]
        self.pc += 1
        if self._can_pair(first, address):
            second_addr = self.config.text_base + 4 * self.pc
            second_word = self.icache.lookup(second_addr, True)
            second = _decode_or_nop(second_word if second_word is not None else 0)
            if self._pair_ok(first, second):
                bundle.append(MicroOp(second, self.pc))
                self.pc += 1
        if self._bug4_drop_fetch:
            # The lost fix-up dropped these instruction registers.
            self._bug4_drop_fetch = False
            self._trace("bug4_instrs_dropped", f"pc={bundle[0].pc}")
            return
        if any(u.is_branch for u in bundle) and not self.config.squashing_branches:
            self._branch_pending = True
        self.rd_bundle = bundle
        self._trace("fetch", f"pc={bundle[0].pc} x{len(bundle)}")

    def _can_pair(self, first: Instruction, address: int) -> bool:
        if not self.config.dual_issue:
            return False
        if self.pc >= len(self.program):
            return False
        if first.opcode in BRANCH_OPCODES:
            return False
        next_address = address + 4
        return line_base(next_address) == line_base(address)

    @staticmethod
    def _pair_ok(first: Instruction, second: Instruction) -> bool:
        """Static dual-issue pairing: slot B must be a non-branch ALU op,
        independent of slot A."""
        if second.klass is not InstructionClass.ALU:
            return False
        if second.opcode in BRANCH_OPCODES:
            return False
        first_dest = PPCore._dest(first)
        if first_dest is not None and first_dest != 0:
            if first_dest in PPCore._sources(second):
                return False
            second_dest = PPCore._dest(second)
            if second_dest == first_dest:
                return False
        return True

    # -- architectural extraction ---------------------------------------------------

    def architectural_state(self):
        """Registers + flushed memory + outbox, for spec comparison.

        Only data addresses below ``text_base`` are included (the program
        text is not architectural data)."""
        from repro.pp.spec import ArchState

        self.dcache.flush_all()
        memory = {
            a: v
            for a, v in self.memory.as_dict().items()
            if a < self.config.text_base
        }
        return ArchState(
            regs=self.regfile.snapshot(),
            memory=memory,
            outbox=list(self.outbox.messages),
            pc=self.pc,
            instructions_retired=self.retired,
        )


def _decode_or_nop(word: int) -> Instruction:
    """Hardware decodes whatever bits arrive; unknown encodings execute as
    no-ops (there are no illegal-instruction exceptions in the PP)."""
    try:
        return Instruction.decode(word)
    except ValueError:
        return Instruction(Opcode.NOP)


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 32) if value >= (1 << 31) else value
