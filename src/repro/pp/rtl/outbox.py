"""The MAGIC Outbox: where the PP sends completed protocol tasks.

A ``send`` instruction pushes a word to the Outbox.  If the Outbox is not
ready to accept it, the PP stalls when the ``send`` reaches execution
(section 2 of the paper uses exactly this example).
"""

from __future__ import annotations

from typing import List, Optional

from repro.pp.isa import WORD_MASK


class Outbox:
    def __init__(self, capacity: Optional[int] = None):
        self.messages: List[int] = []
        self.capacity = capacity
        #: Per-cycle forced readiness (None = use natural readiness).
        self.ready_override: Optional[bool] = None

    @property
    def natural_ready(self) -> bool:
        return self.capacity is None or len(self.messages) < self.capacity

    def ready(self) -> bool:
        if self.ready_override is not None:
            return self.ready_override
        return self.natural_ready

    def accept(self, word: int) -> None:
        self.messages.append(word & WORD_MASK)
