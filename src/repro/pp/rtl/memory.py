"""Backing main memory shared by the I- and D-cache refill paths."""

from __future__ import annotations

from typing import Dict, List

from repro.pp.isa import WORD_MASK

#: Words per cache line (both caches use the same line size).
LINE_WORDS = 4
#: Byte size of a line (word = 4 bytes).
LINE_BYTES = LINE_WORDS * 4


def line_base(address: int) -> int:
    """Byte address of the start of the line containing ``address``."""
    return address & ~(LINE_BYTES - 1) & WORD_MASK


def word_in_line(address: int) -> int:
    """Index of the addressed word within its line (0..LINE_WORDS-1)."""
    return (address & (LINE_BYTES - 1)) >> 2


class MainMemory:
    """Word-addressed main memory, default-zero.

    Lines are read/written as lists of words; single-word access is used by
    the spill-buffer write-back path and by tests.
    """

    def __init__(self):
        self._words: Dict[int, int] = {}

    def read_word(self, address: int) -> int:
        return self._words.get(address & ~0x3 & WORD_MASK, 0)

    def write_word(self, address: int, value: int) -> None:
        self._words[address & ~0x3 & WORD_MASK] = value & WORD_MASK

    def read_line(self, address: int) -> List[int]:
        base = line_base(address)
        return [self.read_word(base + 4 * i) for i in range(LINE_WORDS)]

    def read_line_critical_first(self, address: int) -> List[int]:
        """Line words ordered critical-word-first with wraparound."""
        base = line_base(address)
        critical = word_in_line(address)
        return [
            self.read_word(base + 4 * ((critical + i) % LINE_WORDS))
            for i in range(LINE_WORDS)
        ]

    def write_line(self, address: int, words: List[int]) -> None:
        if len(words) != LINE_WORDS:
            raise ValueError(f"line must be {LINE_WORDS} words, got {len(words)}")
        base = line_base(address)
        for i, word in enumerate(words):
            self.write_word(base + 4 * i, word)

    def load_program(self, base: int, words: List[int]) -> None:
        """Place encoded instruction words starting at byte address ``base``."""
        for i, word in enumerate(words):
            self.write_word(base + 4 * i, word)

    def as_dict(self) -> Dict[int, int]:
        """Snapshot of non-zero words (for architectural comparison)."""
        return {a: v for a, v in self._words.items() if v != 0}
