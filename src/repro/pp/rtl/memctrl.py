"""The on-chip memory controller: one shared port to main memory.

Both cache refill machines and the spill-buffer write-back share this
single port, which is the structural interlock the paper credits for
keeping the control state space manageable: once a data-cache refill
starts, the instruction-cache refill machine must wait.

Timing model: a granted line-read request waits ``latency`` cycles for the
first word, then delivers one word per cycle.  Data-cache reads deliver
critical-word-first.  Per-cycle delivery can be paused by the vector
harness via ``pace_override`` (the abstract model's nondeterministic
"memory not done yet" choice).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.pp.rtl.memory import LINE_WORDS, MainMemory, line_base


class Requester(enum.Enum):
    """Who owns the memory port."""

    ICACHE = "ICACHE"
    DCACHE = "DCACHE"
    SPILL_WB = "SPILL_WB"


@dataclass
class MemRequest:
    """One line-granularity transaction."""

    requester: Requester
    address: int
    write_words: Optional[List[int]] = None  # None for reads
    critical_first: bool = False


@dataclass(frozen=True)
class WordDelivery:
    """One word handed back to a requester this cycle."""

    requester: Requester
    line_address: int
    word_index: int  # index in delivery order (0 = first/critical word)
    word_offset: int  # index of the word within its line
    value: int
    is_last: bool


class MemoryController:
    """Single-ported, in-order memory controller with D-cache priority."""

    def __init__(self, memory: MainMemory, latency: int = 2):
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.memory = memory
        self.latency = latency
        self._queue: List[MemRequest] = []
        self._current: Optional[MemRequest] = None
        self._countdown = 0
        self._words: List[Tuple[int, int]] = []  # (word_offset, value) in order
        self._delivered = 0
        #: When set to False for a cycle, no word is delivered (vector pacing).
        self.pace_override: Optional[bool] = None
        #: Total transactions completed (for stats / tests).
        self.transactions_completed = 0

    # -- request side ----------------------------------------------------------

    def request(self, req: MemRequest) -> None:
        """Enqueue a transaction; D-cache requests jump ahead of I-cache
        requests still waiting in the queue (but never preempt a granted
        transaction)."""
        if req.requester is Requester.DCACHE:
            insert_at = 0
            while insert_at < len(self._queue) and (
                self._queue[insert_at].requester is Requester.DCACHE
            ):
                insert_at += 1
            self._queue.insert(insert_at, req)
        else:
            self._queue.append(req)

    @property
    def busy(self) -> bool:
        return self._current is not None or bool(self._queue)

    @property
    def owner(self) -> Optional[Requester]:
        return self._current.requester if self._current else None

    def serving(self, requester: Requester) -> bool:
        return self._current is not None and self._current.requester is requester

    # -- clock ----------------------------------------------------------------

    def tick(self) -> List[WordDelivery]:
        """Advance one cycle; return any word deliveries for this cycle."""
        deliveries: List[WordDelivery] = []
        if self._current is None and self._queue:
            self._grant(self._queue.pop(0))
            return deliveries  # grant cycle itself delivers nothing
        if self._current is None:
            return deliveries
        if self.pace_override is False:
            return deliveries  # harness held the memory system this cycle
        if self._countdown > 0:
            self._countdown -= 1
            return deliveries
        if self._current.write_words is not None:
            # Line write (spill-buffer write-back) completes as a unit once
            # the latency has elapsed.
            self.memory.write_line(self._current.address, self._current.write_words)
            deliveries.append(
                WordDelivery(
                    requester=self._current.requester,
                    line_address=line_base(self._current.address),
                    word_index=0,
                    word_offset=0,
                    value=0,
                    is_last=True,
                )
            )
            self._finish()
            return deliveries
        word_offset, value = self._words[self._delivered]
        is_last = self._delivered == LINE_WORDS - 1
        deliveries.append(
            WordDelivery(
                requester=self._current.requester,
                line_address=line_base(self._current.address),
                word_index=self._delivered,
                word_offset=word_offset,
                value=value,
                is_last=is_last,
            )
        )
        self._delivered += 1
        if is_last:
            self._finish()
        return deliveries

    def _grant(self, req: MemRequest) -> None:
        self._current = req
        self._countdown = self.latency
        self._delivered = 0
        if req.write_words is None:
            base = line_base(req.address)
            if req.critical_first:
                critical = (req.address >> 2) % LINE_WORDS
                order = [(critical + i) % LINE_WORDS for i in range(LINE_WORDS)]
            else:
                order = list(range(LINE_WORDS))
            self._words = [
                (offset, self.memory.read_word(base + 4 * offset)) for offset in order
            ]
        else:
            self._words = []

    def _finish(self) -> None:
        self._current = None
        self._words = []
        self._delivered = 0
        self.transactions_completed += 1
