"""Cycle-accurate RTL-level model of the Protocol Processor.

This is the *implementation* side of Fig. 3.1 -- the model the generated
vectors drive and the bug-injection framework mutates.  It is structured
the way the real PP Verilog was: separate units for the instruction cache,
data cache (spill buffer, split stores), memory controller, Inbox, Outbox,
register file, and a pipeline with a stall machine tying them together.

Interface signals that the paper's methodology forces from test vectors
(cache hit/miss outcomes, Inbox/Outbox readiness, memory-controller pacing)
are exposed as per-cycle *override* hooks on each unit, mirroring Verilog
``force``/``release``.
"""

from repro.pp.rtl.memory import MainMemory, LINE_WORDS, line_base
from repro.pp.rtl.memctrl import MemoryController, MemRequest, Requester
from repro.pp.rtl.regfile import RegisterFile
from repro.pp.rtl.inbox import Inbox
from repro.pp.rtl.outbox import Outbox
from repro.pp.rtl.icache import ICache, IRefillState
from repro.pp.rtl.dcache import DCache, DRefillState, SpillState
from repro.pp.rtl.stimulus import (
    StimulusSource,
    NaturalStimulus,
    QueueStimulus,
    RandomStimulus,
)
from repro.pp.rtl.core import PPCore, CoreConfig, TraceEvent, GARBAGE_Z, LOST_DATA

__all__ = [
    "MainMemory",
    "LINE_WORDS",
    "line_base",
    "MemoryController",
    "MemRequest",
    "Requester",
    "RegisterFile",
    "Inbox",
    "Outbox",
    "ICache",
    "IRefillState",
    "DCache",
    "DRefillState",
    "SpillState",
    "StimulusSource",
    "NaturalStimulus",
    "QueueStimulus",
    "RandomStimulus",
    "PPCore",
    "CoreConfig",
    "TraceEvent",
    "GARBAGE_Z",
    "LOST_DATA",
]
