"""The PP register file: 32 general registers, r0 hardwired to zero."""

from __future__ import annotations

from typing import List

from repro.pp.isa import NUM_REGS, WORD_MASK


class RegisterFile:
    """Simple synchronous register file with write-port logging.

    The log of (register, value) writes is how the Bug #5 experiment
    observes the corrupted-register symptom at the exact cycle it lands.
    """

    def __init__(self):
        self._regs: List[int] = [0] * NUM_REGS
        self.write_log: List[tuple] = []

    def read(self, index: int) -> int:
        if index == 0:
            return 0
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        if index == 0:
            return  # writes to r0 are discarded
        self._regs[index] = value & WORD_MASK
        self.write_log.append((index, value & WORD_MASK))

    def snapshot(self) -> List[int]:
        regs = list(self._regs)
        regs[0] = 0
        return regs
