"""The MAGIC Inbox: the unit that hands the PP its next protocol task.

A ``switch`` instruction reads the next task word from the Inbox.  If the
Inbox is not ready when the ``switch`` reaches execution, the PP stalls
(an *external* stall -- the asynchronous kind that makes Bug #5's window
of opportunity so improbable in random testing).

``ready_override`` is the force/release hook: when set, it replaces the
unit's own readiness for that cycle.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.pp.isa import WORD_MASK


class Inbox:
    def __init__(self, tasks: Optional[Iterable[int]] = None):
        self._tasks: List[int] = [t & WORD_MASK for t in (tasks or [])]
        self._cursor = 0
        #: Per-cycle forced readiness (None = use natural readiness).
        self.ready_override: Optional[bool] = None

    @property
    def natural_ready(self) -> bool:
        """The unit's own readiness.

        The software queue head always supplies at least the idle task, so
        the unforced Inbox is always ready; not-ready cycles come from the
        vector harness (or an explicit override), never from running out of
        queued tasks -- otherwise an exhausted queue would deadlock the PP.
        """
        return True

    def ready(self) -> bool:
        if self.ready_override is not None:
            return self.ready_override
        return self.natural_ready

    def take_task(self) -> int:
        """Pop the next task word (architecturally: what ``switch`` returns).

        Returns the idle-task word 0 when the queue is empty, matching the
        specification simulator's convention so forced-ready cycles stay
        architecturally comparable.
        """
        if self._cursor < len(self._tasks):
            word = self._tasks[self._cursor]
            self._cursor += 1
            return word
        return 0

    @property
    def tasks_taken(self) -> int:
        return self._cursor
