"""The PP instruction cache and its refill state machine.

Direct-mapped, line-oriented.  A miss raises IStall; the refill FSM
requests the line through the shared memory controller (waiting its turn
behind any data-cache transaction), fills a line buffer one word per
cycle, installs the line, and then spends one *fix-up* cycle restoring the
instruction registers before fetch resumes -- the cycle whose missing
MemStall qualification is Bug #4.

``force_hit`` on :meth:`lookup` is the vector harness's force/release hook
on the tag-compare result.  To keep forced control outcomes
architecturally silent, data always comes from a coherent source: a forced
hit on a non-resident address reads the backing memory directly, and a
forced miss on a resident line invalidates it first and refetches.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.pp.rtl.memctrl import MemoryController, MemRequest, Requester, WordDelivery
from repro.pp.rtl.memory import LINE_WORDS, MainMemory, line_base, word_in_line


class IRefillState(enum.Enum):
    IDLE = "IDLE"
    REQ = "REQ"      # waiting for the memory controller grant
    FILL = "FILL"    # words streaming into the line buffer
    FIXUP = "FIXUP"  # restoring instruction registers after the stall


class _Line:
    __slots__ = ("tag", "valid", "words")

    def __init__(self):
        self.tag = 0
        self.valid = False
        self.words: List[int] = [0] * LINE_WORDS


class ICache:
    def __init__(self, memory: MainMemory, memctrl: MemoryController, num_sets: int = 8):
        if num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        self.memory = memory
        self.memctrl = memctrl
        self.num_sets = num_sets
        self._sets = [_Line() for _ in range(num_sets)]
        self.state = IRefillState.IDLE
        self._refill_address = 0
        self._line_buffer: List[Optional[int]] = [None] * LINE_WORDS
        self._requested = False
        self.misses = 0
        self.hits = 0

    # -- address helpers -----------------------------------------------------

    def _set_index(self, address: int) -> int:
        return (line_base(address) // (LINE_WORDS * 4)) % self.num_sets

    def _tag(self, address: int) -> int:
        return line_base(address) // (LINE_WORDS * 4 * self.num_sets)

    def _resident(self, address: int) -> bool:
        line = self._sets[self._set_index(address)]
        return line.valid and line.tag == self._tag(address)

    # -- fetch port --------------------------------------------------------------

    def lookup(self, address: int, force_hit: Optional[bool] = None) -> Optional[int]:
        """Fetch the instruction word at ``address``.

        Returns the word on a hit, or ``None`` on a miss (the caller must
        then start a refill).  ``force_hit`` overrides the tag compare.
        """
        if self.state is not IRefillState.IDLE:
            return None  # port busy refilling
        resident = self._resident(address)
        hit = resident if force_hit is None else force_hit
        if not hit:
            self.misses += 1
            if force_hit is False and resident:
                # Forced miss on a resident line: invalidate so the refill
                # is a genuine one (instructions are read-only, no spill).
                self._sets[self._set_index(address)].valid = False
            return None
        self.hits += 1
        if resident:
            line = self._sets[self._set_index(address)]
            return line.words[word_in_line(address)]
        # Forced hit on a non-resident address: serve from backing memory
        # so forcing the control outcome never corrupts the data path.
        return self.memory.read_word(address)

    # -- refill FSM ----------------------------------------------------------------

    def begin_refill(self, address: int) -> None:
        if self.state is not IRefillState.IDLE:
            raise RuntimeError("I-refill already in progress")
        self.state = IRefillState.REQ
        self._refill_address = line_base(address)
        self._line_buffer = [None] * LINE_WORDS
        self._requested = False

    def tick(self) -> None:
        """Advance the refill FSM one cycle (request issue only; word
        arrivals come through :meth:`accept`)."""
        if self.state is IRefillState.REQ and not self._requested:
            self.memctrl.request(
                MemRequest(requester=Requester.ICACHE, address=self._refill_address)
            )
            self._requested = True

    def accept(self, delivery: WordDelivery) -> None:
        """Route a memory-controller word delivery into the line buffer."""
        if self.state is IRefillState.REQ:
            self.state = IRefillState.FILL
        if self.state is not IRefillState.FILL:
            raise RuntimeError(f"unexpected I-refill delivery in state {self.state}")
        self._line_buffer[delivery.word_offset] = delivery.value
        if delivery.is_last:
            self._install()
            self.state = IRefillState.FIXUP

    def corrupt_line_buffer(self, words: List[int]) -> None:
        """Bug #1 hook: overwrite the incoming line with foreign data (the
        unqualified interface signal latched another unit's transfer)."""
        for i, word in enumerate(words[:LINE_WORDS]):
            self._line_buffer[i] = word
        line = self._sets[self._set_index(self._refill_address)]
        if line.valid and line.tag == self._tag(self._refill_address):
            line.words = [w if w is not None else 0 for w in self._line_buffer]

    def finish_fixup(self) -> None:
        if self.state is not IRefillState.FIXUP:
            raise RuntimeError("finish_fixup outside FIXUP state")
        self.state = IRefillState.IDLE

    def _install(self) -> None:
        index = self._set_index(self._refill_address)
        line = self._sets[index]
        line.tag = self._tag(self._refill_address)
        line.valid = True
        line.words = [w if w is not None else 0 for w in self._line_buffer]

    @property
    def stalling(self) -> bool:
        """IStall: the fetch stage cannot supply instructions."""
        return self.state is not IRefillState.IDLE
