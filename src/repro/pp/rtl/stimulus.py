"""Stimulus sources: how test vectors force the PP's interface signals.

The paper converts a transition tour into simulator stimuli by forcing the
signals that interface to the control logic (Verilog ``force``/``release``)
so they match the abstract blocks' choices.  Here the same role is played
by a :class:`StimulusSource` the core consults at each *event*:

- one I-cache hit/miss outcome per fetch attempt,
- one D-cache hit/miss outcome per tag probe,
- one Inbox/Outbox readiness answer per query cycle,
- one dirty-victim outcome per D-refill,
- one pacing answer per memory-controller busy cycle.

Consuming by event rather than by absolute cycle keeps vector replay
robust to small timing skews between the abstract FSM model and the RTL.

Three sources cover the three validation strategies compared in the
benchmarks: :class:`QueueStimulus` (replaying generated vectors),
:class:`RandomStimulus` (the biased-random baseline), and
:class:`NaturalStimulus` (no forcing; the design's own behaviour).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Iterable, Optional


class StimulusSource:
    """Base: answer ``None`` everywhere (no forcing)."""

    def fetch_hit(self) -> Optional[bool]:
        return None

    def dcache_hit(self) -> Optional[bool]:
        return None

    def inbox_ready(self) -> Optional[bool]:
        return None

    def outbox_ready(self) -> Optional[bool]:
        return None

    def victim_dirty(self) -> Optional[bool]:
        return None

    def mem_pace(self) -> Optional[bool]:
        return None


class NaturalStimulus(StimulusSource):
    """No forcing at all: every unit uses its own tag compares and queues."""


class QueueStimulus(StimulusSource):
    """Replays per-event queues produced by the test-vector generator.

    When a queue runs dry the design falls back to natural behaviour,
    which lets a trace end gracefully even if the RTL spends a cycle or
    two more than the abstract model predicted.
    """

    def __init__(
        self,
        fetch_hits: Iterable[bool] = (),
        dcache_hits: Iterable[bool] = (),
        inbox_ready: Iterable[bool] = (),
        outbox_ready: Iterable[bool] = (),
        victim_dirty: Iterable[bool] = (),
        mem_pace: Iterable[bool] = (),
    ):
        self._fetch: Deque[bool] = deque(fetch_hits)
        self._dcache: Deque[bool] = deque(dcache_hits)
        self._inbox: Deque[bool] = deque(inbox_ready)
        self._outbox: Deque[bool] = deque(outbox_ready)
        self._victim: Deque[bool] = deque(victim_dirty)
        self._pace: Deque[bool] = deque(mem_pace)

    @staticmethod
    def _pop(queue: Deque[bool]) -> Optional[bool]:
        return queue.popleft() if queue else None

    def fetch_hit(self) -> Optional[bool]:
        return self._pop(self._fetch)

    def dcache_hit(self) -> Optional[bool]:
        return self._pop(self._dcache)

    def inbox_ready(self) -> Optional[bool]:
        return self._pop(self._inbox)

    def outbox_ready(self) -> Optional[bool]:
        return self._pop(self._outbox)

    def victim_dirty(self) -> Optional[bool]:
        return self._pop(self._victim)

    def mem_pace(self) -> Optional[bool]:
        return self._pop(self._pace)

    @property
    def exhausted(self) -> bool:
        return not (
            self._fetch or self._dcache or self._inbox or self._outbox
            or self._victim or self._pace
        )


class RandomStimulus(StimulusSource):
    """Biased-random forcing: the probabilistic baseline of section 1.

    Each event outcome is drawn independently with realistic probabilities
    (cache hits likely, external units usually ready), which is exactly why
    random testing struggles to reach conjunctions of improbable events.
    """

    def __init__(
        self,
        rng: random.Random,
        p_fetch_hit: float = 0.95,
        p_dcache_hit: float = 0.90,
        p_inbox_ready: float = 0.90,
        p_outbox_ready: float = 0.90,
        p_victim_dirty: float = 0.30,
        p_mem_advance: float = 0.90,
    ):
        self._rng = rng
        self.p_fetch_hit = p_fetch_hit
        self.p_dcache_hit = p_dcache_hit
        self.p_inbox_ready = p_inbox_ready
        self.p_outbox_ready = p_outbox_ready
        self.p_victim_dirty = p_victim_dirty
        self.p_mem_advance = p_mem_advance

    def fetch_hit(self) -> Optional[bool]:
        return self._rng.random() < self.p_fetch_hit

    def dcache_hit(self) -> Optional[bool]:
        return self._rng.random() < self.p_dcache_hit

    def inbox_ready(self) -> Optional[bool]:
        return self._rng.random() < self.p_inbox_ready

    def outbox_ready(self) -> Optional[bool]:
        return self._rng.random() < self.p_outbox_ready

    def victim_dirty(self) -> Optional[bool]:
        return self._rng.random() < self.p_victim_dirty

    def mem_pace(self) -> Optional[bool]:
        return self._rng.random() < self.p_mem_advance
