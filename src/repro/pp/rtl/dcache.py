"""The PP data cache: 2-way set associative, fill-before-spill,
critical-word-first restart, and split stores.

The three cooperating machines of Fig. 3.2 live here:

- **Refill FSM** (IDLE / SPILL / REQ / FILL_CRIT / FILL_REST): on a miss
  whose victim is dirty, the victim is first copied to the *spill buffer*
  (one cycle) so the fill can start immediately ("fill-before-spill");
  the fill delivers the missed word first and the stalled processor
  restarts on its arrival ("critical-word-first") while the rest of the
  line streams in.
- **Fill/Spill FSM** (EMPTY / HELD / WB): the spill buffer holds the dirty
  victim until the fill completes, then writes it back through the shared
  memory controller.
- **Split-store unit**: a store probes the tag in one cycle and performs
  the data write in a later idle cycle from the *pending-store buffer*.
  A following load to the same line, or a second store, takes a
  *conflict stall* while the pending store drains.

``force_hit`` / ``force_dirty_victim`` are the vector harness's
force/release hooks.  Forced outcomes stay architecturally silent: a
forced hit on a non-resident address reads/writes the backing memory
directly, and a forced miss on a resident line flushes it first.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

from repro.pp.isa import WORD_MASK
from repro.pp.rtl.memctrl import MemoryController, MemRequest, Requester, WordDelivery
from repro.pp.rtl.memory import LINE_WORDS, MainMemory, line_base, word_in_line


class DRefillState(enum.Enum):
    IDLE = "IDLE"
    SPILL = "SPILL"          # copying dirty victim into the spill buffer
    REQ = "REQ"              # waiting for the memory-controller grant
    FILL_CRIT = "FILL_CRIT"  # waiting for the critical word
    FILL_REST = "FILL_REST"  # remaining words streaming in


class SpillState(enum.Enum):
    EMPTY = "EMPTY"
    HELD = "HELD"    # victim parked, fill still in progress
    WB = "WB"        # write-back transaction issued, waiting completion


class _Line:
    __slots__ = ("tag", "valid", "dirty", "words")

    def __init__(self):
        self.tag = 0
        self.valid = False
        self.dirty = False
        self.words: List[int] = [0] * LINE_WORDS


class DCache:
    WAYS = 2

    def __init__(self, memory: MainMemory, memctrl: MemoryController, num_sets: int = 4):
        if num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        self.memory = memory
        self.memctrl = memctrl
        self.num_sets = num_sets
        self._sets = [[_Line() for _ in range(self.WAYS)] for _ in range(num_sets)]
        self._lru = [0] * num_sets  # way to evict next

        self.refill_state = DRefillState.IDLE
        self.spill_state = SpillState.EMPTY
        self._refill_address = 0
        self._refill_for_store = False
        self._line_buffer: List[Optional[int]] = [None] * LINE_WORDS
        self._requested = False
        self._spill_buffer: Optional[Tuple[int, List[int]]] = None
        self._wb_requested = False

        # Split-store unit: (address, value) awaiting its data-write cycle.
        self.pending_store: Optional[Tuple[int, int]] = None

        self.hits = 0
        self.misses = 0
        self.spills = 0

    # -- address helpers -----------------------------------------------------

    def _set_index(self, address: int) -> int:
        return (line_base(address) // (LINE_WORDS * 4)) % self.num_sets

    def _tag(self, address: int) -> int:
        return line_base(address) // (LINE_WORDS * 4 * self.num_sets)

    def _find(self, address: int) -> Optional[_Line]:
        tag = self._tag(address)
        for line in self._sets[self._set_index(address)]:
            if line.valid and line.tag == tag:
                return line
        return None

    def resident(self, address: int) -> bool:
        return self._find(address) is not None

    # -- tag probe ------------------------------------------------------------

    def probe(self, address: int, force_hit: Optional[bool] = None) -> bool:
        """Tag-compare for a load or the probe cycle of a split store."""
        resident = self.resident(address)
        hit = resident if force_hit is None else force_hit
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            if force_hit is False and resident:
                self._flush_line(address)
        return hit

    def _flush_line(self, address: int) -> None:
        """Invalidate a resident line (write back if dirty) so a forced
        miss is architecturally silent."""
        line = self._find(address)
        if line is None:
            return
        if line.dirty:
            base = line.tag * self.num_sets * LINE_WORDS * 4
            base += self._set_index(address) * LINE_WORDS * 4
            self.memory.write_line(base, line.words)
        line.valid = False
        line.dirty = False

    # -- hit-path data access ---------------------------------------------------

    def read_hit(self, address: int) -> int:
        """Data for an access that (actually or forcibly) hit."""
        line = self._find(address)
        if line is not None:
            return line.words[word_in_line(address)]
        return self.memory.read_word(address)

    def write_hit(self, address: int, value: int) -> None:
        """Commit a store's data into a line that (actually or forcibly) hit."""
        line = self._find(address)
        if line is not None:
            line.words[word_in_line(address)] = value & WORD_MASK
            line.dirty = True
        else:
            # Forced hit on a non-resident address: write through so the
            # architectural state stays correct.
            self.memory.write_word(address, value)

    # -- split-store unit ----------------------------------------------------------

    def post_store(self, address: int, value: int) -> None:
        """Park a store (after its tag probe) for a later data-write cycle."""
        if self.pending_store is not None:
            raise RuntimeError("pending-store buffer already occupied")
        self.pending_store = (address & WORD_MASK, value & WORD_MASK)

    def conflicts_with_pending(self, address: int) -> bool:
        """A following load to the pending store's line conflicts."""
        if self.pending_store is None:
            return False
        return line_base(address) == line_base(self.pending_store[0])

    def drain_pending_store(self) -> None:
        """The data-write cycle of the split store."""
        if self.pending_store is None:
            return
        address, value = self.pending_store
        self.write_hit(address, value)
        self.pending_store = None

    # -- refill FSM --------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """The cache cannot accept a new miss (refill or write-back active).

        A HELD spill buffer also blocks: starting a second dirty-victim
        refill before the write-back drains would overwrite the parked
        victim and lose its data.
        """
        return (
            self.refill_state is not DRefillState.IDLE
            or self.spill_state is not SpillState.EMPTY
        )

    @property
    def filling_rest(self) -> bool:
        return self.refill_state is DRefillState.FILL_REST

    def start_refill(
        self,
        address: int,
        for_store: bool,
        force_dirty_victim: Optional[bool] = None,
    ) -> None:
        if self.busy:
            raise RuntimeError("D-refill started while cache busy")
        self._refill_address = address & WORD_MASK
        self._refill_for_store = for_store
        self._line_buffer = [None] * LINE_WORDS
        self._requested = False
        victim = self._victim_line(address)
        actually_dirty = victim.valid and victim.dirty
        victim_dirty = actually_dirty
        if force_dirty_victim is not None and victim.valid:
            victim_dirty = force_dirty_victim
        if victim_dirty:
            # Fill-before-spill: one cycle to park the victim, then fill.
            # (A clean victim forced dirty just writes back its unchanged
            # data -- architecturally silent.)
            self.refill_state = DRefillState.SPILL
        else:
            if actually_dirty:
                # Forced-clean eviction of a genuinely dirty victim must
                # still preserve the data: write it back directly so the
                # forced control outcome stays architecturally silent.
                set_index = self._set_index(address)
                base = victim.tag * self.num_sets * LINE_WORDS * 4
                base += set_index * LINE_WORDS * 4
                self.memory.write_line(base, victim.words)
            victim.valid = False
            victim.dirty = False
            self.refill_state = DRefillState.REQ

    def _victim_line(self, address: int) -> _Line:
        ways = self._sets[self._set_index(address)]
        for line in ways:
            if not line.valid:
                return line
        return ways[self._lru[self._set_index(address)]]

    def tick(self) -> None:
        """Advance the refill / spill machines one cycle."""
        if self.refill_state is DRefillState.SPILL:
            self._park_victim()
            self.refill_state = DRefillState.REQ
        if self.refill_state is DRefillState.REQ and not self._requested:
            self.memctrl.request(
                MemRequest(
                    requester=Requester.DCACHE,
                    address=self._refill_address,
                    critical_first=True,
                )
            )
            self._requested = True
            self.refill_state = DRefillState.FILL_CRIT
        if (
            self.spill_state is SpillState.HELD
            and self.refill_state is DRefillState.IDLE
            and not self._wb_requested
        ):
            address, words = self._spill_buffer
            self.memctrl.request(
                MemRequest(requester=Requester.SPILL_WB, address=address, write_words=words)
            )
            self._wb_requested = True
            self.spill_state = SpillState.WB

    def _park_victim(self) -> None:
        victim = self._victim_line(self._refill_address)
        set_index = self._set_index(self._refill_address)
        victim_base = victim.tag * self.num_sets * LINE_WORDS * 4 + set_index * LINE_WORDS * 4
        self._spill_buffer = (victim_base, list(victim.words))
        self.spill_state = SpillState.HELD
        self.spills += 1
        victim.valid = False
        victim.dirty = False

    def accept(self, delivery: WordDelivery) -> Optional[int]:
        """Route a word delivery; returns the critical word's value when it
        arrives (the restart trigger), else None."""
        if delivery.requester is Requester.SPILL_WB:
            self.spill_state = SpillState.EMPTY
            self._spill_buffer = None
            self._wb_requested = False
            return None
        if self.refill_state not in (DRefillState.FILL_CRIT, DRefillState.FILL_REST):
            raise RuntimeError(f"unexpected D-refill delivery in state {self.refill_state}")
        self._line_buffer[delivery.word_offset] = delivery.value
        critical_value: Optional[int] = None
        if delivery.word_index == 0:
            critical_value = delivery.value
            self.refill_state = DRefillState.FILL_REST
        if delivery.is_last:
            self._install()
            self.refill_state = DRefillState.IDLE
        return critical_value

    def _install(self) -> None:
        set_index = self._set_index(self._refill_address)
        line = self._victim_line(self._refill_address)
        line.tag = self._tag(self._refill_address)
        line.valid = True
        line.dirty = False
        line.words = [w if w is not None else 0 for w in self._line_buffer]
        self._lru[set_index] = (self._lru[set_index] + 1) % self.WAYS
        # The fill is done: issue the parked victim's write-back in the same
        # cycle (as the control FSM does), so HELD never lingers into a
        # cycle where a new miss could clobber the spill buffer.
        if self.spill_state is SpillState.HELD and not self._wb_requested:
            address, words = self._spill_buffer
            self.memctrl.request(
                MemRequest(requester=Requester.SPILL_WB, address=address, write_words=words)
            )
            self._wb_requested = True
            self.spill_state = SpillState.WB

    # -- architectural flush --------------------------------------------------------

    def flush_all(self) -> None:
        """Write every dirty line (and any parked spill buffer or pending
        store) back to memory, for end-of-run architectural comparison."""
        self.drain_pending_store()
        if self._spill_buffer is not None:
            address, words = self._spill_buffer
            self.memory.write_line(address, words)
            self._spill_buffer = None
            self.spill_state = SpillState.EMPTY
            self._wb_requested = False
        for set_index, ways in enumerate(self._sets):
            for line in ways:
                if line.valid and line.dirty:
                    base = line.tag * self.num_sets * LINE_WORDS * 4
                    base += set_index * LINE_WORDS * 4
                    self.memory.write_line(base, line.words)
                    line.dirty = False
