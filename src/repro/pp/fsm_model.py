"""The Synchronous Murphi model of the PP control logic (Fig. 3.2).

This is what the paper's HDL-to-FSM translator produces from the annotated
Verilog: the interacting control FSMs (I-cache refill, D-cache refill,
fill/spill, split-store/conflict, stall) plus abstract models of the
datapath and the other MAGIC units.  Datapath values are reduced to the
paper's distinguished cases -- addresses to a hit/miss bit, instructions to
the five classes of Table 3.1 -- and every abstract input (cache outcome,
Inbox/Outbox readiness, memory pacing, victim dirtiness, address-conflict
comparator) is a nondeterministic choice the enumerator permutes.

The model mirrors the RTL core's cycle structure so that a transition tour
of this graph maps onto per-event stimulus queues for the RTL simulation
(see :mod:`repro.vectors`).  :meth:`PPControlModel.transition_events`
reports which interface events fire on a given transition; the vector
generator uses it to know which queues each tour arc feeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.smurphi import (
    BoolType,
    ChoicePoint,
    EnumType,
    RangeType,
    StateVar,
    SyncModel,
)

#: Abstract pipeline-register contents: an instruction class or a bubble.
PIPE_CLASSES = ("BUBBLE", "ALU", "LD", "SD", "SWITCH", "SEND")
IREFILL_STATES = ("IDLE", "REQ", "FILL", "FIXUP")
DREFILL_STATES = ("IDLE", "SPILL", "REQ", "FILL_CRIT", "FILL_REST")
SPILL_STATES = ("EMPTY", "HELD", "WB")
MISS_OWNERS = ("NONE", "LOAD", "STORE")

FETCH_CLASSES = ("ALU", "LD", "SD", "SWITCH", "SEND")


@dataclass(frozen=True)
class PPModelConfig:
    """Scaling knobs for the control model.

    ``fill_words`` is the number of memory-controller word deliveries per
    line refill; it sizes the fill counters and is the main lever on the
    reachable state count (the Table 3.2 sweep varies it).
    """

    fill_words: int = 2
    model_dual_issue: bool = False
    #: Trailing write-back pipeline stages tracked by the control (0-3).
    #: Each multiplies the state space by ~|classes| -- the lever used to
    #: scale the model toward the paper's 200K-state graph.
    extra_pipe_stages: int = 0
    #: Memory-port word deliveries a victim write-back takes.  1 (the
    #: default) keeps the original single-beat spill; >1 adds a spill
    #: counter so the WB occupancy window -- and its interleavings with
    #: both refill engines -- deepens, the "spill" axis of the paper-scale
    #: product space.
    spill_words: int = 1
    #: Route the build to the squashing-branch extension
    #: (:class:`repro.pp.branches.BranchPPControlModel`): the BR class in
    #: every pipe register plus the branch-outcome choice, the "branch"
    #: axis of the product space.
    model_branches: bool = False

    def __post_init__(self):
        if self.fill_words < 1:
            raise ValueError("fill_words must be >= 1")
        if not 0 <= self.extra_pipe_stages <= 3:
            raise ValueError("extra_pipe_stages must be in 0..3")
        if self.spill_words < 1:
            raise ValueError("spill_words must be >= 1")

    @classmethod
    def full(cls) -> "PPModelConfig":
        """The ``pp-full`` paper-scale configuration (Table 3.2's shape).

        Deep fill streams, the full write-back pipe and a two-beat victim
        spill put the reachable graph at the ~200K-state scale of the
        paper's full PP control model (229,571 states), where parallel
        enumeration has enough work per wave to pay off.
        """
        return cls(fill_words=6, extra_pipe_stages=3, spill_words=2)


class PPControlModel:
    """Builder/interpreter for the PP control model.

    Use :func:`build_pp_control_model` for the plain :class:`SyncModel`;
    keep a reference to this object when you also need per-transition
    event information (the vector generator does).
    """

    def __init__(self, config: Optional[PPModelConfig] = None):
        self.config = config or PPModelConfig()
        fw = self.config.fill_words
        pipe = EnumType("pipe_class", PIPE_CLASSES)
        self.state_vars = [
            StateVar("ifq", pipe, "BUBBLE"),
            StateVar("ex", pipe, "BUBBLE"),
            StateVar("mem", pipe, "BUBBLE"),
            StateVar("irefill", EnumType("irefill", IREFILL_STATES), "IDLE"),
            StateVar("ifill_cnt", RangeType(0, fw), 0),
            StateVar("drefill", EnumType("drefill", DREFILL_STATES), "IDLE"),
            StateVar("dfill_cnt", RangeType(0, fw), 0),
            StateVar("spill", EnumType("spill", SPILL_STATES), "EMPTY"),
            StateVar("st_pend", BoolType(), False),
            StateVar("miss_owner", EnumType("miss_owner", MISS_OWNERS), "NONE"),
        ]
        for i in range(self.config.extra_pipe_stages):
            self.state_vars.append(StateVar(f"wb{i}", pipe, "BUBBLE"))
        if self.config.spill_words > 1:
            self.state_vars.append(
                StateVar("spill_cnt", RangeType(0, self.config.spill_words), 0)
            )
        choices = [
            ChoicePoint(
                "fetch_class",
                EnumType("fetch_class", FETCH_CLASSES),
                guard=lambda s: s["irefill"] == "IDLE",
            ),
            ChoicePoint(
                "i_hit", BoolType(), guard=lambda s: s["irefill"] == "IDLE",
                inactive_value=True,
            ),
            ChoicePoint(
                "d_hit", BoolType(), guard=lambda s: s["mem"] in ("LD", "SD"),
                inactive_value=True,
            ),
            ChoicePoint(
                "conflict", BoolType(),
                guard=lambda s: s["mem"] == "LD" and s["st_pend"],
            ),
            ChoicePoint(
                "victim_dirty", BoolType(),
                guard=lambda s: s["mem"] in ("LD", "SD"),
            ),
            ChoicePoint(
                "inbox_ready", BoolType(), guard=lambda s: s["mem"] == "SWITCH",
                inactive_value=True,
            ),
            ChoicePoint(
                "outbox_ready", BoolType(), guard=lambda s: s["mem"] == "SEND",
                inactive_value=True,
            ),
            ChoicePoint(
                "mem_word", BoolType(), guard=self._port_busy, inactive_value=True,
            ),
        ]
        if self.config.model_dual_issue:
            choices.append(
                ChoicePoint(
                    "dual", BoolType(), guard=lambda s: s["irefill"] == "IDLE",
                )
            )
        self.choices = choices
        self.choice_names = [c.name for c in choices]

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _port_busy(state: Mapping) -> bool:
        """The shared memory port is transferring (a word may arrive)."""
        return (
            state["drefill"] in ("FILL_CRIT", "FILL_REST")
            or state["irefill"] == "FILL"
            or state["spill"] == "WB"
        )

    # -- the synchronous transition function ----------------------------------------

    def step(self, state: Mapping, choice: Mapping) -> Dict:
        ns, _ = self._step(state, choice)
        return ns

    def transition_events(self, state: Mapping, choice: Mapping) -> List[Tuple]:
        """Interface events fired by this transition, in order:

        - ``("fetch", class, i_hit, dual)`` -- an instruction (pair) was
          fetched, or an I-miss started (``i_hit`` False, no class issued).
        - ``("d_probe", hit)`` -- the D-cache tag compare ran.
        - ``("refill_start", victim_dirty)`` -- a D-refill began.
        - ``("conflict", bool)`` -- the load/pending-store comparator ran.
        - ``("inbox_query", ready)`` / ``("outbox_query", ready)``.
        - ``("mem_word", bool)`` -- the memory port was busy and did/did not
          deliver a word this cycle.
        """
        _, events = self._step(state, choice)
        return events

    def _step(self, state: Mapping, c: Mapping) -> Tuple[Dict, List[Tuple]]:
        fw = self.config.fill_words
        ns = dict(state)
        events: List[Tuple] = []

        # ---- shared memory port: one word may arrive for the owner.
        port_owner = None
        if state["drefill"] in ("FILL_CRIT", "FILL_REST"):
            port_owner = "D"
        elif state["irefill"] == "FILL":
            port_owner = "I"
        elif state["spill"] == "WB":
            port_owner = "WB"
        delivered = port_owner is not None and c["mem_word"]
        if port_owner is not None:
            events.append(("mem_word", bool(c["mem_word"])))

        d_critical = False
        d_fill_done = False
        if port_owner == "D" and delivered:
            if state["drefill"] == "FILL_CRIT":
                d_critical = True
                if fw == 1:
                    ns["drefill"] = "IDLE"
                    ns["dfill_cnt"] = 0
                    d_fill_done = True
                else:
                    ns["drefill"] = "FILL_REST"
                    ns["dfill_cnt"] = 1
            else:  # FILL_REST
                count = state["dfill_cnt"] + 1
                ns["dfill_cnt"] = count
                if count >= fw:
                    ns["drefill"] = "IDLE"
                    ns["dfill_cnt"] = 0
                    d_fill_done = True
        elif port_owner == "I" and delivered:
            count = state["ifill_cnt"] + 1
            ns["ifill_cnt"] = count
            if count >= fw:
                ns["irefill"] = "FIXUP"
                ns["ifill_cnt"] = 0
        elif port_owner == "WB" and delivered:
            sw = self.config.spill_words
            if sw == 1:
                ns["spill"] = "EMPTY"
            else:
                count = state["spill_cnt"] + 1
                if count >= sw:
                    ns["spill"] = "EMPTY"
                    ns["spill_cnt"] = 0
                else:
                    ns["spill_cnt"] = count

        # ---- FSM housekeeping transitions (no port needed).
        if state["drefill"] == "SPILL":
            ns["drefill"] = "REQ"
        if state["irefill"] == "FIXUP":
            ns["irefill"] = "IDLE"

        # ---- port grants, priority D > I > spill-WB.
        port_busy_next = (
            ns["drefill"] in ("FILL_CRIT", "FILL_REST")
            or ns["irefill"] == "FILL"
            or ns["spill"] == "WB"
        )
        if ns["drefill"] == "REQ" and state["drefill"] == "REQ" and not port_busy_next:
            ns["drefill"] = "FILL_CRIT"
            port_busy_next = True
        if ns["irefill"] == "REQ" and not port_busy_next and ns["drefill"] == "IDLE":
            ns["irefill"] = "FILL"
            port_busy_next = True
        if (
            ns["spill"] == "HELD"
            and ns["drefill"] == "IDLE"
            and not port_busy_next
            and ns["irefill"] != "FILL"
        ):
            ns["spill"] = "WB"

        # ---- MEM stage.
        mem = state["mem"]
        mem_done = False
        conflict_drained = False
        if mem in ("BUBBLE", "ALU"):
            mem_done = True
        elif mem == "LD":
            if state["miss_owner"] == "LOAD":
                if d_critical:
                    ns["miss_owner"] = "NONE"
                    mem_done = True  # critical-word-first restart
            elif state["st_pend"]:
                events.append(("conflict", bool(c["conflict"])))
                if c["conflict"]:
                    ns["st_pend"] = False  # conflict stall: drain, retry next cycle
                    conflict_drained = True
                else:
                    mem_done, conflict_drained = self._ld_access(state, ns, c, events)
            else:
                mem_done, conflict_drained = self._ld_access(state, ns, c, events)
        elif mem == "SD":
            if state["miss_owner"] == "STORE":
                if ns["drefill"] == "IDLE" and d_fill_done:
                    ns["miss_owner"] = "NONE"
                    ns["st_pend"] = True  # split store posted after refill
                    mem_done = True
            elif state["st_pend"]:
                ns["st_pend"] = False  # second store: conflict stall to drain
                conflict_drained = True
            elif self._dcache_busy(state):
                pass  # structural stall
            else:
                events.append(("d_probe", bool(c["d_hit"])))
                if c["d_hit"]:
                    ns["st_pend"] = True
                    mem_done = True
                else:
                    events.append(("refill_start", bool(c["victim_dirty"])))
                    self._start_refill(ns, c)
                    ns["miss_owner"] = "STORE"
        elif mem == "SWITCH":
            events.append(("inbox_query", bool(c["inbox_ready"])))
            mem_done = bool(c["inbox_ready"])
        elif mem == "SEND":
            events.append(("outbox_query", bool(c["outbox_ready"])))
            mem_done = bool(c["outbox_ready"])

        # ---- split store's data-write cycle (cache idle, no mem op using it).
        if (
            ns["st_pend"]
            and not conflict_drained
            and mem in ("BUBBLE", "ALU")
            and state["drefill"] == "IDLE"
        ):
            ns["st_pend"] = False

        # ---- pipe advance (write-back stages drain even when MEM stalls).
        previous = state["mem"] if mem_done else "BUBBLE"
        for i in range(self.config.extra_pipe_stages):
            ns[f"wb{i}"], previous = previous, state[f"wb{i}"]
        ifq_after = state["ifq"]
        if mem_done:
            events.append(("pipe_advance",))
            ns["mem"] = state["ex"]
            ns["ex"] = state["ifq"]
            ifq_after = "BUBBLE"

        # ---- fetch (only when the I-cache front end is idle this cycle).
        if state["irefill"] == "IDLE" and ifq_after == "BUBBLE":
            dual = bool(c.get("dual", False))
            events.append(("fetch", c["fetch_class"], bool(c["i_hit"]), dual))
            if c["i_hit"]:
                ifq_after = c["fetch_class"]
            else:
                ns["irefill"] = "REQ"
        ns["ifq"] = ifq_after

        return ns, events

    def _ld_access(
        self, state: Mapping, ns: Dict, c: Mapping, events: List[Tuple]
    ) -> Tuple[bool, bool]:
        """Load tag probe (no conflict): returns (mem_done, drained)."""
        if self._dcache_busy(state):
            return False, False  # structural stall
        events.append(("d_probe", bool(c["d_hit"])))
        if c["d_hit"]:
            return True, False
        events.append(("refill_start", bool(c["victim_dirty"])))
        if state["st_pend"]:
            ns["st_pend"] = False  # drain before the victim spill
        self._start_refill(ns, c)
        ns["miss_owner"] = "LOAD"
        return False, False

    @staticmethod
    def _dcache_busy(state: Mapping) -> bool:
        return state["drefill"] != "IDLE" or state["spill"] == "WB"

    @staticmethod
    def _start_refill(ns: Dict, c: Mapping) -> None:
        if c["victim_dirty"]:
            ns["drefill"] = "SPILL"
            ns["spill"] = "HELD"
        else:
            ns["drefill"] = "REQ"
        ns["dfill_cnt"] = 0

    # -- SyncModel view ----------------------------------------------------------

    def build(self) -> SyncModel:
        # Non-default scaling knobs join the name (default configs keep
        # the historical name, so goldens/checkpoints stay stable).
        cfg = self.config
        parts = [f"fill_words={cfg.fill_words}"]
        if cfg.extra_pipe_stages:
            parts.append(f"extra_pipe_stages={cfg.extra_pipe_stages}")
        if cfg.spill_words > 1:
            parts.append(f"spill_words={cfg.spill_words}")
        if cfg.model_dual_issue:
            parts.append("dual_issue")
        if cfg.model_branches:
            parts.append("branches")
        invariants = {
            # Only one unit can own the shared memory port -- the
            # interlock the paper credits for the tame state count.
            "one_port_owner": lambda s: (
                (s["drefill"] in ("FILL_CRIT", "FILL_REST"))
                + (s["irefill"] == "FILL")
                + (s["spill"] == "WB")
            ) <= 1,
            # Before the critical word, a D-refill has a recorded owner.
            "refill_has_owner": lambda s: (
                s["drefill"] not in ("SPILL", "REQ", "FILL_CRIT")
                or s["miss_owner"] != "NONE"
            ),
            # The fill counters only run while their fill is streaming.
            "dfill_counter_gated": lambda s: (
                s["drefill"] == "FILL_REST" or s["dfill_cnt"] == 0
            ),
            "ifill_counter_gated": lambda s: (
                s["irefill"] == "FILL" or s["ifill_cnt"] == 0
            ),
        }
        if cfg.spill_words > 1:
            invariants["spill_counter_gated"] = lambda s: (
                s["spill"] == "WB" or s["spill_cnt"] == 0
            )
        return SyncModel(
            name=f"pp_control({', '.join(parts)})",
            state_vars=self.state_vars,
            choices=self.choices,
            next_state=self.step,
            invariants=invariants,
        )


def pp_control_model(config: Optional[PPModelConfig] = None) -> PPControlModel:
    """The right builder object for ``config``.

    Constructing :class:`PPControlModel` directly silently ignores
    ``model_branches`` (the branch-kill machinery lives in the
    :class:`~repro.pp.branches.BranchPPControlModel` subclass); every
    consumer that accepts an arbitrary config must come through here.
    """
    config = config or PPModelConfig()
    if config.model_branches:
        # Lazy import: branches.py imports this module.
        from repro.pp.branches import BranchPPControlModel

        return BranchPPControlModel(config)
    return PPControlModel(config)


def build_pp_control_model(config: Optional[PPModelConfig] = None) -> SyncModel:
    """Public entry point: the PP control logic as a SyncModel."""
    return pp_control_model(config).build()
