"""Command-line interface: the validation flow as shell commands.

A production release of this system is driven from build scripts, so the
pipeline is exposed as subcommands::

    python -m repro enumerate --fill-words 2 --jobs 4 --graph-out pp.graph.json
    python -m repro tours     --graph pp.graph.json --limit 400
    python -m repro validate  --fill-words 2 --cache-dir .repro-cache [--bug 5]
    python -m repro campaign  --fill-words 2 --jobs 4
    python -m repro translate design.v --top arbiter
    python -m repro murphi    model.m
    python -m repro errata
    python -m repro report    run.json [--curve curve.csv]

Every command prints a compact human-readable report; ``--graph-out``
persists the enumerated state graph as JSON for reuse.  ``--jobs`` shards
enumeration and trace simulation across worker processes; ``--cache-dir``
persists the expensive pipeline artifacts (state graph, tours, traces) so
repeat runs skip straight to simulation, and ``--no-cache`` forces a
rebuild that refreshes the stored entry.  ``--kernel interpreted``
switches enumeration off the compiled transition kernel and onto the
fully validated reference path (bit-identical output, several times
slower) -- the debugging escape hatch.

Observability: ``--trace-out`` writes a Chrome ``trace_event`` file (open
in chrome://tracing or Perfetto; use a ``.jsonl`` suffix to stream the raw
event log instead), ``--metrics-out`` writes the unified machine-readable
:class:`~repro.obs.report.RunReport` JSON (metrics + per-phase timings +
stats), ``--log-level`` enables structured stderr logging, and ``repro
report`` renders a saved run JSON back into the human tables, including
Fig 4.1-style coverage-curve data.

Performance observability: a background :class:`ResourceSampler` adds
RSS / CPU / frontier-size counter tracks to any ``--trace-out`` trace
(``--sample-interval`` tunes the tick, 0 disables); ``--profile-out``
arms the opt-in sampling profiler and writes a collapsed-stack profile
(render with flamegraph.pl / speedscope); ``--heartbeat-out`` streams
machine-readable JSONL progress heartbeats while a live status line is
rewritten on stderr whenever it is a terminal (``--progress`` forces it
on, ``--no-progress`` off).  ``repro bench`` runs the registered
benchmark suite, appends one ``repro.bench-result/1`` line per benchmark
to ``BENCH_history.jsonl`` keyed by git SHA, and gates on regressions
against the trailing history (``--report-only`` demotes failures to
warnings).

Resilience: ``--checkpoint-dir`` snapshots enumeration at wave boundaries
(``--checkpoint-every`` controls the cadence) and ``--resume`` continues
an interrupted run from the newest snapshot to a bit-identical graph;
``repro checkpoints DIR`` lists, verifies, inspects and prunes a
checkpoint store.  ``--wall-budget`` / ``--memory-budget`` /
``--state-budget`` bound the run: on exhaustion the partial result is
still written and reported, flagged as truncated.

Exit codes (stable; scripts and CI may rely on them):

- ``0`` -- success: the run completed and found what it should have found
  (for ``validate --bug N``, "success" means the injected bug *was*
  detected).
- ``1`` -- validation outcome failure: an unexpected divergence, or an
  injected bug the generated vectors missed.
- ``2`` -- usage or input error (bad flags, unreadable files, unusable
  checkpoint store).
- ``3`` -- a model invariant failed on a reachable state
  (:class:`~repro.enumeration.bfs.InvariantViolation`): the abstract
  model itself is wrong, which outranks any validation verdict.
- ``4`` -- a resource budget truncated the run; results cover only the
  explored fraction and are reported before exiting.
- ``5`` -- ``repro bench`` detected a performance regression against the
  trailing history baseline (suppressed by ``--report-only``).
- ``130`` -- the run was interrupted (SIGINT *or* SIGTERM; the one-shot
  commands route both through the same wave-boundary checkpoint logic,
  so with ``--checkpoint-dir`` the partial work is resumable with
  ``--resume``).

``repro serve`` runs the validation service: a crash-tolerant daemon
accepting enumerate/validate/campaign jobs over HTTP/JSON with a durable
job journal, bounded-queue admission control (429 + ``Retry-After``
under saturation), content-addressed job dedup, per-job SSE progress
streams, and graceful SIGTERM drain.  See :mod:`repro.serve`.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from typing import List, Optional

from repro.bugs import BUGS
from repro.core.report import format_campaign_table
from repro.enumeration import (
    KERNEL_MODES,
    StateGraph,
    enumerate_states,
    enumerate_states_parallel,
)
from repro.enumeration.bfs import InvariantViolation
from repro.obs import (
    Observer,
    ProgressReporter,
    ResourceSampler,
    RunReport,
    SamplingProfiler,
    Tracer,
    resolve,
    stderr_if_tty,
)
from repro.pp.fsm_model import PPModelConfig, build_pp_control_model
from repro.resilience import (
    Budget,
    CheckpointConfig,
    CheckpointError,
    CheckpointStore,
    atomic_write_text,
    install_term_to_interrupt,
)
from repro.tour import IndexedTourGenerator, TourGenerator, arc_coverage

#: Documented exit codes (see module docstring).  When several apply the
#: most diagnostic wins: invariant violation > budget truncation > missed
#: divergence.
EXIT_OK = 0
EXIT_VALIDATION_FAILED = 1
EXIT_USAGE = 2
EXIT_INVARIANT_VIOLATION = 3
EXIT_BUDGET_TRUNCATED = 4
EXIT_PERF_REGRESSION = 5
EXIT_INTERRUPTED = 130  # 128 + SIGINT, the shell convention


#: Named model scales.  ``pp-full`` is the paper-scale control model
#: (~205K states vs the paper's 229,571); ``pp-default`` is the fast
#: development scale every command uses unless told otherwise.
MODEL_PRESETS = {
    "pp-default": PPModelConfig(fill_words=2),
    "pp-full": PPModelConfig.full(),
}


def _model_config(args) -> PPModelConfig:
    base = MODEL_PRESETS[getattr(args, "config", None) or "pp-default"]
    return PPModelConfig(
        fill_words=(args.fill_words if args.fill_words is not None
                    else base.fill_words),
        extra_pipe_stages=(args.extra_pipe_stages
                           if args.extra_pipe_stages is not None
                           else base.extra_pipe_stages),
        spill_words=(args.spill_words if args.spill_words is not None
                     else base.spill_words),
        model_branches=bool(getattr(args, "branches", False)
                            or base.model_branches),
    )


def _model_config_dict(args) -> dict:
    cfg = _model_config(args)
    return {
        "config": getattr(args, "config", None) or "pp-default",
        "fill_words": cfg.fill_words,
        "extra_pipe_stages": cfg.extra_pipe_stages,
        "spill_words": cfg.spill_words,
        "model_branches": cfg.model_branches,
    }


def _add_model_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--config", choices=sorted(MODEL_PRESETS),
                        default=None,
                        help="named model scale: 'pp-default' (fast, "
                             "2,135 states) or 'pp-full' (paper scale, "
                             "~205K states); individual flags below "
                             "override preset fields")
    parser.add_argument("--fill-words", type=int, default=None,
                        help="refill line length in word deliveries "
                             "(default 2)")
    parser.add_argument("--extra-pipe-stages", type=int, default=None,
                        help="trailing write-back stages tracked by control "
                             "(default 0)")
    parser.add_argument("--spill-words", type=int, default=None,
                        help="spill-buffer depth modelled during write-back "
                             "delivery (default 1 = not modelled)")
    parser.add_argument("--branches", action="store_true",
                        help="track branch-kill state in the control model")


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for enumeration and trace "
                             "simulation (0 = all CPUs)")


def _add_kernel_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--kernel", choices=list(KERNEL_MODES),
                        default="compiled",
                        help="transition kernel for enumeration: 'compiled' "
                             "precompiles choice tables and the state codec "
                             "(default); 'interpreted' is the fully "
                             "validated reference path.  Both produce "
                             "bit-identical graphs")


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir",
                        help="persist/reuse pipeline artifacts "
                             "(state graph, tours, traces) in this directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore cached artifacts and rebuild "
                             "(the fresh build is still stored)")
    incremental = parser.add_mutually_exclusive_group()
    incremental.add_argument("--incremental", dest="incremental",
                             action="store_true", default=True,
                             help="serve the build from a cached *related* "
                                  "model where a diff proves it sound: "
                                  "adopt entries on a no-op edit, "
                                  "re-enumerate only the dirty region on a "
                                  "localized edit (default; results are "
                                  "byte-identical to a cold build)")
    incremental.add_argument("--no-incremental", dest="incremental",
                             action="store_false",
                             help="disable incremental reuse (A/B switch; "
                                  "only ever costs time)")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write a Chrome trace_event file (open in "
                             "chrome://tracing / Perfetto); a .jsonl suffix "
                             "streams the raw JSONL event log instead")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write the unified run report JSON (metrics, "
                             "per-phase timings, stats); render it later "
                             "with 'repro report'")
    parser.add_argument("--log-level",
                        choices=["debug", "info", "warning", "error"],
                        help="enable structured logging to stderr")
    parser.add_argument("--heartbeat-out", metavar="PATH",
                        help="stream machine-readable JSONL progress "
                             "heartbeats (repro.heartbeat/1) to this file")
    parser.add_argument("--sample-interval", type=float, default=0.25,
                        metavar="SECONDS",
                        help="resource sampler tick: RSS/CPU/frontier "
                             "counter tracks in --trace-out traces and a "
                             "resources summary in the run report "
                             "(default 0.25; 0 disables)")
    parser.add_argument("--profile-out", metavar="PATH",
                        help="arm the sampling profiler and write a "
                             "collapsed-stack profile here (render with "
                             "flamegraph.pl or speedscope)")
    progress = parser.add_mutually_exclusive_group()
    progress.add_argument("--progress", action="store_true",
                          help="force the live stderr status line on "
                               "(default: only when stderr is a terminal)")
    progress.add_argument("--no-progress", action="store_true",
                          help="suppress the live stderr status line")


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-dir", metavar="DIR",
                        help="snapshot enumeration state into this directory "
                             "at wave boundaries (resumable with --resume)")
    parser.add_argument("--checkpoint-every", type=int, default=1,
                        metavar="N",
                        help="checkpoint every N enumeration waves "
                             "(default: every wave)")
    parser.add_argument("--resume", action="store_true",
                        help="continue from the newest checkpoint in "
                             "--checkpoint-dir (bit-identical to an "
                             "uninterrupted run)")
    parser.add_argument("--wall-budget", type=float, metavar="SECONDS",
                        help="stop enumerating at the first wave boundary "
                             "past this wall-clock budget (exit code 4)")
    parser.add_argument("--memory-budget", type=float, metavar="MB",
                        help="stop enumerating when peak RSS exceeds this "
                             "many megabytes (exit code 4)")
    parser.add_argument("--state-budget", type=int, metavar="STATES",
                        help="stop enumerating once this many states have "
                             "been discovered (exit code 4; unlike an "
                             "exceeded --max-states this is a graceful "
                             "truncation, not an error)")


def _budget(args) -> Optional[Budget]:
    if (args.wall_budget is None and args.memory_budget is None
            and args.state_budget is None):
        return None
    return Budget(
        wall_seconds=args.wall_budget,
        max_memory_mb=args.memory_budget,
        max_states=args.state_budget,
    )


def _checkpoint_config(args) -> Optional[CheckpointConfig]:
    if not args.checkpoint_dir:
        if args.resume:
            raise CheckpointError("--resume requires --checkpoint-dir")
        return None
    return CheckpointConfig(args.checkpoint_dir,
                            every_waves=args.checkpoint_every)


def _print_resilience_status(stats) -> None:
    if stats.resumed:
        print("enumeration resumed from checkpoint")
    if stats.checkpoints_written:
        print(f"checkpoints written: {stats.checkpoints_written}")
    if stats.shards_retried or stats.degraded:
        detail = (f"{stats.shards_retried} shard retries, "
                  f"{stats.pool_respawns} pool respawns")
        if stats.degraded:
            detail += "; degraded to in-process expansion"
        print(f"worker recovery: {detail}")
    if stats.truncated:
        print(f"BUDGET TRUNCATED ({stats.budget_outcome} exhausted): "
              f"{stats.explored_fraction:.1%} of discovered states expanded, "
              f"{stats.frontier_remaining:,} left in the frontier")


def _configure_logging(args) -> None:
    level = getattr(args, "log_level", None)
    if level:
        logging.basicConfig(
            level=getattr(logging, level.upper()),
            format="%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            stream=sys.stderr,
            force=True,
        )


def _progress_stream(args):
    if getattr(args, "no_progress", False):
        return None
    if getattr(args, "progress", False):
        return sys.stderr
    return stderr_if_tty()


def _make_observer(args) -> Optional[Observer]:
    """An observer when any sink is requested, else None (no-op path)."""
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    heartbeat_out = getattr(args, "heartbeat_out", None)
    profile_out = getattr(args, "profile_out", None)
    progress_stream = _progress_stream(args)
    if not any((trace_out, metrics_out, heartbeat_out, profile_out,
                progress_stream)):
        return None
    tracer = None
    if trace_out:
        # .jsonl streams events live (crash-tolerant); any other suffix
        # buffers and exports Chrome trace_event format on completion.
        tracer = Tracer(path=trace_out if trace_out.endswith(".jsonl") else None)
    progress = None
    if heartbeat_out or progress_stream is not None:
        progress = ProgressReporter(path=heartbeat_out, stream=progress_stream)
    sampler = None
    interval = getattr(args, "sample_interval", 0.0) or 0.0
    if interval > 0 and (trace_out or metrics_out):
        sampler = ResourceSampler(interval=interval, tracer=tracer)
        sampler.start()
    profiler = None
    if profile_out:
        profiler = SamplingProfiler()
        profiler.start()
        if not profiler.available:
            print("sampling profiler unavailable on this platform; "
                  "--profile-out will be empty", file=sys.stderr)
    return Observer(tracer=tracer, progress=progress, sampler=sampler,
                    profiler=profiler)


def _finish_observer(args, observer: Optional[Observer],
                     run_report: Optional[RunReport] = None) -> None:
    """Flush the observer's sinks to the paths the user asked for."""
    if observer is None:
        return
    # Stops the sampler/profiler and flushes the final heartbeat, so the
    # perf section has to be (re)captured after the close.
    observer.close()
    if run_report is not None:
        run_report.perf = observer.perf_summary()
    trace_out = getattr(args, "trace_out", None)
    if trace_out and observer.tracer is not None:
        if trace_out.endswith(".jsonl"):
            print(f"JSONL event trace written to {trace_out}")
        else:
            observer.tracer.write_chrome_trace(trace_out)
            print(f"chrome trace written to {trace_out} "
                  "(open in chrome://tracing or ui.perfetto.dev)")
    heartbeat_out = getattr(args, "heartbeat_out", None)
    if heartbeat_out and observer.progress is not None:
        print(f"heartbeats written to {heartbeat_out} "
              f"({observer.progress.emitted} emitted)")
    profile_out = getattr(args, "profile_out", None)
    if profile_out and observer.profiler is not None:
        observer.profiler.write_collapsed(profile_out)
        print(f"collapsed-stack profile written to {profile_out} "
              f"({observer.profiler.samples} samples; render with "
              "flamegraph.pl or speedscope)")
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        if run_report is not None:
            run_report.write(metrics_out)
        else:
            atomic_write_text(metrics_out, observer.metrics.to_json())
        print(f"run report written to {metrics_out} "
              f"(render with: repro report {metrics_out})")


def _jobs(args) -> Optional[int]:
    # argparse gives an int; 0 means "use every CPU" (None internally).
    return None if args.jobs == 0 else args.jobs


def _print_cache_status(pipeline) -> None:
    if pipeline.cache_key is None:
        return
    short = pipeline.cache_key[:12]
    if pipeline.artifacts_from_cache:
        print(f"artifacts: cache hit ({short}) -- enumeration skipped")
    else:
        hits = [phase for phase, hit in pipeline.phase_hits.items() if hit]
        if hits:
            print(f"artifacts: built and cached ({short}); "
                  f"phase hits: {', '.join(hits)}")
        else:
            print(f"artifacts: built and cached ({short})")
    report = pipeline.incremental_report
    if report is not None and report.attempted:
        if report.classification == "no-op":
            print(f"incremental: no-op diff vs {report.base_key[:12]}; "
                  f"adopted {', '.join(report.adopted_phases) or 'nothing'}")
        else:
            print(f"incremental: localized diff vs {report.base_key[:12]}; "
                  f"re-enumerated {report.region_states} state(s), "
                  f"replayed {report.replayed_states}, spliced "
                  f"{report.spliced_tours} trace(s)")


def cmd_enumerate(args) -> int:
    import dataclasses

    observer = _make_observer(args)
    obs = resolve(observer)
    jobs = _jobs(args)
    checkpoint = _checkpoint_config(args)
    budget = _budget(args)
    with obs.span("cli.enumerate"):
        with obs.span("phase.model_build"):
            model = build_pp_control_model(_model_config(args))
        with obs.span("phase.enumerate", jobs=jobs or 0):
            if jobs is None or jobs > 1:
                graph, stats = enumerate_states_parallel(
                    model, jobs=jobs, obs=obs,
                    checkpoint=checkpoint, resume=args.resume, budget=budget,
                    kernel=args.kernel,
                )
            else:
                graph, stats = enumerate_states(
                    model, obs=obs,
                    checkpoint=checkpoint, resume=args.resume, budget=budget,
                    kernel=args.kernel,
                )
    print(stats.format_table())
    _print_resilience_status(stats)
    if args.graph_out:
        # Atomic: even a truncated (exit 4) run leaves a loadable graph.
        atomic_write_text(args.graph_out, graph.to_json())
        print(f"state graph written to {args.graph_out}")
    run_report = None
    if observer is not None:
        run_report = RunReport.from_observer(
            "enumerate", observer,
            config={**_model_config_dict(args),
                    "jobs": args.jobs, "kernel": args.kernel},
            enumeration=dataclasses.asdict(stats),
        )
    _finish_observer(args, observer, run_report)
    return EXIT_BUDGET_TRUNCATED if stats.truncated else EXIT_OK


def cmd_tours(args) -> int:
    if args.graph:
        with open(args.graph) as handle:
            graph = StateGraph.from_json(handle.read())
    else:
        model = build_pp_control_model(_model_config(args))
        graph, _ = enumerate_states(model)
    generator_cls = (
        TourGenerator if args.generator == "reference" else IndexedTourGenerator
    )
    tours = generator_cls(
        graph, max_instructions_per_trace=args.limit or None
    ).generate()
    stats = tours.stats
    report = arc_coverage(graph, (t.edge_indices for t in tours))
    print(f"traces: {stats.num_traces}")
    print(f"arc traversals: {stats.total_edge_traversals:,} over "
          f"{stats.graph_edges:,} arcs (coverage complete: {report.complete})")
    print(f"longest trace: {stats.longest_trace_edges:,} arcs")
    print(f"estimated simulation @100Hz: "
          f"{stats.estimated_simulation_hours():.2f} hours total, "
          f"{stats.estimated_longest_trace_hours() * 60:.1f} minutes for "
          "the longest trace")
    return 0


def cmd_validate(args) -> int:
    from repro.core import ValidationPipeline
    from repro.pp.rtl.core import CoreConfig

    observer = _make_observer(args)
    obs = resolve(observer)
    _checkpoint_config(args)  # validates --resume/--checkpoint-dir pairing
    pipeline = ValidationPipeline(
        model_config=_model_config(args),
        max_instructions_per_trace=args.limit or None,
        seed=args.seed,
        jobs=_jobs(args),
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        observer=observer,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        budget=_budget(args),
        kernel=args.kernel,
        incremental=args.incremental,
    )
    with obs.span("cli.validate"):
        pipeline.build(resume=args.resume)
        _print_cache_status(pipeline)
        _print_resilience_status(pipeline.artifacts.enumeration)
        config = CoreConfig(mem_latency=0)
        if args.bug:
            for bug_id in args.bug:
                if bug_id not in BUGS:
                    print(f"unknown bug id {bug_id}; known: {sorted(BUGS)}",
                          file=sys.stderr)
                    return EXIT_USAGE
            config = config.with_bugs(*args.bug)
            for bug_id in args.bug:
                print(f"injected bug #{bug_id}: {BUGS[bug_id].title}")
        report = pipeline.validate(config=config, stop_on_divergence=not args.all)
    print(report.summary())
    run_report = None
    if observer is not None:
        run_report = RunReport.from_validation(
            report,
            observer=observer,
            artifacts=pipeline.artifacts,
            command="validate",
            config={**_model_config_dict(args),
                    "limit": args.limit, "seed": args.seed,
                    "jobs": args.jobs, "kernel": args.kernel,
                    "bugs": args.bug or []},
            cache=pipeline.cache_info,
        )
    _finish_observer(args, observer, run_report)
    if pipeline.artifacts.enumeration.truncated:
        return EXIT_BUDGET_TRUNCATED
    return EXIT_OK if report.clean == (not args.bug) else EXIT_VALIDATION_FAILED


def cmd_campaign(args) -> int:
    from repro.harness.campaign import ValidationCampaign

    observer = _make_observer(args)
    obs = resolve(observer)
    _checkpoint_config(args)  # validates --resume/--checkpoint-dir pairing
    with obs.span("cli.campaign"):
        with obs.span("campaign.build"):
            campaign = ValidationCampaign(
                model_config=_model_config(args),
                seed=args.seed,
                max_instructions_per_trace=args.limit or None,
                jobs=_jobs(args),
                cache_dir=args.cache_dir,
                use_cache=not args.no_cache,
                observer=observer,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                budget=_budget(args),
                resume=args.resume,
                kernel=args.kernel,
                incremental=args.incremental,
            )
        _print_cache_status(campaign.pipeline)
        _print_resilience_status(campaign.enum_stats)
        results = campaign.evaluate_all_bugs()
    print(format_campaign_table(results))
    found = sum(r.outcomes["generated"].detected for r in results)
    print(f"\ngenerated vectors found {found}/{len(results)} injected bugs")
    run_report = None
    if observer is not None:
        run_report = RunReport.from_campaign(
            results,
            observer=observer,
            pipeline=campaign.pipeline,
            command="campaign",
            config={**_model_config_dict(args),
                    "limit": args.limit, "seed": args.seed,
                    "jobs": args.jobs, "kernel": args.kernel},
            cache=campaign.pipeline.cache_info,
        )
    _finish_observer(args, observer, run_report)
    if campaign.enum_stats.truncated:
        return EXIT_BUDGET_TRUNCATED
    return EXIT_OK if found == len(results) else EXIT_VALIDATION_FAILED


def cmd_translate(args) -> int:
    import dataclasses

    from repro.translate import translate_verilog

    observer = _make_observer(args)
    obs = resolve(observer)
    stats = None
    with obs.span("cli.translate"):
        with open(args.source) as handle:
            source = handle.read()
        model, flat = translate_verilog(
            source, top=args.top, clock=args.clock, obs=obs
        )
        print(f"translated {args.source} (top: {args.top})")
        print(f"  state variables ({model.state_bits()} bits): "
              f"{', '.join(model.state_var_names)}")
        print(f"  free inputs: {', '.join(model.choice_names)}")
        if args.enumerate:
            with obs.span("phase.enumerate"):
                graph, stats = enumerate_states(
                    model, max_states=args.max_states, obs=obs
                )
            print(stats.format_table())
            if args.graph_out:
                with open(args.graph_out, "w") as handle:
                    handle.write(graph.to_json())
                print(f"state graph written to {args.graph_out}")
    run_report = None
    if observer is not None:
        run_report = RunReport.from_observer(
            "translate", observer,
            config={"source": args.source, "top": args.top},
            enumeration=dataclasses.asdict(stats) if stats else None,
        )
    _finish_observer(args, observer, run_report)
    return 0


def cmd_murphi(args) -> int:
    from repro.smurphi import parse_model

    with open(args.source) as handle:
        text = handle.read()
    model = parse_model(text, name=args.source)
    print(f"parsed {args.source}: {model!r}")
    graph, stats = enumerate_states(model, max_states=args.max_states)
    print(stats.format_table())
    return 0


def cmd_errata(args) -> int:
    from repro.errata.classify import format_table

    print(format_table())
    return 0


def cmd_checkpoints(args) -> int:
    """List, verify, inspect and prune an enumeration checkpoint store."""
    store = CheckpointStore(args.directory)
    if args.inspect:
        try:
            payload = store.load(args.inspect)
        except CheckpointError as exc:
            print(f"{exc}", file=sys.stderr)
            return EXIT_USAGE
        graph = StateGraph.from_json(payload["graph_json"])
        print(f"checkpoint {args.inspect} ({store.payload_path(args.inspect)})")
        print(f"  model:            {payload['model']}")
        print(f"  config digest:    {payload['config_digest'][:12]}")
        print(f"  waves completed:  {payload['waves_completed']}")
        print(f"  states:           {graph.num_states:,}")
        print(f"  edges:            {graph.num_edges:,}")
        print(f"  frontier pending: {len(payload['frontier']):,}")
        print(f"  transitions:      {payload['transitions_explored']:,}")
        return EXIT_OK
    if args.prune:
        removed = store.prune(keep=args.keep)
        print(f"pruned {removed} checkpoint(s); kept the newest {args.keep}")
        return EXIT_OK
    names = store.names()
    if not names:
        print(f"no checkpoints in {store.directory}")
        return EXIT_OK
    print(f"{'name':<14} {'waves':>6} {'frontier':>9} {'transitions':>12} "
          f"{'size':>10}  status")
    for name in names:
        problem = store.verify(name)
        status = "ok" if problem is None else f"CORRUPT: {problem}"
        try:
            manifest = store.manifest(name)
        except CheckpointError:
            manifest = {}
        print(f"{name:<14} {manifest.get('waves_completed', '?'):>6} "
              f"{manifest.get('frontier', '?'):>9} "
              f"{manifest.get('transitions_explored', '?'):>12} "
              f"{manifest.get('size', '?'):>10}  {status}")
    return EXIT_OK


def cmd_bench(args) -> int:
    """Run registered benchmarks, extend the history, gate on regressions."""
    from repro.obs import bench

    names = bench.registered_benchmarks()
    if args.list:
        for name in names:
            print(name)
        return EXIT_OK
    if args.only:
        unknown = sorted(set(args.only) - set(names))
        if unknown:
            print(f"unknown benchmark(s) {unknown}; registered: {names}",
                  file=sys.stderr)
            return EXIT_USAGE
        names = [n for n in names if n in set(args.only)]
    for name in names:
        result = bench.run_benchmark(name)
        bench.append_history(args.history, result)
        cells = ", ".join(
            f"{metric_name}={cell['value']:.4g} {cell['unit']}"
            for metric_name, cell in sorted(result.metrics.items())
        )
        print(f"{name:<24} {cells}")
    entries = bench.load_history(args.history)
    sha = bench.provenance_sha()
    print(f"history: {len(entries)} entries in {args.history} "
          f"(now at {bench.short_sha(sha)})")
    if sha.endswith("-dirty"):
        print("WARNING: working tree has uncommitted tracked changes; "
              "new history entries are stamped <sha>-dirty")
    for warning in bench.parallel_efficiency_warnings(entries):
        print(f"WARNING: {warning}")
    regressions = bench.detect_regressions(
        entries, threshold=args.threshold, window=args.window
    )
    if not regressions:
        print(f"regression gate: ok (threshold {args.threshold:.0%}, "
              f"window {args.window})")
        return EXIT_OK
    label = "WARNING" if args.report_only else "REGRESSION"
    for regression in regressions:
        print(f"{label}: {regression.describe()}")
    if args.report_only:
        print(f"regression gate: {len(regressions)} finding(s), "
              "demoted to warnings (--report-only)")
        return EXIT_OK
    print(f"regression gate: FAILED ({len(regressions)} finding(s))")
    return EXIT_PERF_REGRESSION


def cmd_cache(args) -> int:
    """List, summarize and prune a pipeline artifact cache directory."""
    from repro.core.cache import ArtifactCache

    cache = ArtifactCache(args.directory)
    if args.prune:
        removed = cache.prune()
        print(f"pruned {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.cache_dir}")
        return EXIT_OK
    rows = cache.entries()
    if not rows:
        print(f"no cache entries in {cache.cache_dir}")
        return EXIT_OK
    if args.stats:
        total = sum(row["size"] for row in rows)
        by_phase = {}
        for row in rows:
            phase = row["phase"] or "(monolithic)"
            count, size = by_phase.get(phase, (0, 0))
            by_phase[phase] = (count + 1, size + row["size"])
        print(f"{len(rows)} entr{'y' if len(rows) == 1 else 'ies'}, "
              f"{total / 1024:.0f} KiB total in {cache.cache_dir}")
        for phase in sorted(by_phase):
            count, size = by_phase[phase]
            print(f"  {phase:<12} {count:>4} entr{'y' if count == 1 else 'ies'} "
                  f"{size / 1024:>8.0f} KiB")
        return EXIT_OK
    print(f"{'key':<14} {'phase':<12} {'size':>10} {'age':>8} {'builds':>7}")
    for row in rows:
        age = row["age_seconds"]
        if age is None:
            age_text = "?"
        elif age >= 3600:
            age_text = f"{age / 3600:.1f}h"
        elif age >= 60:
            age_text = f"{age / 60:.1f}m"
        else:
            age_text = f"{age:.0f}s"
        print(f"{row['key'][:12]:<14} {row['phase'] or '-':<12} "
              f"{row['size']:>10,} {age_text:>8} {row['builds']:>7}")
    return EXIT_OK


def cmd_report(args) -> int:
    try:
        report = RunReport.load(args.report)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot read run report {args.report}: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    history_path = args.history
    if history_path is None and os.path.exists("BENCH_history.jsonl"):
        history_path = "BENCH_history.jsonl"
    if history_path:
        from repro.obs import bench

        for warning in bench.parallel_efficiency_warnings(
            bench.load_history(history_path)
        ):
            print(f"WARNING: {warning}")
    if args.curve:
        if not report.coverage_curve:
            print("run report has no coverage-curve data", file=sys.stderr)
            return 2
        with open(args.curve, "w") as handle:
            handle.write("trace_index,cumulative_instructions,"
                         "cumulative_covered_edges,coverage_fraction\n")
            for point in report.coverage_curve:
                handle.write(
                    f"{point['trace_index']},{point['cumulative_instructions']},"
                    f"{point['cumulative_covered_edges']},"
                    f"{point['coverage_fraction']:.6f}\n"
                )
        print(f"coverage curve written to {args.curve}")
    return 0


def cmd_serve(args) -> int:
    from repro.resilience import RetryPolicy
    from repro.serve import ServeConfig, run_server

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            state_dir=args.state_dir,
            workers=args.workers,
            max_pending=args.max_pending,
            memory_budget_mb=args.memory_budget,
            execution=args.execution,
            job_timeout=args.job_timeout,
            retry=RetryPolicy(max_retries=args.retries,
                              backoff_seconds=args.retry_backoff),
            degrade_inline=not args.no_degrade,
            cache_dir=args.cache_dir,
            port_file=args.port_file,
        )
    except ValueError as exc:
        print(f"bad serve configuration: {exc}", file=sys.stderr)
        return EXIT_USAGE
    return run_server(config)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Architecture Validation for Processors (ISCA 1995) "
                    "-- reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("enumerate", help="enumerate the PP control state graph")
    _add_model_flags(p)
    _add_jobs_flag(p)
    _add_kernel_flag(p)
    _add_obs_flags(p)
    _add_resilience_flags(p)
    p.add_argument("--graph-out", help="write the state graph as JSON")
    p.set_defaults(func=cmd_enumerate)

    p = sub.add_parser("tours", help="generate transition tours")
    _add_model_flags(p)
    p.add_argument("--graph", help="reuse a JSON state graph")
    p.add_argument("--limit", type=int, default=400,
                   help="instructions per trace (0 = unlimited)")
    p.add_argument("--generator", choices=("indexed", "reference"),
                   default="indexed",
                   help="tour generator: the CSR+distance-index one "
                        "(default) or the reference Fig. 3.3 loop; both "
                        "produce bit-identical tours")
    p.set_defaults(func=cmd_tours)

    p = sub.add_parser("validate", help="run the full validation pipeline")
    _add_model_flags(p)
    _add_jobs_flag(p)
    _add_kernel_flag(p)
    _add_cache_flags(p)
    _add_obs_flags(p)
    _add_resilience_flags(p)
    p.add_argument("--limit", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--bug", type=int, action="append",
                   help="inject a Table 2.1 bug (repeatable)")
    p.add_argument("--all", action="store_true",
                   help="run every trace even after a divergence")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("campaign", help="Table 2.1: all bugs x all methods")
    _add_model_flags(p)
    _add_jobs_flag(p)
    _add_kernel_flag(p)
    _add_cache_flags(p)
    _add_obs_flags(p)
    _add_resilience_flags(p)
    p.add_argument("--limit", type=int, default=400)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("translate", help="translate Verilog to an FSM model")
    _add_obs_flags(p)
    p.add_argument("source")
    p.add_argument("--top", required=True)
    p.add_argument("--clock", default="clk")
    p.add_argument("--enumerate", action="store_true")
    p.add_argument("--max-states", type=int, default=1_000_000)
    p.add_argument("--graph-out")
    p.set_defaults(func=cmd_translate)

    p = sub.add_parser("murphi", help="parse + enumerate a Murphi text model")
    p.add_argument("source")
    p.add_argument("--max-states", type=int, default=1_000_000)
    p.set_defaults(func=cmd_murphi)

    p = sub.add_parser("errata", help="print the R4000 errata table (Table 1.1)")
    p.set_defaults(func=cmd_errata)

    p = sub.add_parser("checkpoints",
                       help="list/verify/inspect/prune an enumeration "
                            "checkpoint store")
    p.add_argument("directory", help="checkpoint directory (--checkpoint-dir)")
    p.add_argument("--inspect", metavar="NAME",
                   help="verify and summarize one checkpoint (e.g. wave000004)")
    p.add_argument("--prune", action="store_true",
                   help="delete all but the newest --keep checkpoints")
    p.add_argument("--keep", type=int, default=1,
                   help="checkpoints to retain with --prune (default 1)")
    p.set_defaults(func=cmd_checkpoints)

    p = sub.add_parser("cache",
                       help="list/summarize/prune a pipeline artifact "
                            "cache directory (--cache-dir)")
    p.add_argument("directory", help="cache directory (--cache-dir)")
    p.add_argument("--stats", action="store_true",
                   help="aggregate per-phase entry counts and sizes")
    p.add_argument("--prune", action="store_true",
                   help="delete every cache entry (locks and temp files "
                        "included)")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("report",
                       help="render a saved run report JSON (--metrics-out)")
    p.add_argument("report", help="path to a run report JSON file")
    p.add_argument("--curve", metavar="CSV",
                   help="also export the Fig 4.1 coverage-curve data as CSV")
    p.add_argument("--history", metavar="PATH",
                   help="benchmark history JSONL to check for parallel-"
                        "efficiency warnings (default: BENCH_history.jsonl "
                        "when present)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("bench",
                       help="run registered benchmarks, append to the "
                            "history timeline, gate on regressions")
    p.add_argument("--history", default="BENCH_history.jsonl", metavar="PATH",
                   help="benchmark history JSONL timeline "
                        "(default: BENCH_history.jsonl)")
    p.add_argument("--threshold", type=float, default=0.25, metavar="FRAC",
                   help="fractional slowdown vs the baseline median that "
                        "fails the gate (default 0.25 = 25%%)")
    p.add_argument("--window", type=int, default=5, metavar="N",
                   help="trailing entries per series whose median forms "
                        "the baseline (default 5)")
    p.add_argument("--report-only", action="store_true",
                   help="print regressions as warnings and exit 0 "
                        "(for noisy shared runners)")
    p.add_argument("--only", action="append", metavar="NAME",
                   help="run only this registered benchmark (repeatable)")
    p.add_argument("--list", action="store_true",
                   help="list registered benchmarks and exit")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("serve",
                       help="run the validation service: a crash-tolerant "
                            "HTTP/JSON job daemon")
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8642,
                   help="bind port (0 picks a free port; see --port-file)")
    p.add_argument("--port-file", default=None,
                   help="write the bound port here (for --port 0)")
    p.add_argument("--state-dir", default=".repro-serve",
                   help="durable daemon state: job journal, per-job "
                        "results / heartbeats / checkpoints")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent job slots (each job runs in its own "
                        "child process)")
    p.add_argument("--max-pending", type=int, default=64,
                   help="queue depth bound; beyond it submissions are shed "
                        "with 429 + Retry-After")
    p.add_argument("--memory-budget", type=float, default=None,
                   metavar="MB",
                   help="shed new submissions while daemon RSS exceeds "
                        "this many megabytes")
    p.add_argument("--execution", choices=("process", "inline"),
                   default="process",
                   help="job isolation: forked child per attempt (default) "
                        "or in-daemon threads")
    p.add_argument("--job-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="kill a job attempt running longer than this "
                        "(then retry policy applies)")
    p.add_argument("--retries", type=int, default=2,
                   help="attempts after a crashed job before degrading")
    p.add_argument("--retry-backoff", type=float, default=0.2,
                   metavar="SECONDS", help="base exponential backoff delay")
    p.add_argument("--no-degrade", action="store_true",
                   help="fail jobs whose retries are exhausted instead of "
                        "degrading to in-daemon execution")
    p.add_argument("--cache-dir", default=None,
                   help="artifact cache shared with the one-shot CLI "
                        "(default: STATE_DIR/cache)")
    p.set_defaults(func=cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    if getattr(args, "limit", None) == 0:
        args.limit = None
    # One-shot commands treat `kill` like Ctrl-C: SIGTERM becomes
    # KeyboardInterrupt, checkpoints land at wave boundaries, and the
    # exit path below points at --resume.  The daemon is exempt -- it
    # owns SIGTERM for graceful drain.
    if args.func is not cmd_serve:
        install_term_to_interrupt()
    try:
        return args.func(args)
    except KeyboardInterrupt:
        checkpoint_dir = getattr(args, "checkpoint_dir", None)
        hint = (f"; resume with --resume --checkpoint-dir {checkpoint_dir}"
                if checkpoint_dir else "")
        print(f"interrupted{hint}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except InvariantViolation as exc:
        # The abstract model is broken on a reachable state; no validation
        # verdict built on it can be trusted, hence a dedicated exit code.
        print(f"invariant violation: {exc}", file=sys.stderr)
        return EXIT_INVARIANT_VIOLATION
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except BrokenPipeError:
        # stdout was closed early (e.g. `repro report ... | head`);
        # suppress the traceback and exit quietly like other CLI tools.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
