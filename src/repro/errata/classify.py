"""The three-way bug taxonomy of Table 1.1."""

from __future__ import annotations

import enum
from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.errata.dataset import Erratum, R4000_ERRATA


class BugClass(enum.Enum):
    """The paper's classification of what interacted to cause each error."""

    DATAPATH_ONLY = "Pipeline/Datapath ONLY bugs"
    SINGLE_CONTROL = "Single Control Logic Bugs"
    MULTIPLE_EVENT = "Multiple Event Bugs"


def classify(erratum: Erratum) -> BugClass:
    """Classify one erratum.

    - No control-logic involvement at all -> datapath-only.
    - Control logic, but a single unit and a single triggering event ->
      single control logic bug.
    - More than one unit or more than one coinciding condition ->
      multiple-event bug (the class the paper's methodology targets).
    """
    if not erratum.control:
        return BugClass.DATAPATH_ONLY
    if len(erratum.units) == 1 and erratum.events == 1:
        return BugClass.SINGLE_CONTROL
    return BugClass.MULTIPLE_EVENT


def classification_breakdown(
    errata: Iterable[Erratum] = R4000_ERRATA,
) -> List[Tuple[BugClass, int, float]]:
    """Rows of Table 1.1: (class, count, percent of total)."""
    errata = list(errata)
    counts: Counter = Counter(classify(e) for e in errata)
    total = len(errata)
    return [
        (bug_class, counts.get(bug_class, 0), 100.0 * counts.get(bug_class, 0) / total)
        for bug_class in BugClass
    ]


def format_table(errata: Iterable[Erratum] = R4000_ERRATA) -> str:
    """Render Table 1.1."""
    rows = classification_breakdown(errata)
    total = sum(count for _, count, _ in rows)
    lines = [f"{'Bug Class':<34}{'Number':>8}{'% of Total':>12}"]
    for bug_class, count, percent in rows:
        lines.append(f"{bug_class.value:<34}{count:>8}{percent:>11.1f}%")
    lines.append(f"{'Total Reported Errata':<34}{total:>8}{100.0:>11.1f}%")
    return "\n".join(lines)
