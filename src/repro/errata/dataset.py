"""A synthesized 46-entry R4000-style errata dataset.

The paper classified MIPS's published R4000PC/SC errata (rev 2.2 and 3.0).
That page is no longer available, so this dataset is *synthesized*: each
record follows the structure of real R4000 errata (the famous TLB-miss/
jump-delay-slot bug appears as entry 12, quoted from the paper itself) and
the population reproduces the published totals -- 3 pipeline/datapath-only,
17 single-control-logic, 26 multiple-event, 46 total.  What is reproducible
here is the *classification logic*, which keys off structured fields
(units involved, event count, control involvement) rather than prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Erratum:
    """One erratum record.

    ``units``: the design units whose behaviour participates in the bug.
    ``events``: how many distinct (and individually improbable) conditions
    must coincide to trigger it.
    ``control``: whether control logic (as opposed to pure datapath) is
    involved at all.
    """

    number: int
    summary: str
    units: Tuple[str, ...]
    events: int
    control: bool


def _e(number, summary, units, events, control=True):
    return Erratum(number, summary, tuple(units), events, control)


#: The dataset.  Entries 1-3: datapath-only; 4-20: single control unit;
#: 21-46: multiple interacting events.
R4000_ERRATA: List[Erratum] = [
    # --- pipeline/datapath only -------------------------------------------------
    _e(1, "FPU rounding incorrect for denormal multiply results.",
       ["fpu"], 1, control=False),
    _e(2, "Integer multiplier produces wrong HI on back-to-back MULT.",
       ["mdu"], 1, control=False),
    _e(3, "Shifter misdecodes variable shift amount of 32.",
       ["alu"], 1, control=False),
    # --- single control logic ---------------------------------------------------
    _e(4, "Cache refill FSM re-requests line after parity retry.", ["dcache"], 1),
    _e(5, "Write buffer fails to drain on uncached store after reset.", ["wbuf"], 1),
    _e(6, "TLB write-random can select a wired entry.", ["tlb"], 1),
    _e(7, "Interrupt enable bit sampled one cycle late.", ["int"], 1),
    _e(8, "Secondary cache tag ECC check disabled in one state.", ["scache"], 1),
    _e(9, "Refill counter wraps on 128-byte line configuration.", ["icache"], 1),
    _e(10, "Watch exception address comparator ignores bit 31.", ["watch"], 1),
    _e(11, "Status register mask update delayed after MTC0.", ["cp0"], 1),
    _e(12, "Count/Compare interrupt can be lost when written same cycle.", ["cp0"], 1),
    _e(13, "Sync instruction does not fence uncached accelerated writes.", ["wbuf"], 1),
    _e(14, "LL bit not cleared by ERET in one pipeline slot.", ["lsu"], 1),
    _e(15, "Cache instruction index-invalidate decodes wrong way bit.", ["dcache"], 1),
    _e(16, "Branch-likely annul drops a delay-slot register read enable.", ["pipe"], 1),
    _e(17, "Processor stalls one extra cycle on back-to-back cache ops.", ["dcache"], 1),
    _e(18, "Reserved instruction exception priority wrong vs coprocessor.", ["except"], 1),
    _e(19, "Config register endianness bit latched from wrong pad.", ["cp0"], 1),
    _e(20, "Performance counter overflows a cycle early.", ["cp0"], 1),
    # --- multiple event ---------------------------------------------------------
    _e(21, "Load D-miss + jump with delay slot on unmapped page: TLB miss "
           "exception vectors to the jump address (the paper's example).",
       ["dcache", "tlb", "pipe"], 3),
    _e(22, "I-miss during D-refill with dirty victim corrupts spill address.",
       ["icache", "dcache", "memctrl"], 3),
    _e(23, "External interrupt in the same cycle as a watch exception "
           "loses the watch.", ["int", "watch"], 2),
    _e(24, "Uncached load between two cached stores reorders the write buffer.",
       ["wbuf", "lsu"], 2),
    _e(25, "TLB refill during branch-likely annul executes the annulled slot.",
       ["tlb", "pipe"], 2),
    _e(26, "Secondary-cache ECC error during primary refill deadlocks "
           "the refill FSMs.", ["scache", "dcache"], 2),
    _e(27, "Multiply in progress + cache stall + interrupt corrupts LO.",
       ["mdu", "dcache", "int"], 3),
    _e(28, "Store conditional during cache-op invalidate falsely succeeds.",
       ["lsu", "dcache"], 2),
    _e(29, "NMI during reset sequence leaves refill FSM mid-line.",
       ["int", "icache"], 2),
    _e(30, "Two outstanding uncached reads return data swapped when "
           "interrupted by refill.", ["memctrl", "dcache"], 2),
    _e(31, "ERET in delay slot of a taken branch with pending interrupt "
           "returns to the wrong EPC.", ["except", "pipe", "int"], 3),
    _e(32, "D-miss on both ways with write-back queued overflows the "
           "victim buffer.", ["dcache", "wbuf"], 2),
    _e(33, "Cache-op during TLB shutdown state machine corrupts PTE base.",
       ["dcache", "tlb"], 2),
    _e(34, "Debug exception during refill fix-up cycle loses the restart PC.",
       ["except", "icache"], 2),
    _e(35, "Interrupt between split halves of an unaligned store writes "
           "one half twice.", ["lsu", "int"], 2),
    _e(36, "Refill parity retry during write-buffer full stall hangs "
           "the pipeline.", ["dcache", "wbuf", "pipe"], 3),
    _e(37, "Branch mispredicted squash + I-miss fetches down the wrong path.",
       ["pipe", "icache"], 2),
    _e(38, "Coprocessor-unusable exception in branch delay slot during "
           "D-stall sets wrong BD bit.", ["except", "pipe", "dcache"], 3),
    _e(39, "Timer interrupt coincident with watch on the same instruction "
           "delivers neither.", ["int", "watch"], 2),
    _e(40, "Secondary-cache write-back during probe returns stale tag.",
       ["scache", "memctrl"], 2),
    _e(41, "LL/SC pair spanning a TLB modification loses atomicity silently.",
       ["lsu", "tlb"], 2),
    _e(42, "Sync during pending write-back + incoming invalidate drops "
           "the invalidate.", ["wbuf", "scache"], 2),
    _e(43, "Exception during MTC0 to Status in a delay slot double-applies "
           "the mask.", ["cp0", "except", "pipe"], 3),
    _e(44, "Refill critical word forwarded while parity error pending "
           "poisons a register.", ["dcache", "memctrl"], 2),
    _e(45, "Interrupt during multicycle cache-op leaves lock bit set.",
       ["int", "dcache"], 2),
    _e(46, "Reset during secondary-cache initialization leaves ways "
           "cross-linked.", ["scache", "int"], 2),
]
