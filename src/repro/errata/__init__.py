"""The MIPS R4000 errata study (Table 1.1 of the paper).

The paper motivates its methodology by classifying the 46 published
R4000PC/SC rev 2.2/3.0 errata by which parts of the design interacted to
cause each error: pipeline/datapath-only, a single control-logic unit, or
multiple interacting events.  The original errata web page is long gone;
this package carries a synthesized 46-entry dataset with the same
structure and class totals, plus the classifier that produces the table.
"""

from repro.errata.dataset import Erratum, R4000_ERRATA
from repro.errata.classify import BugClass, classify, classification_breakdown

__all__ = [
    "Erratum",
    "R4000_ERRATA",
    "BugClass",
    "classify",
    "classification_breakdown",
]
