"""Parallel breadth-first state enumeration with crash recovery.

The sequential enumerator (:func:`repro.enumeration.bfs.enumerate_states`)
dominates pipeline wall-clock: every reachable state is expanded by calling
``model.step`` once per choice combination, and the PP control model fires
tens of choice permutations per state.  The expansion work is embarrassingly
parallel -- each state's successor set depends only on that state -- while
the *bookkeeping* (interning states to dense ids, recording arcs, checking
invariants) is cheap and order-sensitive.  So the engine here splits the two:

- **Workers** receive batches of packed state keys, expand them with
  ``model.step`` over every active choice combination, and return, per
  source state, the ordered list of ``(condition, packed_successor)`` pairs.
- **The coordinator** keeps the canonical BFS order: it processes one
  frontier *wave* at a time (all states discovered during the previous
  wave, in discovery order), shards the wave across the pool, and replays
  the results in (source id, choice order) -- exactly the order the
  sequential enumerator would have observed them.

Determinism guarantee
---------------------
Sequential BFS pops states in strictly increasing id order (the frontier is
FIFO and ids are assigned at discovery).  Wave-synchronous processing
preserves that order, and shard results are always assembled in submission
order, so state ids, edge order, recorded conditions, the ``max_states``
cap and the first :class:`InvariantViolation` are all **identical** to the
sequential path -- in both ``record_all_conditions`` modes, and regardless
of how many times a shard had to be retried (expansion is a pure function
of the model).  The golden tests in ``tests/test_parallel_enumeration.py``
and the chaos suite in ``tests/test_resilience.py`` lock this down by
comparing byte-identical :meth:`StateGraph.to_json` serializations.

Worker-crash recovery
---------------------
Shards are submitted to a :class:`concurrent.futures.ProcessPoolExecutor`
and collected with a per-shard timeout, so a dead worker (detected
immediately via ``BrokenProcessPool``) or a wedged one (detected by the
timeout) can never hang the coordinator.  Every failure event retires the
pool, sleeps an exponential backoff
(:class:`~repro.resilience.RetryPolicy`), respawns a fresh pool and
resubmits the wave's not-yet-collected shards.  A shard that keeps failing
past the retry budget tips the run into *degraded mode*: the coordinator
expands the remaining shards and waves in-process -- slower, but it cannot
crash-loop, and results are identical.

Checkpoint / resume / budgets mirror the sequential engine: snapshots are
written at wave boundaries (:class:`~repro.resilience.CheckpointConfig`),
``resume=`` continues to a bit-identical graph (checkpoints are
interchangeable between the sequential and parallel engines), and a
:class:`~repro.resilience.Budget` truncates gracefully at a boundary.

Process model
-------------
Models hold closures (choice guards, ``next_state``) that do not pickle, so
workers get the model by *fork inheritance*: the coordinator publishes it
in a module global before creating the pool and forked children inherit the
parent's memory image.  On platforms without the ``fork`` start method the
engine transparently falls back to the sequential enumerator -- correctness
never depends on parallelism being available.
"""

from __future__ import annotations

import concurrent.futures
import logging
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.enumeration.bfs import (
    EnumerationError,
    InvariantViolation,
    _approx_memory,
    enumerate_states,
    rebuild_seen_arcs,
)
from repro.enumeration.graph import StateGraph
from repro.enumeration.kernel import (
    Kernel,
    KernelSpec,
    flush_kernel_metrics,
    resolve_kernel,
)
from repro.enumeration.stats import EnumerationStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer, resolve
from repro.resilience.budget import Budget, BudgetMeter
from repro.resilience.checkpoint import (
    CheckpointConfig,
    build_payload,
    model_digest,
    resolve_resume,
)
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.smurphi.model import SyncModel

logger = logging.getLogger("repro.enumeration")

#: Model published by the coordinator immediately before the pool forks;
#: worker processes inherit it (closures and all) without pickling.
_WORKER_MODEL: Optional[SyncModel] = None
#: Transition kernel published alongside the model.  The coordinator
#: compiles it ONCE before the pool forks, so every worker inherits the
#: ready-built choice tables / codec closures (and any warm successor
#: memo) instead of compiling per shard or per process.
_WORKER_KERNEL: Optional[Kernel] = None
#: Whether workers should collect per-shard metrics snapshots (set by the
#: coordinator before the fork; False keeps the no-sink path overhead-free).
_WORKER_COLLECT: bool = False
#: Fault plan inherited by workers (chaos testing only; None in production).
_WORKER_FAULTS: Optional[FaultPlan] = None
#: True only inside forked pool workers; gates worker-targeted faults so
#: degraded in-process expansion can never kill the coordinator.
_IN_WORKER: bool = False

#: Exceptions that mean "the shard did not come back, retry it" -- a dead
#: worker (BrokenProcessPool, raised immediately), a wedged one (timeout),
#: or a torn result pipe.  Anything else is a genuine error and propagates.
_SHARD_FAILURES = (
    BrokenProcessPool,
    concurrent.futures.TimeoutError,
    TimeoutError,
    EOFError,
    OSError,
)


def _init_worker() -> None:
    """Per-worker setup: mark the process so worker-only faults can fire."""
    global _IN_WORKER
    _IN_WORKER = True


def _expand_batch(
    packed_keys: Sequence[int],
    wave: int = 0,
    shard: int = 0,
    attempt: int = 0,
) -> Tuple[List[List[Tuple[Tuple, int]]], Optional[Dict[str, Any]]]:
    """Expand a batch of states; one row of (condition, packed_dst) per state.

    Rows preserve the model's choice enumeration order, which the
    coordinator relies on to replay transitions canonically.  When metric
    collection is on, the second element is a worker-local
    :class:`~repro.obs.metrics.MetricsRegistry` snapshot (per-shard timing
    and counts, labeled by worker pid) for the coordinator to merge.

    Also the degraded-mode workhorse: the coordinator calls it in-process
    when the retry budget is spent (fault hooks stay inert there).
    """
    global _WORKER_KERNEL
    if _IN_WORKER and _WORKER_FAULTS is not None:
        _WORKER_FAULTS.worker_hook(wave, shard, attempt)
    started = time.perf_counter()
    if _WORKER_KERNEL is None:
        _WORKER_KERNEL = resolve_kernel(_WORKER_MODEL)
    kern = _WORKER_KERNEL
    kernel_before = kern.counters()
    expand = kern.expand
    rows: List[List[Tuple[Tuple, int]]] = [list(expand(key)) for key in packed_keys]
    if not _WORKER_COLLECT:
        return rows, None
    registry = MetricsRegistry()
    worker = str(os.getpid())
    registry.inc("enum.shard.states", len(rows), worker=worker)
    registry.inc("enum.shard.transitions", sum(len(r) for r in rows), worker=worker)
    registry.observe(
        "enum.shard.seconds", time.perf_counter() - started, worker=worker
    )
    for name, value in kern.counters().items():
        delta = value - kernel_before.get(name, 0)
        if delta:
            registry.inc(f"enum.kernel.{name}", delta, worker=worker)
    return rows, registry.snapshot()


def _shard(items: Sequence, num_shards: int) -> List[List]:
    """Split ``items`` into at most ``num_shards`` contiguous, ordered chunks."""
    size = max(1, -(-len(items) // num_shards))
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


@dataclass
class _RecoveryCounters:
    """What the recovery machinery did during one run (flows into stats)."""

    shards_retried: int = 0
    pool_respawns: int = 0
    degraded: bool = False


class _ShardRunner:
    """Owns the worker pool; expands one wave at a time with retry/respawn."""

    def __init__(self, ctx, jobs: int, policy: RetryPolicy,
                 obs: Observer, counters: _RecoveryCounters):
        self._ctx = ctx
        self._jobs = jobs
        self.policy = policy
        self.obs = obs
        self.counters = counters
        self._executor: Optional[ProcessPoolExecutor] = None

    def _executor_or_spawn(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self._jobs,
                mp_context=self._ctx,
                initializer=_init_worker,
            )
        return self._executor

    def shutdown(self) -> None:
        """Retire the pool, killing any still-running (wedged) workers."""
        executor, self._executor = self._executor, None
        if executor is None:
            return
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # a broken pool can throw during teardown
            pass
        procs = list((getattr(executor, "_processes", None) or {}).values())
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=1.0)

    def run_wave(self, shards: List[List[int]], wave_index: int) -> List[Tuple]:
        """Expand every shard of one wave; returns results in shard order.

        Never hangs (every wait is bounded by the policy's shard timeout)
        and never returns partial waves: a shard either yields its rows --
        from a worker or, after retry exhaustion, from in-process degraded
        expansion -- or a genuine error propagates.
        """
        results: Dict[int, Tuple] = {}
        retries = [0] * len(shards)
        while len(results) < len(shards):
            pending = [i for i in range(len(shards)) if i not in results]
            failure: Optional[Tuple[int, BaseException]] = None
            futures: Dict[int, concurrent.futures.Future] = {}
            try:
                executor = self._executor_or_spawn()
                for i in pending:
                    futures[i] = executor.submit(
                        _expand_batch, shards[i], wave_index, i, retries[i]
                    )
                for i in pending:
                    results[i] = futures[i].result(
                        timeout=self.policy.shard_timeout
                    )
            except _SHARD_FAILURES as exc:
                failed_at = next(
                    i for i in range(len(shards)) if i not in results
                )
                failure = (failed_at, exc)
            if failure is None:
                break
            index, exc = failure
            # Whatever failed, the pool is suspect: retire it and re-run
            # every not-yet-collected shard of the wave on a fresh one.
            uncollected = [i for i in range(len(shards)) if i not in results]
            for i in uncollected:
                retries[i] += 1
            self.counters.shards_retried += len(uncollected)
            self.obs.inc("enum.shards_retried", len(uncollected))
            self.shutdown()
            worst = max(retries[i] for i in uncollected)
            if worst > self.policy.max_retries:
                self.counters.degraded = True
                self.obs.inc("enum.degraded_waves")
                logger.warning(
                    "wave %d shard %d failed %d times (%s: %s); retry budget "
                    "spent -- degrading to in-process expansion",
                    wave_index, index, worst, type(exc).__name__, exc,
                )
                for i in uncollected:
                    results[i] = _expand_batch(shards[i], wave_index, i, retries[i])
                break
            delay = self.policy.backoff(worst)
            logger.warning(
                "wave %d shard %d failed (%s: %s); respawning pool and "
                "retrying %d shard(s) in %.2fs",
                wave_index, index, type(exc).__name__, exc,
                len(uncollected), delay,
            )
            time.sleep(delay)
            self.counters.pool_respawns += 1
            self.obs.inc("enum.pool_respawns")
        return [results[i] for i in range(len(shards))]


def enumerate_states_parallel(
    model: SyncModel,
    jobs: Optional[int] = None,
    max_states: Optional[int] = None,
    record_all_conditions: bool = False,
    check_invariants: bool = True,
    obs: Optional[Observer] = None,
    checkpoint: Optional[CheckpointConfig] = None,
    resume=None,
    budget: Optional[Budget] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    kernel: KernelSpec = "compiled",
) -> Tuple[StateGraph, EnumerationStats]:
    """Enumerate ``model`` with ``jobs`` worker processes.

    Produces a :class:`StateGraph` identical -- same state ids in canonical
    BFS order, same edge list, same conditions -- to
    :func:`~repro.enumeration.bfs.enumerate_states`.  ``jobs=None`` uses
    every CPU; ``jobs<=1`` (or platforms without ``fork``) runs the
    sequential enumerator directly.

    ``checkpoint`` / ``resume`` / ``budget`` / ``faults`` have the same
    semantics as on :func:`~repro.enumeration.bfs.enumerate_states`
    (checkpoints are interchangeable between the two engines); ``retry``
    is the :class:`~repro.resilience.RetryPolicy` governing worker-crash
    recovery (timeouts, backoff, respawn, degradation).

    ``obs`` receives the same coordinator-side counters as the sequential
    path (``enum.states`` / ``enum.transitions_explored`` / ``enum.edges``
    / ``enum.waves`` -- totals are identical for identical inputs,
    regardless of ``jobs``) plus merged worker-side shard metrics
    (``enum.shard.*``, labeled by worker pid) and recovery counters
    (``enum.shards_retried`` / ``enum.pool_respawns``).

    ``kernel`` selects the transition kernel exactly as on the sequential
    engine.  The coordinator resolves (compiles) the kernel once, before
    the pool is created, so forked workers inherit the ready-built kernel
    -- one compilation per run, not per worker or per shard.
    """
    obs = resolve(obs)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        return enumerate_states(
            model,
            max_states=max_states,
            record_all_conditions=record_all_conditions,
            check_invariants=check_invariants,
            obs=obs,
            checkpoint=checkpoint,
            resume=resume,
            budget=budget,
            faults=faults,
            kernel=kernel,
        )

    global _WORKER_MODEL, _WORKER_COLLECT, _WORKER_FAULTS, _WORKER_KERNEL
    kern = resolve_kernel(model, kernel)
    kernel_before = kern.counters()
    started = time.perf_counter()
    digest = model_digest(model, record_all_conditions)
    resume_payload = resolve_resume(resume, checkpoint, digest)
    meter = BudgetMeter(budget)
    checkpoints_written = 0
    truncated = False
    budget_outcome: Optional[str] = None

    seen_arcs: Set[Tuple]
    if resume_payload is not None:
        graph = StateGraph.from_json(resume_payload["graph_json"])
        seen_arcs = rebuild_seen_arcs(graph, record_all_conditions)
        transitions_explored = int(resume_payload["transitions_explored"])
        wave: List[int] = list(resume_payload["frontier"])
        waves = int(resume_payload["waves_completed"])
        resumed = True
        logger.info(
            "resuming %s from checkpoint: %d states, %d edges, "
            "%d frontier states, %d waves completed",
            model.name, graph.num_states, graph.num_edges, len(wave), waves,
        )
    else:
        graph = StateGraph(model.choice_names)
        reset = model.reset_state()
        model.validate_state(reset)
        reset_id, _ = graph.intern_state(kern.reset_key())
        assert reset_id == StateGraph.RESET
        if check_invariants:
            violated = model.check_invariants(reset)
            if violated:
                raise InvariantViolation(reset_id, dict(reset), tuple(violated))
        seen_arcs = set()
        transitions_explored = 0
        wave = [reset_id]
        waves = 0
        resumed = False

    ctx = multiprocessing.get_context("fork")
    _WORKER_MODEL = model
    _WORKER_KERNEL = kern
    _WORKER_COLLECT = obs.enabled
    _WORKER_FAULTS = faults
    counters = _RecoveryCounters()
    runner = _ShardRunner(ctx, jobs, retry or RetryPolicy(), obs, counters)
    frontier_remaining = 0
    try:
        while wave:
            wave_started = time.perf_counter()
            keys = [graph.state_key(src) for src in wave]
            # Oversplit so a skewed shard cannot stall the whole wave.
            shards = _shard(keys, jobs * 4)
            if counters.degraded:
                shard_results = [
                    _expand_batch(shard, waves, i, 0)
                    for i, shard in enumerate(shards)
                ]
            else:
                shard_results = runner.run_wave(shards, waves)
            rows: List[List[Tuple[Tuple, int]]] = []
            for shard_rows, shard_metrics in shard_results:
                rows.extend(shard_rows)
                obs.merge(shard_metrics)
            next_wave: List[int] = []
            for src_id, row in zip(wave, rows):
                for condition, packed_dst in row:
                    transitions_explored += 1
                    dst_id, is_new = graph.intern_state(packed_dst)
                    if is_new:
                        if max_states is not None and graph.num_states > max_states:
                            raise EnumerationError(
                                f"state count exceeded cap of {max_states} "
                                f"while enumerating {model.name!r}"
                            )
                        if check_invariants:
                            nxt = kern.unpack(packed_dst)
                            violated = model.check_invariants(nxt)
                            if violated:
                                raise InvariantViolation(
                                    dst_id, nxt, tuple(violated)
                                )
                        next_wave.append(dst_id)
                    if record_all_conditions:
                        arc_key: Tuple = (src_id, dst_id, condition)
                    else:
                        arc_key = (src_id, dst_id)
                    if arc_key not in seen_arcs:
                        seen_arcs.add(arc_key)
                        graph.add_edge(src_id, dst_id, condition)
            obs.observe("enum.wave.frontier_states", len(wave))
            obs.event("enum.wave", wave=waves, frontier=len(wave),
                      shards=len(shards), states=graph.num_states,
                      transitions=transitions_explored,
                      seconds=time.perf_counter() - wave_started)
            obs.heartbeat("enumerate", wave=waves, frontier=len(wave),
                          states=graph.num_states,
                          transitions=transitions_explored,
                          shards=len(shards))
            waves += 1
            wave = next_wave
            if not wave:
                break
            # Wave boundary: the coordinator state is consistent here, so
            # this is where budgets bite, checkpoints land and scripted
            # SIGINTs fire (after the checkpoint, like a real Ctrl-C).
            budget_outcome = meter.exhausted(graph.num_states)
            if budget_outcome is not None:
                truncated = True
                frontier_remaining = len(wave)
                if checkpoint is not None:
                    checkpoint.store.save(build_payload(
                        graph, wave, transitions_explored, waves,
                        digest, model.name,
                    ))
                    checkpoints_written += 1
                logger.warning(
                    "budget exhausted (%s) after %d waves: returning partial "
                    "graph with %d states (%d unexpanded)",
                    budget_outcome, waves, graph.num_states, len(wave),
                )
                break
            if checkpoint is not None and waves % checkpoint.every_waves == 0:
                checkpoint.store.save(build_payload(
                    graph, wave, transitions_explored, waves,
                    digest, model.name,
                ))
                checkpoints_written += 1
                obs.event("enum.checkpoint", wave=waves,
                          states=graph.num_states)
            if faults is not None:
                faults.boundary_hook(waves)
    finally:
        runner.shutdown()
        _WORKER_MODEL = None
        _WORKER_COLLECT = False
        _WORKER_FAULTS = None
        _WORKER_KERNEL = None

    elapsed = time.perf_counter() - started
    obs.inc("enum.states", graph.num_states)
    obs.inc("enum.transitions_explored", transitions_explored)
    obs.inc("enum.edges", graph.num_edges)
    obs.inc("enum.waves", waves)
    obs.gauge("enum.bits_per_state", model.state_bits())
    obs.observe("enum.seconds", elapsed, mode="parallel")
    # Coordinator-side kernel deltas (degraded-mode expansions land here;
    # worker-side expansions arrive via the merged shard registries).
    flush_kernel_metrics(obs, kern, kernel_before)
    logger.info(
        "enumerated %s with %d workers: %d states, %d edges, "
        "%d transitions, %d waves in %.3fs",
        model.name, jobs, graph.num_states, graph.num_edges,
        transitions_explored, waves, elapsed,
    )
    stats = EnumerationStats(
        model_name=model.name,
        num_states=graph.num_states,
        bits_per_state=model.state_bits(),
        num_edges=graph.num_edges,
        transitions_explored=transitions_explored,
        elapsed_seconds=elapsed,
        approx_memory_bytes=_approx_memory(graph, model.state_bits()),
        truncated=truncated,
        budget_outcome=budget_outcome,
        frontier_remaining=frontier_remaining,
        resumed=resumed,
        checkpoints_written=checkpoints_written,
        shards_retried=counters.shards_retried,
        pool_respawns=counters.pool_respawns,
        degraded=counters.degraded,
    )
    return graph, stats
