"""Parallel breadth-first state enumeration.

The sequential enumerator (:func:`repro.enumeration.bfs.enumerate_states`)
dominates pipeline wall-clock: every reachable state is expanded by calling
``model.step`` once per choice combination, and the PP control model fires
tens of choice permutations per state.  The expansion work is embarrassingly
parallel -- each state's successor set depends only on that state -- while
the *bookkeeping* (interning states to dense ids, recording arcs, checking
invariants) is cheap and order-sensitive.  So the engine here splits the two:

- **Workers** receive batches of packed state keys, expand them with
  ``model.step`` over every active choice combination, and return, per
  source state, the ordered list of ``(condition, packed_successor)`` pairs.
- **The coordinator** keeps the canonical BFS order: it processes one
  frontier *wave* at a time (all states discovered during the previous
  wave, in discovery order), shards the wave across the pool, and replays
  the results in (source id, choice order) -- exactly the order the
  sequential enumerator would have observed them.

Determinism guarantee
---------------------
Sequential BFS pops states in strictly increasing id order (the frontier is
FIFO and ids are assigned at discovery).  Wave-synchronous processing
preserves that order, and ``Pool.map`` returns shards in submission order,
so state ids, edge order, recorded conditions, the ``max_states`` cap and
the first :class:`InvariantViolation` are all **identical** to the
sequential path -- in both ``record_all_conditions`` modes.  The golden
test in ``tests/test_parallel_enumeration.py`` locks this down by comparing
byte-identical :meth:`StateGraph.to_json` serializations.

Process model
-------------
Models hold closures (choice guards, ``next_state``) that do not pickle, so
workers get the model by *fork inheritance*: the coordinator publishes it
in a module global before creating the pool and forked children inherit the
parent's memory image.  On platforms without the ``fork`` start method the
engine transparently falls back to the sequential enumerator -- correctness
never depends on parallelism being available.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.enumeration.bfs import (
    EnumerationError,
    InvariantViolation,
    _approx_memory,
    enumerate_states,
)
from repro.enumeration.graph import StateGraph
from repro.enumeration.stats import EnumerationStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer, resolve
from repro.smurphi.model import SyncModel
from repro.smurphi.state import StateCodec

logger = logging.getLogger("repro.enumeration")

#: Model published by the coordinator immediately before the pool forks;
#: worker processes inherit it (closures and all) without pickling.
_WORKER_MODEL: Optional[SyncModel] = None
_WORKER_CODEC: Optional[StateCodec] = None
#: Whether workers should collect per-shard metrics snapshots (set by the
#: coordinator before the fork; False keeps the no-sink path overhead-free).
_WORKER_COLLECT: bool = False


def _init_worker() -> None:
    """Per-worker setup: build the codec once from the inherited model."""
    global _WORKER_CODEC
    _WORKER_CODEC = StateCodec(_WORKER_MODEL.state_vars)


def _expand_batch(
    packed_keys: Sequence[int],
) -> Tuple[List[List[Tuple[Tuple, int]]], Optional[Dict[str, Any]]]:
    """Expand a batch of states; one row of (condition, packed_dst) per state.

    Rows preserve the model's choice enumeration order, which the
    coordinator relies on to replay transitions canonically.  When metric
    collection is on, the second element is a worker-local
    :class:`~repro.obs.metrics.MetricsRegistry` snapshot (per-shard timing
    and counts, labeled by worker pid) for the coordinator to merge.
    """
    started = time.perf_counter()
    model = _WORKER_MODEL
    codec = _WORKER_CODEC
    names = model.choice_names
    rows: List[List[Tuple[Tuple, int]]] = []
    for key in packed_keys:
        state = codec.unpack(key)
        row = []
        for choice in model.enumerate_choices(state):
            nxt = model.step(state, choice)
            row.append((tuple(choice[n] for n in names), codec.pack(nxt)))
        rows.append(row)
    if not _WORKER_COLLECT:
        return rows, None
    registry = MetricsRegistry()
    worker = str(os.getpid())
    registry.inc("enum.shard.states", len(rows), worker=worker)
    registry.inc("enum.shard.transitions", sum(len(r) for r in rows), worker=worker)
    registry.observe(
        "enum.shard.seconds", time.perf_counter() - started, worker=worker
    )
    return rows, registry.snapshot()


def _shard(items: Sequence, num_shards: int) -> List[List]:
    """Split ``items`` into at most ``num_shards`` contiguous, ordered chunks."""
    size = max(1, -(-len(items) // num_shards))
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def enumerate_states_parallel(
    model: SyncModel,
    jobs: Optional[int] = None,
    max_states: Optional[int] = None,
    record_all_conditions: bool = False,
    check_invariants: bool = True,
    obs: Optional[Observer] = None,
) -> Tuple[StateGraph, EnumerationStats]:
    """Enumerate ``model`` with ``jobs`` worker processes.

    Produces a :class:`StateGraph` identical -- same state ids in canonical
    BFS order, same edge list, same conditions -- to
    :func:`~repro.enumeration.bfs.enumerate_states`.  ``jobs=None`` uses
    every CPU; ``jobs<=1`` (or platforms without ``fork``) runs the
    sequential enumerator directly.

    ``obs`` receives the same coordinator-side counters as the sequential
    path (``enum.states`` / ``enum.transitions_explored`` / ``enum.edges``
    / ``enum.waves`` -- totals are identical for identical inputs,
    regardless of ``jobs``) plus merged worker-side shard metrics
    (``enum.shard.*``, labeled by worker pid): each forked worker snapshots
    a private registry per shard and the coordinator folds it in.
    """
    obs = resolve(obs)
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        return enumerate_states(
            model,
            max_states=max_states,
            record_all_conditions=record_all_conditions,
            check_invariants=check_invariants,
            obs=obs,
        )

    global _WORKER_MODEL, _WORKER_COLLECT
    codec = StateCodec(model.state_vars)
    graph = StateGraph(model.choice_names)
    started = time.perf_counter()

    reset = model.reset_state()
    model.validate_state(reset)
    reset_id, _ = graph.intern_state(codec.pack(reset))
    assert reset_id == StateGraph.RESET
    if check_invariants:
        violated = model.check_invariants(reset)
        if violated:
            raise InvariantViolation(reset_id, dict(reset), tuple(violated))

    seen_arcs: Set[Tuple] = set()
    transitions_explored = 0
    wave: List[int] = [reset_id]

    ctx = multiprocessing.get_context("fork")
    _WORKER_MODEL = model
    _WORKER_COLLECT = obs.enabled
    waves = 0
    try:
        with ctx.Pool(processes=jobs, initializer=_init_worker) as pool:
            while wave:
                wave_started = time.perf_counter()
                keys = [graph.state_key(src) for src in wave]
                # Oversplit so a skewed shard cannot stall the whole wave.
                shards = _shard(keys, jobs * 4)
                rows: List[List[Tuple[Tuple, int]]] = []
                for shard_rows, shard_metrics in pool.map(_expand_batch, shards):
                    rows.extend(shard_rows)
                    obs.merge(shard_metrics)
                next_wave: List[int] = []
                for src_id, row in zip(wave, rows):
                    for condition, packed_dst in row:
                        transitions_explored += 1
                        dst_id, is_new = graph.intern_state(packed_dst)
                        if is_new:
                            if max_states is not None and graph.num_states > max_states:
                                raise EnumerationError(
                                    f"state count exceeded cap of {max_states} "
                                    f"while enumerating {model.name!r}"
                                )
                            if check_invariants:
                                nxt = codec.unpack(packed_dst)
                                violated = model.check_invariants(nxt)
                                if violated:
                                    raise InvariantViolation(
                                        dst_id, dict(nxt), tuple(violated)
                                    )
                            next_wave.append(dst_id)
                        if record_all_conditions:
                            arc_key: Tuple = (src_id, dst_id, condition)
                        else:
                            arc_key = (src_id, dst_id)
                        if arc_key not in seen_arcs:
                            seen_arcs.add(arc_key)
                            graph.add_edge(src_id, dst_id, condition)
                obs.observe("enum.wave.frontier_states", len(wave))
                obs.event("enum.wave", wave=waves, frontier=len(wave),
                          shards=len(shards), states=graph.num_states,
                          transitions=transitions_explored,
                          seconds=time.perf_counter() - wave_started)
                waves += 1
                wave = next_wave
    finally:
        _WORKER_MODEL = None
        _WORKER_COLLECT = False

    elapsed = time.perf_counter() - started
    obs.inc("enum.states", graph.num_states)
    obs.inc("enum.transitions_explored", transitions_explored)
    obs.inc("enum.edges", graph.num_edges)
    obs.inc("enum.waves", waves)
    obs.gauge("enum.bits_per_state", model.state_bits())
    obs.observe("enum.seconds", elapsed, mode="parallel")
    logger.info(
        "enumerated %s with %d workers: %d states, %d edges, "
        "%d transitions, %d waves in %.3fs",
        model.name, jobs, graph.num_states, graph.num_edges,
        transitions_explored, waves, elapsed,
    )
    stats = EnumerationStats(
        model_name=model.name,
        num_states=graph.num_states,
        bits_per_state=model.state_bits(),
        num_edges=graph.num_edges,
        transitions_explored=transitions_explored,
        elapsed_seconds=elapsed,
        approx_memory_bytes=_approx_memory(graph, model.state_bits()),
    )
    return graph, stats
