"""Parallel breadth-first state enumeration with crash recovery.

The sequential enumerator (:func:`repro.enumeration.bfs.enumerate_states`)
dominates pipeline wall-clock: every reachable state is expanded by calling
``model.step`` once per choice combination, and the PP control model fires
tens of choice permutations per state.  The expansion work is embarrassingly
parallel -- each state's successor set depends only on that state -- while
the *bookkeeping* (interning states to dense ids, recording arcs, checking
invariants) is cheap and order-sensitive.  So the engine here splits the two:

- **Workers** receive spans of packed state keys, expand them with the
  inherited kernel, and return packed successor buffers.
- **The coordinator** keeps the canonical BFS order: it processes one
  frontier *wave* at a time (all states discovered during the previous
  wave, in discovery order), shards the wave across the pool, and replays
  the results in (source id, choice order) -- exactly the order the
  sequential enumerator would have observed them.

Dispatch strategy (the perf substrate)
--------------------------------------
Workers come from a persistent :class:`~repro.enumeration.pool.WorkerPool`
shared across waves and (when the pipeline passes one in) across phases,
so pool spin-up is paid once per model context rather than per call.  Per
wave the coordinator picks the cheapest dispatch that is still correct:

- **In-process** below :data:`DISPATCH_MIN_STATES` frontier states: tiny
  waves (every model's first few waves, and small models entirely) are
  expanded directly by the coordinator -- the round-trip would cost more
  than the work, and this is what makes small models *never* regress.
- **Packed shared-memory spans** (compiled kernels): the wave's keys are
  bit-packed into one ``multiprocessing.shared_memory`` segment
  (:class:`~repro.enumeration.frontier.SharedFrontier`); each worker gets
  ``(segment, start, stop)`` -- a few dozen bytes -- decodes its span,
  and returns a packed ``uint64`` successor buffer plus one guard-mask
  word per state.  The coordinator recovers the condition tuples from
  its own kernel's choice tables (mask -> signature -> table), so **no
  condition tuple and no successor list is ever pickled**.
- **Pickled shards** (interpreted kernels, chaos fault plans): the
  original list-of-ints path, kept as the fully-general fallback and as
  the stable target surface for the fault-injection chaos suite.

Determinism guarantee
---------------------
Sequential BFS pops states in strictly increasing id order (the frontier is
FIFO and ids are assigned at discovery).  Wave-synchronous processing
preserves that order, and span/shard results are always replayed in
submission order, so state ids, edge order, recorded conditions, the
``max_states`` cap and the first :class:`InvariantViolation` are all
**identical** to the sequential path -- in both ``record_all_conditions``
modes, at every job count, under every dispatch strategy above, and
regardless of how many times a span had to be retried (expansion is a pure
function of the model).  The golden tests in
``tests/test_parallel_enumeration.py`` and the chaos suite in
``tests/test_resilience.py`` lock this down by comparing byte-identical
:meth:`StateGraph.to_json` serializations.

Worker-crash recovery
---------------------
Recovery lives in :class:`~repro.enumeration.pool.WorkerPool` (it predates
the pool and kept its exact semantics): a dead worker
(``BrokenProcessPool``), a wedged one (no completion within the retry
policy's shard timeout) or a torn result pipe retires the worker
generation, sleeps an exponential backoff, re-forks and resubmits the
wave's uncollected spans.  Past the retry budget the pool *degrades*:
everything runs in-process -- slower, but it cannot crash-loop, and
results are identical.  Shared-memory segments are owned and unlinked by
the coordinator at wave boundaries (including every failure path), so
killed workers cannot leak them.

Checkpoint / resume / budgets mirror the sequential engine: snapshots are
written at wave boundaries (:class:`~repro.resilience.CheckpointConfig`),
``resume=`` continues to a bit-identical graph (checkpoints are
interchangeable between the sequential and parallel engines), and a
:class:`~repro.resilience.Budget` truncates gracefully at a boundary.

Process model
-------------
Models hold closures (choice guards, ``next_state``) that do not pickle, so
workers get the model by *fork inheritance*: the coordinator publishes it
in a module global before the pool forks and children inherit the parent's
memory image -- including the ready-built compiled kernel, so choice-table
and codec construction happen once per run, not per worker.  On platforms
without the ``fork`` start method the engine transparently falls back to
the sequential enumerator -- correctness never depends on parallelism
being available.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import time
from array import array
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.enumeration.bfs import (
    EnumerationError,
    InvariantViolation,
    _approx_memory,
    enumerate_states,
    rebuild_seen_arcs,
)
from repro.enumeration.frontier import FrontierCodec, SharedFrontier
from repro.enumeration.graph import StateGraph
from repro.enumeration.kernel import (
    Kernel,
    KernelSpec,
    flush_kernel_metrics,
    resolve_kernel,
)
from repro.enumeration.pool import WorkerPool, in_worker
from repro.enumeration.stats import EnumerationStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer, resolve
from repro.resilience.budget import Budget, BudgetMeter
from repro.resilience.checkpoint import (
    CheckpointConfig,
    build_payload,
    model_digest,
    resolve_resume,
)
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy
from repro.smurphi.model import SyncModel

logger = logging.getLogger("repro.enumeration")

#: Frontier size below which the coordinator expands in-process instead of
#: dispatching to workers.  Calibrated so the round-trip (even a packed
#: one) is always amortized by a few thousand expansions, while the golden
#: test models' larger waves still exercise the dispatch paths.
DISPATCH_MIN_STATES = 192

#: Minimum frontier states per packed span: spans this size keep every
#: round-trip worth thousands of transitions while still oversplitting
#: large waves (up to jobs*4 spans) so a skewed span cannot stall a wave.
_MIN_SPAN_STATES = 64

#: Model published by the coordinator immediately before the pool forks;
#: worker processes inherit it (closures and all) without pickling.
_WORKER_MODEL: Optional[SyncModel] = None
#: Transition kernel published alongside the model.  The coordinator
#: compiles it ONCE before the pool forks, so every worker inherits the
#: ready-built choice tables / codec closures (and any warm successor
#: memo) instead of compiling per shard or per process.
_WORKER_KERNEL: Optional[Kernel] = None
#: Whether workers should collect per-shard metrics snapshots (set by the
#: coordinator before the fork; False keeps the no-sink path overhead-free).
_WORKER_COLLECT: bool = False
#: Fault plan inherited by workers (chaos testing only; None in production).
_WORKER_FAULTS: Optional[FaultPlan] = None


def _expand_batch(
    packed_keys: Sequence[int],
    wave: int = 0,
    shard: int = 0,
    attempt: int = 0,
) -> Tuple[List[List[Tuple[Tuple, int]]], Optional[Dict[str, Any]]]:
    """Expand a batch of states; one row of (condition, packed_dst) per state.

    Rows preserve the model's choice enumeration order, which the
    coordinator relies on to replay transitions canonically.  When metric
    collection is on, the second element is a worker-local
    :class:`~repro.obs.metrics.MetricsRegistry` snapshot (per-shard timing
    and counts, labeled by worker pid) for the coordinator to merge.

    This is the fully-general expansion job: the pickled-shard dispatch
    path for interpreted kernels and fault plans, the in-process path for
    small waves, and the degraded-mode workhorse (fault hooks stay inert
    outside real workers, so degraded expansion can never kill the
    coordinator).
    """
    global _WORKER_KERNEL
    if in_worker() and _WORKER_FAULTS is not None:
        _WORKER_FAULTS.worker_hook(wave, shard, attempt)
    started = time.perf_counter()
    if _WORKER_KERNEL is None:
        _WORKER_KERNEL = resolve_kernel(_WORKER_MODEL)
    kern = _WORKER_KERNEL
    kernel_before = kern.counters()
    expand = kern.expand
    rows: List[List[Tuple[Tuple, int]]] = [list(expand(key)) for key in packed_keys]
    if not _WORKER_COLLECT:
        return rows, None
    registry = MetricsRegistry()
    worker = str(os.getpid())
    registry.inc("enum.shard.states", len(rows), worker=worker)
    registry.inc("enum.shard.transitions", sum(len(r) for r in rows), worker=worker)
    registry.observe(
        "enum.shard.seconds", time.perf_counter() - started, worker=worker
    )
    # Kernel deltas only from real workers: in-process runs share the
    # coordinator's kernel object, whose advance the final
    # flush_kernel_metrics already reports -- counting both would break
    # the expansions == num_states identity.
    if in_worker():
        for name, value in kern.counters().items():
            delta = value - kernel_before.get(name, 0)
            if delta:
                registry.inc(f"enum.kernel.{name}", delta, worker=worker)
    return rows, registry.snapshot()


def _expand_shard(payload: Tuple[List[int], int, int], attempt: int = 0):
    """Pool task wrapper for the pickled-shard path: payload + attempt."""
    packed_keys, wave, shard = payload
    return _expand_batch(packed_keys, wave, shard, attempt)


def _expand_span_packed(
    payload: Tuple[str, int, int, int], attempt: int = 0
) -> Tuple[array, array, Optional[Dict[str, Any]]]:
    """Expand one span of a shared-memory packed frontier.

    ``payload`` is ``(segment_name, total_states, start, stop)`` -- the
    whole coordinator->worker message is these few dozen bytes.  Returns
    ``(masks, successors, metrics)`` where ``masks`` holds one guard-
    signature bitmask per source state (in span order) and ``successors``
    is the flat packed key buffer of every transition in expansion order.
    Mask plus successor count are fully redundant with the coordinator's
    own choice tables, which is what lets this path ship zero condition
    tuples.  Pure: safe to retry on a fresh worker generation.
    """
    name, total, start, stop = payload
    started = time.perf_counter()
    kern = _WORKER_KERNEL
    assert kern is not None, "packed dispatch requires an inherited kernel"
    fcodec = FrontierCodec(kern.codec.total_bits)
    frontier = SharedFrontier.attach(name, fcodec, total)
    try:
        keys = frontier.keys(start, stop - start)
    finally:
        frontier.close()
    kernel_before = kern.counters()
    expand_masked = kern.expand_masked
    append_key = fcodec.append_key
    masks = array("Q")
    succs = array("Q")
    transitions = 0
    for key in keys:
        mask, row = expand_masked(key)
        masks.append(mask)
        transitions += len(row)
        for _, dst in row:
            append_key(succs, dst)
    if not _WORKER_COLLECT:
        return masks, succs, None
    registry = MetricsRegistry()
    worker = str(os.getpid())
    registry.inc("enum.shard.states", len(keys), worker=worker)
    registry.inc("enum.shard.transitions", transitions, worker=worker)
    registry.observe(
        "enum.shard.seconds", time.perf_counter() - started, worker=worker
    )
    # Same coordinator-vs-worker rule as _expand_batch: degraded
    # in-process execution must not double-report the shared kernel.
    if in_worker():
        for cname, value in kern.counters().items():
            delta = value - kernel_before.get(cname, 0)
            if delta:
                registry.inc(f"enum.kernel.{cname}", delta, worker=worker)
    return masks, succs, registry.snapshot()


def _shard(items: Sequence, num_shards: int) -> List[List]:
    """Split ``items`` into at most ``num_shards`` contiguous, ordered chunks."""
    size = max(1, -(-len(items) // num_shards))
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def _span_bounds(count: int, jobs: int) -> List[Tuple[int, int]]:
    """Adaptive packed-span layout: contiguous ``(start, stop)`` pairs.

    Oversplits to ``jobs * 4`` spans for load balance, but never below
    :data:`_MIN_SPAN_STATES` states per span so dispatch stays amortized.
    """
    num_spans = max(1, min(jobs * 4, count // _MIN_SPAN_STATES))
    size = -(-count // num_spans)
    return [(start, min(count, start + size)) for start in range(0, count, size)]


def make_worker_pool(
    jobs: int,
    retry: Optional[RetryPolicy] = None,
    obs: Optional[Observer] = None,
) -> WorkerPool:
    """Build the pipeline-wide persistent :class:`WorkerPool`.

    The pool's executor factory resolves ``ProcessPoolExecutor`` through
    this module, preserving the long-standing test seam that intercepts
    pool creation by monkeypatching ``parallel.ProcessPoolExecutor``.
    """
    return WorkerPool(jobs, policy=retry, obs=obs)


def enumerate_states_parallel(
    model: SyncModel,
    jobs: Optional[int] = None,
    max_states: Optional[int] = None,
    record_all_conditions: bool = False,
    check_invariants: bool = True,
    obs: Optional[Observer] = None,
    checkpoint: Optional[CheckpointConfig] = None,
    resume=None,
    budget: Optional[Budget] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    kernel: KernelSpec = "compiled",
    pool: Optional[WorkerPool] = None,
) -> Tuple[StateGraph, EnumerationStats]:
    """Enumerate ``model`` with ``jobs`` worker processes.

    Produces a :class:`StateGraph` identical -- same state ids in canonical
    BFS order, same edge list, same conditions -- to
    :func:`~repro.enumeration.bfs.enumerate_states`.  ``jobs=None`` uses
    every CPU; ``jobs<=1`` (or platforms without ``fork``) runs the
    sequential enumerator directly.

    ``checkpoint`` / ``resume`` / ``budget`` / ``faults`` have the same
    semantics as on :func:`~repro.enumeration.bfs.enumerate_states`
    (checkpoints are interchangeable between the two engines); ``retry``
    is the :class:`~repro.resilience.RetryPolicy` governing worker-crash
    recovery (timeouts, backoff, respawn, degradation).

    ``pool`` accepts a shared persistent :class:`WorkerPool` (the pipeline
    passes its phase-spanning pool); without one, the call owns a private
    pool and shuts it down on return.  Either way workers are only ever
    forked when a wave is actually dispatched, so small models pay no
    spawn cost at all.

    ``obs`` receives the same coordinator-side counters as the sequential
    path (``enum.states`` / ``enum.transitions_explored`` / ``enum.edges``
    / ``enum.waves`` -- totals are identical for identical inputs,
    regardless of ``jobs``) plus merged worker-side shard metrics
    (``enum.shard.*``, labeled by worker pid -- the coordinator's own pid
    for in-process waves), recovery counters (``enum.shards_retried`` /
    ``enum.pool_respawns``) and pool lifecycle counters (``enum.pool.*``).

    ``kernel`` selects the transition kernel exactly as on the sequential
    engine.  The coordinator resolves (compiles) the kernel once, before
    the pool is created, so forked workers inherit the ready-built kernel
    -- one compilation per run, not per worker or per shard.
    """
    obs = resolve(obs)
    if jobs is None:
        jobs = pool.jobs if pool is not None else (os.cpu_count() or 1)
    if jobs <= 1 or "fork" not in multiprocessing.get_all_start_methods():
        return enumerate_states(
            model,
            max_states=max_states,
            record_all_conditions=record_all_conditions,
            check_invariants=check_invariants,
            obs=obs,
            checkpoint=checkpoint,
            resume=resume,
            budget=budget,
            faults=faults,
            kernel=kernel,
        )

    global _WORKER_MODEL, _WORKER_COLLECT, _WORKER_FAULTS, _WORKER_KERNEL
    kern = resolve_kernel(model, kernel)
    kernel_before = kern.counters()
    started = time.perf_counter()
    digest = model_digest(model, record_all_conditions)
    resume_payload = resolve_resume(resume, checkpoint, digest)
    meter = BudgetMeter(budget)
    checkpoints_written = 0
    truncated = False
    budget_outcome: Optional[str] = None

    seen_arcs: Set[Tuple]
    if resume_payload is not None:
        graph = StateGraph.from_json(resume_payload["graph_json"])
        seen_arcs = rebuild_seen_arcs(graph, record_all_conditions)
        transitions_explored = int(resume_payload["transitions_explored"])
        wave: List[int] = list(resume_payload["frontier"])
        waves = int(resume_payload["waves_completed"])
        resumed = True
        logger.info(
            "resuming %s from checkpoint: %d states, %d edges, "
            "%d frontier states, %d waves completed",
            model.name, graph.num_states, graph.num_edges, len(wave), waves,
        )
    else:
        graph = StateGraph(model.choice_names)
        reset = model.reset_state()
        model.validate_state(reset)
        reset_id, _ = graph.intern_state(kern.reset_key())
        assert reset_id == StateGraph.RESET
        if check_invariants:
            violated = model.check_invariants(reset)
            if violated:
                raise InvariantViolation(reset_id, dict(reset), tuple(violated))
        seen_arcs = set()
        transitions_explored = 0
        wave = [reset_id]
        waves = 0
        resumed = False

    # Publish the fork-inherited worker globals BEFORE declaring the pool
    # context: workers fork lazily at the first dispatch and must inherit
    # exactly this state.
    _WORKER_MODEL = model
    _WORKER_KERNEL = kern
    _WORKER_COLLECT = obs.enabled
    _WORKER_FAULTS = faults
    owned_pool = pool is None
    if owned_pool:
        pool = make_worker_pool(jobs, retry, obs)
    else:
        pool.obs = obs
        if retry is not None:
            pool.policy = retry
    # The context tag is content-based (model digest), so back-to-back runs
    # of equivalent models reuse the live worker generation -- warm kernel
    # tables and memos, zero spawn cost.
    pool.set_context(("enumerate", digest, obs.enabled))
    if faults is not None:
        # Fault plans are stateful and scripted per run: force a fresh
        # worker generation that inherits exactly this plan.
        pool.retire()
    retried_before, respawns_before = pool.recovery_snapshot()

    # Packed dispatch needs a compiled kernel (mask+table reconstruction)
    # whose guard signature fits one 64-bit mask word; fault plans target
    # (wave, shard, attempt) through the pickled-shard path, so chaos runs
    # keep the legacy dispatch byte-for-byte.
    packed_ok = (
        faults is None
        and hasattr(kern, "expand_masked")
        and len(kern.tables.guards) <= 64
    )
    fcodec = FrontierCodec(kern.codec.total_bits) if packed_ok else None
    mask_conditions: Dict[int, Tuple[Tuple, ...]] = {}
    frontier_remaining = 0

    def conditions_for(mask: int) -> Tuple[Tuple, ...]:
        conds = mask_conditions.get(mask)
        if conds is None:
            sig = tuple(
                bool((mask >> i) & 1) for i in range(len(kern.tables.guards))
            )
            conds = tuple(cond for _, cond in kern.tables.table(sig))
            mask_conditions[mask] = conds
        return conds

    try:
        while wave:
            wave_started = time.perf_counter()
            keys = [graph.state_key(src) for src in wave]
            dispatch = pool.available and len(keys) >= DISPATCH_MIN_STATES
            rows: List[List[Tuple[Tuple, int]]] = []
            if faults is not None or (dispatch and not packed_ok):
                # Oversplit so a skewed shard cannot stall the whole wave.
                shards = _shard(keys, jobs * 4)
                payloads = [(shard, waves, i) for i, shard in enumerate(shards)]
                num_shards = len(shards)
                for shard_rows, shard_metrics in pool.run_tasks(
                    _expand_shard, payloads, timeout=pool.policy.shard_timeout
                ):
                    rows.extend(shard_rows)
                    obs.merge(shard_metrics)
            elif not dispatch:
                # Below the dispatch threshold (or pool degraded): expand
                # in-process as one coordinator-side shard.
                shard_rows, shard_metrics = _expand_batch(keys, waves, 0, 0)
                rows = shard_rows
                obs.merge(shard_metrics)
                num_shards = 1
            else:
                frontier = SharedFrontier.create(keys, fcodec)
                try:
                    spans = _span_bounds(len(keys), jobs)
                    payloads = [
                        (frontier.name, len(keys), start, stop)
                        for start, stop in spans
                    ]
                    num_shards = len(spans)
                    pool.note_dispatch(frontier.nbytes)
                    span_results = pool.run_tasks(
                        _expand_span_packed,
                        payloads,
                        timeout=pool.policy.shard_timeout,
                    )
                finally:
                    # The coordinator owns the segment: unlink at the wave
                    # boundary on every path (success, retry exhaustion,
                    # genuine error), so killed workers cannot leak it.
                    frontier.unlink()
                for masks, succs, shard_metrics in span_results:
                    obs.merge(shard_metrics)
                    pos = 0
                    for mask in masks:
                        conds = conditions_for(mask)
                        dsts = fcodec.unpack_keys(succs, pos, len(conds))
                        rows.append(list(zip(conds, dsts)))
                        pos += len(conds)
            next_wave: List[int] = []
            for src_id, row in zip(wave, rows):
                for condition, packed_dst in row:
                    transitions_explored += 1
                    dst_id, is_new = graph.intern_state(packed_dst)
                    if is_new:
                        if max_states is not None and graph.num_states > max_states:
                            raise EnumerationError(
                                f"state count exceeded cap of {max_states} "
                                f"while enumerating {model.name!r}"
                            )
                        if check_invariants:
                            nxt = kern.unpack(packed_dst)
                            violated = model.check_invariants(nxt)
                            if violated:
                                raise InvariantViolation(
                                    dst_id, nxt, tuple(violated)
                                )
                        next_wave.append(dst_id)
                    if record_all_conditions:
                        arc_key: Tuple = (src_id, dst_id, condition)
                    else:
                        arc_key = (src_id, dst_id)
                    if arc_key not in seen_arcs:
                        seen_arcs.add(arc_key)
                        graph.add_edge(src_id, dst_id, condition)
            obs.observe("enum.wave.frontier_states", len(wave))
            obs.event("enum.wave", wave=waves, frontier=len(wave),
                      shards=num_shards, states=graph.num_states,
                      transitions=transitions_explored,
                      seconds=time.perf_counter() - wave_started)
            obs.heartbeat("enumerate", wave=waves, frontier=len(wave),
                          states=graph.num_states,
                          transitions=transitions_explored,
                          shards=num_shards)
            waves += 1
            wave = next_wave
            if not wave:
                break
            # Wave boundary: the coordinator state is consistent here, so
            # this is where budgets bite, checkpoints land and scripted
            # SIGINTs fire (after the checkpoint, like a real Ctrl-C).
            budget_outcome = meter.exhausted(graph.num_states)
            if budget_outcome is not None:
                truncated = True
                frontier_remaining = len(wave)
                if checkpoint is not None:
                    checkpoint.store.save(build_payload(
                        graph, wave, transitions_explored, waves,
                        digest, model.name,
                    ))
                    checkpoints_written += 1
                logger.warning(
                    "budget exhausted (%s) after %d waves: returning partial "
                    "graph with %d states (%d unexpanded)",
                    budget_outcome, waves, graph.num_states, len(wave),
                )
                break
            if checkpoint is not None and waves % checkpoint.every_waves == 0:
                checkpoint.store.save(build_payload(
                    graph, wave, transitions_explored, waves,
                    digest, model.name,
                ))
                checkpoints_written += 1
                obs.event("enum.checkpoint", wave=waves,
                          states=graph.num_states)
            if faults is not None:
                faults.boundary_hook(waves)
    finally:
        if owned_pool:
            pool.shutdown()
        elif faults is not None:
            # Never let a fault-laden worker generation outlive its run.
            pool.retire()
        _WORKER_MODEL = None
        _WORKER_COLLECT = False
        _WORKER_FAULTS = None
        _WORKER_KERNEL = None

    elapsed = time.perf_counter() - started
    retried_after, respawns_after = pool.recovery_snapshot()
    obs.inc("enum.states", graph.num_states)
    obs.inc("enum.transitions_explored", transitions_explored)
    obs.inc("enum.edges", graph.num_edges)
    obs.inc("enum.waves", waves)
    obs.gauge("enum.bits_per_state", model.state_bits())
    obs.observe("enum.seconds", elapsed, mode="parallel")
    # Coordinator-side kernel deltas (in-process/degraded expansions land
    # here; worker-side expansions arrive via the merged shard registries).
    flush_kernel_metrics(obs, kern, kernel_before)
    logger.info(
        "enumerated %s with %d workers: %d states, %d edges, "
        "%d transitions, %d waves in %.3fs",
        model.name, jobs, graph.num_states, graph.num_edges,
        transitions_explored, waves, elapsed,
    )
    stats = EnumerationStats(
        model_name=model.name,
        num_states=graph.num_states,
        bits_per_state=model.state_bits(),
        num_edges=graph.num_edges,
        transitions_explored=transitions_explored,
        elapsed_seconds=elapsed,
        approx_memory_bytes=_approx_memory(graph, model.state_bits()),
        truncated=truncated,
        budget_outcome=budget_outcome,
        frontier_remaining=frontier_remaining,
        resumed=resumed,
        checkpoints_written=checkpoints_written,
        shards_retried=retried_after - retried_before,
        pool_respawns=respawns_after - respawns_before,
        degraded=pool.degraded,
    )
    return graph, stats
