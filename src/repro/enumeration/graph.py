"""The complete control state graph produced by enumeration.

States are interned to dense integer ids (id 0 is always the reset state).
Each edge carries the *transition condition*: the tuple of abstract-model
choices that caused it, which the vector generator later maps back onto
simulator stimuli (the "transition condition mapping" of section 3.3).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Edge:
    """One transition arc of the state graph.

    ``condition`` is a tuple of choice values in the model's choice
    declaration order -- the permutation of abstract-block actions that was
    recorded for this arc.
    """

    src: int
    dst: int
    condition: Tuple

    def __repr__(self) -> str:
        return f"Edge({self.src}->{self.dst}, cond={self.condition!r})"


class StateGraph:
    """Directed multigraph over enumerated control states.

    Parameters
    ----------
    choice_names:
        Names of the model's choice points, defining the layout of each
        edge's ``condition`` tuple.
    """

    RESET = 0

    def __init__(self, choice_names: Sequence[str]):
        self.choice_names = list(choice_names)
        self._state_ids: Dict[int, int] = {}
        self._state_keys: List[int] = []
        self._edges: List[Edge] = []
        self._out: List[List[int]] = []
        self._adjacency: Optional[Tuple[Tuple[Tuple[int, int], ...], ...]] = None
        self._adjacency_stamp: Tuple[int, int] = (0, 0)

    # -- construction --------------------------------------------------------

    def intern_state(self, packed_key: int) -> Tuple[int, bool]:
        """Return ``(state_id, is_new)`` for a packed state key."""
        existing = self._state_ids.get(packed_key)
        if existing is not None:
            return existing, False
        state_id = len(self._state_keys)
        self._state_ids[packed_key] = state_id
        self._state_keys.append(packed_key)
        self._out.append([])
        return state_id, True

    def add_edge(self, src: int, dst: int, condition: Tuple) -> Edge:
        edge = Edge(src, dst, tuple(condition))
        index = len(self._edges)
        self._edges.append(edge)
        self._out[src].append(index)
        return edge

    # -- queries ---------------------------------------------------------------

    @property
    def num_states(self) -> int:
        return len(self._state_keys)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def state_key(self, state_id: int) -> int:
        """Packed state key for a state id (decode with the model's codec)."""
        return self._state_keys[state_id]

    def state_id_of_key(self, packed_key: int) -> Optional[int]:
        return self._state_ids.get(packed_key)

    def edges(self) -> Sequence[Edge]:
        return self._edges

    def edge(self, index: int) -> Edge:
        return self._edges[index]

    def out_edge_indices(self, state_id: int) -> Sequence[int]:
        return self._out[state_id]

    def out_adjacency(self) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """Per-state ``((edge_index, dst), ...)`` view of the out-edges.

        Built once and cached; the tour generator's DFS and explore phases
        walk out-edges of the same (now frozen) graph many times over, and
        this view spares them an ``Edge`` attribute lookup per step.  The
        cache is stamped with ``(num_states, num_edges)`` so mutating the
        graph after a call transparently rebuilds it.
        """
        stamp = (len(self._state_keys), len(self._edges))
        if self._adjacency is None or self._adjacency_stamp != stamp:
            edges = self._edges
            self._adjacency = tuple(
                tuple((i, edges[i].dst) for i in out) for out in self._out
            )
            self._adjacency_stamp = stamp
        return self._adjacency

    def out_edges(self, state_id: int) -> Iterator[Edge]:
        for index in self._out[state_id]:
            yield self._edges[index]

    def successors(self, state_id: int) -> Iterator[int]:
        for index in self._out[state_id]:
            yield self._edges[index].dst

    def has_edge_between(self, src: int, dst: int) -> bool:
        return any(self._edges[i].dst == dst for i in self._out[src])

    def condition_as_dict(self, edge: Edge) -> Dict[str, object]:
        """Expand an edge's condition tuple into a choice-name -> value map."""
        return dict(zip(self.choice_names, edge.condition))

    def in_degrees(self) -> List[int]:
        degrees = [0] * self.num_states
        for edge in self._edges:
            degrees[edge.dst] += 1
        return degrees

    def reset_only_edges(self) -> List[int]:
        """Edge indices reachable only via the reset state.

        The paper observes (Table 3.3 discussion) that the PP model has
        numerous edges reachable only from reset -- different initial input
        conditions -- which lower-bounds the number of separate traces.
        Here: edges whose source is reset and whose destination's only
        in-arcs leave reset, computed conservatively as out-edges of reset
        that no other tour could pick up mid-trace.
        """
        return [i for i, e in enumerate(self._edges) if e.src == self.RESET]

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "choice_names": self.choice_names,
            "state_keys": self._state_keys,
            "edges": [[e.src, e.dst, list(e.condition)] for e in self._edges],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "StateGraph":
        payload = json.loads(text)
        graph = cls(payload["choice_names"])
        for key in payload["state_keys"]:
            graph.intern_state(key)
        for src, dst, condition in payload["edges"]:
            graph.add_edge(src, dst, tuple(condition))
        return graph

    def __repr__(self) -> str:
        return f"StateGraph({self.num_states} states, {self.num_edges} edges)"
