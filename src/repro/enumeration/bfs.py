"""Breadth-first state enumeration (paper section 3.2).

Starting from the reset state, every combination of abstract-model choices
is tried at every state.  As a new state is found, the choice of actions
that caused the transition becomes an edge of the state graph.  Following
the paper, when more than one permutation of actions causes the same
transition between two states, only the *first* is recorded ("first
condition leading to a new state") -- this keeps the graph small but can
mask implementations with *fewer* behaviours (Fig. 4.2).  The fix the
paper proposes, recording every unique transition condition, is available
via ``record_all_conditions=True`` and is benchmarked as an ablation.

Transition kernels
------------------
The hot loop -- expanding one state into its ordered successor list --
is delegated to a *transition kernel* (:mod:`repro.enumeration.kernel`).
``kernel="compiled"`` (the default) precompiles the model's choice
tables and state codec and skips per-transition re-validation; it
produces a graph **bit-identical** to ``kernel="interpreted"``, the
fully validated reference path kept as a debugging escape hatch.

Resilience
----------
Long enumerations survive interruption: ``checkpoint=`` snapshots the
coordinator state (graph, frontier, counters) to an atomic on-disk
:class:`~repro.resilience.CheckpointStore` at wave boundaries, and
``resume=`` continues from such a snapshot to a **bit-identical** final
graph.  ``budget=`` bounds the run (wall clock / memory / states) at wave
boundaries; on exhaustion the partial graph is returned with
``stats.truncated=True`` instead of raising.  ``faults=`` injects
deterministic failures for the chaos suite.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from typing import Dict, Optional, Set, Tuple

from repro.enumeration.graph import StateGraph
from repro.enumeration.kernel import KernelSpec, flush_kernel_metrics, resolve_kernel
from repro.enumeration.stats import EnumerationStats
from repro.obs.observer import Observer, resolve
from repro.resilience.budget import Budget, BudgetMeter
from repro.resilience.checkpoint import (
    CheckpointConfig,
    build_payload,
    model_digest,
    resolve_resume,
)
from repro.resilience.faults import FaultPlan
from repro.smurphi.model import SyncModel

logger = logging.getLogger("repro.enumeration")


class EnumerationError(Exception):
    """Raised when enumeration cannot proceed (e.g. state-count cap hit)."""


class InvariantViolation(EnumerationError):
    """Raised when a model invariant fails on a reachable state."""

    def __init__(self, state_id: int, state: Dict, violated: Tuple[str, ...]):
        self.state_id = state_id
        self.state = state
        self.violated = violated
        super().__init__(
            f"invariants {list(violated)} violated in reachable state #{state_id}: {state}"
        )


def rebuild_seen_arcs(graph: StateGraph, record_all_conditions: bool) -> Set[Tuple]:
    """Reconstruct the arc-dedup set a checkpointed graph implies.

    The recorded edges *are* the dedup set (one edge per key, inserted in
    first-seen order), so resuming needs no separate serialization of it.
    """
    if record_all_conditions:
        return {(e.src, e.dst, e.condition) for e in graph.edges()}
    return {(e.src, e.dst) for e in graph.edges()}


def enumerate_states(
    model: SyncModel,
    max_states: Optional[int] = None,
    record_all_conditions: bool = False,
    check_invariants: bool = True,
    obs: Optional[Observer] = None,
    checkpoint: Optional[CheckpointConfig] = None,
    resume=None,
    budget: Optional[Budget] = None,
    faults: Optional[FaultPlan] = None,
    kernel: KernelSpec = "compiled",
) -> Tuple[StateGraph, EnumerationStats]:
    """Fully enumerate ``model`` from reset; return its state graph and stats.

    Parameters
    ----------
    model:
        The synchronous FSM model to enumerate.
    max_states:
        Safety cap; exceeding it raises :class:`EnumerationError` rather
        than silently truncating the graph (a truncated graph would make
        tour coverage claims meaningless).
    record_all_conditions:
        If true, record one edge per *unique transition condition* instead
        of one edge per (src, dst) pair -- the paper's proposed fix for the
        fewer-behaviours failure mode of Fig. 4.2.
    check_invariants:
        Evaluate the model's invariants on every reachable state.
    obs:
        Observability sink (:class:`repro.obs.Observer`); receives per-wave
        frontier sizes plus end-of-run counters (``enum.states``,
        ``enum.transitions_explored``, ``enum.edges``, ``enum.waves``).
        ``None`` is the no-op fast path.  Hot-loop accounting stays in
        local variables and flushes at wave boundaries, so instrumentation
        cost is independent of transition count.
    checkpoint:
        :class:`~repro.resilience.CheckpointConfig`: snapshot the
        coordinator state every ``every_waves`` wave boundaries.
    resume:
        ``True`` (load the newest checkpoint from ``checkpoint.store``) or
        a payload dict from :meth:`CheckpointStore.load`; the resumed run
        finishes with a graph byte-identical to an uninterrupted one.
    budget:
        :class:`~repro.resilience.Budget` checked at wave boundaries; on
        exhaustion the partial graph is returned with
        ``stats.truncated=True`` (and a final checkpoint is written when
        checkpointing is on, so the run is resumable with a larger budget).
    faults:
        Deterministic :class:`~repro.resilience.FaultPlan` for the chaos
        suite (the sequential engine honours the SIGINT-at-wave fault).
    kernel:
        Transition kernel: ``"compiled"`` (default; precompiled choice
        tables + specialized codec + reduced validation), ``"interpreted"``
        (the fully validated reference path), or a pre-built kernel object
        from :mod:`repro.enumeration.kernel`.  Both modes produce
        bit-identical graphs and identical ``enum.*`` counter totals.
    """
    obs = resolve(obs)
    kern = resolve_kernel(model, kernel)
    kernel_before = kern.counters()
    started = time.perf_counter()
    digest = model_digest(model, record_all_conditions)
    resume_payload = resolve_resume(resume, checkpoint, digest)
    meter = BudgetMeter(budget)
    checkpoints_written = 0
    truncated = False
    budget_outcome: Optional[str] = None

    # For first-condition mode we must not record a second arc between the
    # same (src, dst) pair; for all-conditions mode dedup on the condition too.
    seen_arcs: Set[Tuple]
    # BFS wave accounting: ids are assigned in discovery order and the
    # frontier is FIFO, so the states of wave k+1 are exactly the ids
    # discovered while wave k was being expanded.  Peeking an id beyond
    # the current wave's last id therefore marks a wave boundary.
    if resume_payload is not None:
        graph = StateGraph.from_json(resume_payload["graph_json"])
        seen_arcs = rebuild_seen_arcs(graph, record_all_conditions)
        transitions_explored = int(resume_payload["transitions_explored"])
        frontier = deque(resume_payload["frontier"])
        waves = int(resume_payload["waves_completed"]) + 1
        wave_last = frontier[-1] if frontier else graph.num_states - 1
        wave_size = len(frontier)
        resumed = True
        logger.info(
            "resuming %s from checkpoint: %d states, %d edges, "
            "%d frontier states, %d waves completed",
            model.name, graph.num_states, graph.num_edges,
            len(frontier), waves - 1,
        )
    else:
        graph = StateGraph(model.choice_names)
        reset = model.reset_state()
        model.validate_state(reset)
        reset_id, _ = graph.intern_state(kern.reset_key())
        assert reset_id == StateGraph.RESET
        if check_invariants:
            violated = model.check_invariants(reset)
            if violated:
                raise InvariantViolation(reset_id, dict(reset), tuple(violated))
        seen_arcs = set()
        transitions_explored = 0
        frontier = deque([reset_id])
        waves = 1
        wave_last = reset_id
        wave_size = 1
        resumed = False

    while frontier:
        if frontier[0] > wave_last:
            obs.observe("enum.wave.frontier_states", wave_size)
            obs.event("enum.wave", wave=waves - 1, frontier=wave_size,
                      states=graph.num_states,
                      transitions=transitions_explored)
            obs.heartbeat("enumerate", wave=waves - 1, frontier=wave_size,
                          states=graph.num_states,
                          transitions=transitions_explored)
            waves += 1
            previous_last = wave_last
            wave_last = graph.num_states - 1
            wave_size = wave_last - previous_last
            # Resilience hooks run at the boundary, where the coordinator
            # state (graph + untouched frontier) is consistent.
            waves_completed = waves - 1
            budget_outcome = meter.exhausted(graph.num_states)
            if budget_outcome is not None:
                truncated = True
                if checkpoint is not None:
                    checkpoint.store.save(build_payload(
                        graph, list(frontier), transitions_explored,
                        waves_completed, digest, model.name,
                    ))
                    checkpoints_written += 1
                logger.warning(
                    "budget exhausted (%s) after %d waves: returning partial "
                    "graph with %d states (%d unexpanded)",
                    budget_outcome, waves_completed, graph.num_states,
                    len(frontier),
                )
                break
            if checkpoint is not None and waves_completed % checkpoint.every_waves == 0:
                checkpoint.store.save(build_payload(
                    graph, list(frontier), transitions_explored,
                    waves_completed, digest, model.name,
                ))
                checkpoints_written += 1
                obs.event("enum.checkpoint", wave=waves_completed,
                          states=graph.num_states)
            if faults is not None:
                faults.boundary_hook(waves_completed)
        src_id = frontier.popleft()
        for condition, packed_dst in kern.expand(graph.state_key(src_id)):
            transitions_explored += 1
            dst_id, is_new = graph.intern_state(packed_dst)
            if is_new:
                if max_states is not None and graph.num_states > max_states:
                    raise EnumerationError(
                        f"state count exceeded cap of {max_states} "
                        f"while enumerating {model.name!r}"
                    )
                if check_invariants:
                    nxt = kern.unpack(packed_dst)
                    violated = model.check_invariants(nxt)
                    if violated:
                        raise InvariantViolation(dst_id, nxt, tuple(violated))
                frontier.append(dst_id)
            arc_key: Tuple
            if record_all_conditions:
                arc_key = (src_id, dst_id, condition)
            else:
                arc_key = (src_id, dst_id)
            if arc_key not in seen_arcs:
                seen_arcs.add(arc_key)
                graph.add_edge(src_id, dst_id, condition)

    elapsed = time.perf_counter() - started
    if not truncated:
        obs.observe("enum.wave.frontier_states", wave_size)
        obs.event("enum.wave", wave=waves - 1, frontier=wave_size,
                  states=graph.num_states, transitions=transitions_explored)
    obs.heartbeat("enumerate", wave=waves - 1, frontier=0,
                  states=graph.num_states, transitions=transitions_explored)
    obs.inc("enum.states", graph.num_states)
    obs.inc("enum.transitions_explored", transitions_explored)
    obs.inc("enum.edges", graph.num_edges)
    obs.inc("enum.waves", waves)
    obs.gauge("enum.bits_per_state", model.state_bits())
    obs.observe("enum.seconds", elapsed, mode="sequential")
    flush_kernel_metrics(obs, kern, kernel_before)
    logger.info(
        "enumerated %s: %d states, %d edges, %d transitions, %d waves in %.3fs",
        model.name, graph.num_states, graph.num_edges,
        transitions_explored, waves, elapsed,
    )
    stats = EnumerationStats(
        model_name=model.name,
        num_states=graph.num_states,
        bits_per_state=model.state_bits(),
        num_edges=graph.num_edges,
        transitions_explored=transitions_explored,
        elapsed_seconds=elapsed,
        approx_memory_bytes=_approx_memory(graph, model.state_bits()),
        truncated=truncated,
        budget_outcome=budget_outcome,
        frontier_remaining=len(frontier) if truncated else 0,
        resumed=resumed,
        checkpoints_written=checkpoints_written,
    )
    return graph, stats


def _approx_memory(graph: StateGraph, bits_per_state: int) -> int:
    """Rough memory accounting comparable to the paper's Table 3.2 row.

    States are charged their packed width (rounded to bytes) plus hash-table
    overhead; edges are charged a fixed record size.
    """
    state_bytes = graph.num_states * (max(1, (bits_per_state + 7) // 8) + 16)
    edge_bytes = graph.num_edges * 24
    return state_bytes + edge_bytes
