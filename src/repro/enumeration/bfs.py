"""Breadth-first state enumeration (paper section 3.2).

Starting from the reset state, every combination of abstract-model choices
is tried at every state.  As a new state is found, the choice of actions
that caused the transition becomes an edge of the state graph.  Following
the paper, when more than one permutation of actions causes the same
transition between two states, only the *first* is recorded ("first
condition leading to a new state") -- this keeps the graph small but can
mask implementations with *fewer* behaviours (Fig. 4.2).  The fix the
paper proposes, recording every unique transition condition, is available
via ``record_all_conditions=True`` and is benchmarked as an ablation.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.enumeration.graph import StateGraph
from repro.enumeration.stats import EnumerationStats
from repro.obs.observer import Observer, resolve
from repro.smurphi.model import SyncModel
from repro.smurphi.state import StateCodec

logger = logging.getLogger("repro.enumeration")


class EnumerationError(Exception):
    """Raised when enumeration cannot proceed (e.g. state-count cap hit)."""


class InvariantViolation(EnumerationError):
    """Raised when a model invariant fails on a reachable state."""

    def __init__(self, state_id: int, state: Dict, violated: Tuple[str, ...]):
        self.state_id = state_id
        self.state = state
        self.violated = violated
        super().__init__(
            f"invariants {list(violated)} violated in reachable state #{state_id}: {state}"
        )


def enumerate_states(
    model: SyncModel,
    max_states: Optional[int] = None,
    record_all_conditions: bool = False,
    check_invariants: bool = True,
    obs: Optional[Observer] = None,
) -> Tuple[StateGraph, EnumerationStats]:
    """Fully enumerate ``model`` from reset; return its state graph and stats.

    Parameters
    ----------
    model:
        The synchronous FSM model to enumerate.
    max_states:
        Safety cap; exceeding it raises :class:`EnumerationError` rather
        than silently truncating the graph (a truncated graph would make
        tour coverage claims meaningless).
    record_all_conditions:
        If true, record one edge per *unique transition condition* instead
        of one edge per (src, dst) pair -- the paper's proposed fix for the
        fewer-behaviours failure mode of Fig. 4.2.
    check_invariants:
        Evaluate the model's invariants on every reachable state.
    obs:
        Observability sink (:class:`repro.obs.Observer`); receives per-wave
        frontier sizes plus end-of-run counters (``enum.states``,
        ``enum.transitions_explored``, ``enum.edges``, ``enum.waves``).
        ``None`` is the no-op fast path.  Hot-loop accounting stays in
        local variables and flushes at wave boundaries, so instrumentation
        cost is independent of transition count.
    """
    obs = resolve(obs)
    codec = StateCodec(model.state_vars)
    graph = StateGraph(model.choice_names)
    started = time.perf_counter()

    reset = model.reset_state()
    model.validate_state(reset)
    reset_id, _ = graph.intern_state(codec.pack(reset))
    assert reset_id == StateGraph.RESET

    frontier = deque([reset_id])
    # For first-condition mode we must not record a second arc between the
    # same (src, dst) pair; for all-conditions mode dedup on the condition too.
    seen_arcs: Set[Tuple] = set()
    transitions_explored = 0

    if check_invariants:
        violated = model.check_invariants(reset)
        if violated:
            raise InvariantViolation(reset_id, dict(reset), tuple(violated))

    # BFS wave accounting: ids are assigned in discovery order and the
    # frontier is FIFO, so the states of wave k+1 are exactly the ids
    # discovered while wave k was being expanded.  Popping an id beyond
    # the current wave's last id therefore marks a wave boundary.
    waves = 1
    wave_last = reset_id
    wave_size = 1

    while frontier:
        src_id = frontier.popleft()
        if src_id > wave_last:
            obs.observe("enum.wave.frontier_states", wave_size)
            obs.event("enum.wave", wave=waves - 1, frontier=wave_size,
                      states=graph.num_states,
                      transitions=transitions_explored)
            waves += 1
            previous_last = wave_last
            wave_last = graph.num_states - 1
            wave_size = wave_last - previous_last
        src_state = codec.unpack(graph.state_key(src_id))
        for choice in model.enumerate_choices(src_state):
            transitions_explored += 1
            nxt = model.step(src_state, choice)
            dst_id, is_new = graph.intern_state(codec.pack(nxt))
            if is_new:
                if max_states is not None and graph.num_states > max_states:
                    raise EnumerationError(
                        f"state count exceeded cap of {max_states} "
                        f"while enumerating {model.name!r}"
                    )
                if check_invariants:
                    violated = model.check_invariants(nxt)
                    if violated:
                        raise InvariantViolation(dst_id, dict(nxt), tuple(violated))
                frontier.append(dst_id)
            condition = tuple(choice[name] for name in model.choice_names)
            arc_key: Tuple
            if record_all_conditions:
                arc_key = (src_id, dst_id, condition)
            else:
                arc_key = (src_id, dst_id)
            if arc_key not in seen_arcs:
                seen_arcs.add(arc_key)
                graph.add_edge(src_id, dst_id, condition)

    elapsed = time.perf_counter() - started
    obs.observe("enum.wave.frontier_states", wave_size)
    obs.event("enum.wave", wave=waves - 1, frontier=wave_size,
              states=graph.num_states, transitions=transitions_explored)
    obs.inc("enum.states", graph.num_states)
    obs.inc("enum.transitions_explored", transitions_explored)
    obs.inc("enum.edges", graph.num_edges)
    obs.inc("enum.waves", waves)
    obs.gauge("enum.bits_per_state", model.state_bits())
    obs.observe("enum.seconds", elapsed, mode="sequential")
    logger.info(
        "enumerated %s: %d states, %d edges, %d transitions, %d waves in %.3fs",
        model.name, graph.num_states, graph.num_edges,
        transitions_explored, waves, elapsed,
    )
    stats = EnumerationStats(
        model_name=model.name,
        num_states=graph.num_states,
        bits_per_state=model.state_bits(),
        num_edges=graph.num_edges,
        transitions_explored=transitions_explored,
        elapsed_seconds=elapsed,
        approx_memory_bytes=_approx_memory(graph, model.state_bits()),
    )
    return graph, stats


def _approx_memory(graph: StateGraph, bits_per_state: int) -> int:
    """Rough memory accounting comparable to the paper's Table 3.2 row.

    States are charged their packed width (rounded to bytes) plus hash-table
    overhead; edges are charged a fixed record size.
    """
    state_bytes = graph.num_states * (max(1, (bits_per_state + 7) // 8) + 16)
    edge_bytes = graph.num_edges * 24
    return state_bytes + edge_bytes
