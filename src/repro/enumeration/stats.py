"""Statistics of a state enumeration run, mirroring Table 3.2 of the paper."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnumerationStats:
    """What Table 3.2 reports: states, bits per state, runtime, memory, edges."""

    model_name: str
    num_states: int
    bits_per_state: int
    num_edges: int
    transitions_explored: int
    elapsed_seconds: float
    approx_memory_bytes: int

    @property
    def reachable_fraction(self) -> float:
        """Reachable states over the 2^bits upper bound.

        The paper's headline observation: 229,571 ~ 2^18 reachable states
        against 2^98 possible -- the FSMs interlock, preventing exponential
        blowup.
        """
        possible = 2 ** self.bits_per_state
        return self.num_states / possible

    def as_table_rows(self):
        """Rows in the format of Table 3.2."""
        return [
            ("Number of States", f"{self.num_states:,}"),
            ("Number of bits per State", f"{self.bits_per_state}"),
            ("Execution Time", f"{self.elapsed_seconds:,.2f} secs."),
            ("Memory Requirement", f"{self.approx_memory_bytes / (1024 * 1024):.1f} MB"),
            ("Number of Edges in State Graph", f"{self.num_edges:,}"),
            ("Transitions Explored", f"{self.transitions_explored:,}"),
            # Scientific notation: the paper's observation is the *scale*
            # gap (~2^18 reachable of 2^98 possible).
            ("Reachable Fraction of 2^bits", f"{self.reachable_fraction:.2e}"),
        ]

    def format_table(self) -> str:
        rows = self.as_table_rows()
        width = max(len(label) for label, _ in rows)
        lines = [f"State Enumeration Statistics -- {self.model_name}"]
        lines += [f"  {label.ljust(width)}  {value}" for label, value in rows]
        return "\n".join(lines)
