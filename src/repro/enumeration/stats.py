"""Statistics of a state enumeration run, mirroring Table 3.2 of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class EnumerationStats:
    """What Table 3.2 reports: states, bits per state, runtime, memory, edges.

    The trailing fields describe the run's *resilience* outcome: whether a
    resource budget truncated it (and which limit), how much of the
    discovered state space was actually expanded, and what the recovery
    machinery had to do (checkpoints written, shards retried, pool
    respawns, degradation to in-process expansion, resume provenance).
    They default to the quiet values so pre-resilience reports still load.
    """

    model_name: str
    num_states: int
    bits_per_state: int
    num_edges: int
    transitions_explored: int
    elapsed_seconds: float
    approx_memory_bytes: int
    #: True when a :class:`~repro.resilience.Budget` limit stopped the run
    #: at a wave boundary; the graph is a usable partial result.
    truncated: bool = False
    #: Which budget limit was exhausted (``wall_seconds`` / ``max_states``
    #: / ``max_memory_mb``), or ``None`` for a complete run.
    budget_outcome: Optional[str] = None
    #: Discovered-but-unexpanded states left in the frontier at truncation.
    frontier_remaining: int = 0
    #: True when this run continued from an on-disk checkpoint.
    resumed: bool = False
    checkpoints_written: int = 0
    shards_retried: int = 0
    pool_respawns: int = 0
    #: True when retry exhaustion demoted expansion to the coordinator
    #: process for the remainder of the run (results are identical).
    degraded: bool = False

    @property
    def reachable_fraction(self) -> float:
        """Reachable states over the 2^bits upper bound.

        The paper's headline observation: 229,571 ~ 2^18 reachable states
        against 2^98 possible -- the FSMs interlock, preventing exponential
        blowup.
        """
        possible = 2 ** self.bits_per_state
        return self.num_states / possible

    @property
    def explored_fraction(self) -> float:
        """Expanded states over discovered states (1.0 for a complete run).

        The coverage figure a budget-truncated run reports: every state
        not left in the frontier had its full successor set explored.
        """
        if not self.num_states:
            return 1.0
        return (self.num_states - self.frontier_remaining) / self.num_states

    def as_table_rows(self):
        """Rows in the format of Table 3.2."""
        rows = [
            ("Number of States", f"{self.num_states:,}"),
            ("Number of bits per State", f"{self.bits_per_state}"),
            ("Execution Time", f"{self.elapsed_seconds:,.2f} secs."),
            ("Memory Requirement", f"{self.approx_memory_bytes / (1024 * 1024):.1f} MB"),
            ("Number of Edges in State Graph", f"{self.num_edges:,}"),
            ("Transitions Explored", f"{self.transitions_explored:,}"),
            # Scientific notation: the paper's observation is the *scale*
            # gap (~2^18 reachable of 2^98 possible).
            ("Reachable Fraction of 2^bits", f"{self.reachable_fraction:.2e}"),
        ]
        if self.truncated:
            rows.append(("Budget Outcome",
                         f"TRUNCATED ({self.budget_outcome} exhausted)"))
            rows.append(("States Expanded",
                         f"{self.num_states - self.frontier_remaining:,} of "
                         f"{self.num_states:,} discovered "
                         f"({self.explored_fraction:.1%})"))
        return rows

    def format_table(self) -> str:
        rows = self.as_table_rows()
        width = max(len(label) for label, _ in rows)
        lines = [f"State Enumeration Statistics -- {self.model_name}"]
        lines += [f"  {label.ljust(width)}  {value}" for label, value in rows]
        return "\n".join(lines)
