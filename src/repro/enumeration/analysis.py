"""Analysis utilities over enumerated state graphs.

Post-enumeration questions a validation engineer asks: how deep is the
graph (how long until a bug at depth *d* can first manifest)?  Is it
strongly connected, or do reset-only regions force extra tours?  Which
states are hot?  Plus Graphviz export for small graphs.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from repro.enumeration.graph import StateGraph


@dataclass(frozen=True)
class GraphProfile:
    """Structural profile of a state graph."""

    num_states: int
    num_edges: int
    max_depth_from_reset: int
    mean_depth_from_reset: float
    num_sccs: int
    largest_scc_size: int
    reset_in_largest_scc: bool
    states_unreturnable_to_reset: int
    max_out_degree: int
    mean_out_degree: float

    def summary(self) -> str:
        return (
            f"{self.num_states:,} states / {self.num_edges:,} arcs; depth "
            f"max {self.max_depth_from_reset} mean "
            f"{self.mean_depth_from_reset:.1f}; {self.num_sccs} SCCs "
            f"(largest {self.largest_scc_size:,}"
            f"{', contains reset' if self.reset_in_largest_scc else ''}); "
            f"{self.states_unreturnable_to_reset:,} states cannot return "
            f"to reset"
        )


def depths_from_reset(graph: StateGraph) -> List[int]:
    """BFS depth of every state from reset (every state is reachable by
    construction)."""
    depths = [-1] * graph.num_states
    depths[StateGraph.RESET] = 0
    queue = deque([StateGraph.RESET])
    while queue:
        current = queue.popleft()
        for successor in graph.successors(current):
            if depths[successor] < 0:
                depths[successor] = depths[current] + 1
                queue.append(successor)
    return depths


def depth_histogram(graph: StateGraph) -> Dict[int, int]:
    """How many states first become reachable at each cycle count --
    roughly, how long a trace must run before a depth-d bug can show."""
    return dict(sorted(Counter(depths_from_reset(graph)).items()))


def profile(graph: StateGraph) -> GraphProfile:
    depths = depths_from_reset(graph)
    digraph = nx.DiGraph()
    digraph.add_nodes_from(range(graph.num_states))
    digraph.add_edges_from((e.src, e.dst) for e in graph.edges())
    sccs = list(nx.strongly_connected_components(digraph))
    largest = max(sccs, key=len) if sccs else set()
    # States that cannot get back to reset need a fresh trace per visit.
    can_reach_reset = set(nx.ancestors(digraph, StateGraph.RESET))
    can_reach_reset.add(StateGraph.RESET)
    out_degrees = [len(graph.out_edge_indices(i)) for i in range(graph.num_states)]
    return GraphProfile(
        num_states=graph.num_states,
        num_edges=graph.num_edges,
        max_depth_from_reset=max(depths) if depths else 0,
        mean_depth_from_reset=sum(depths) / len(depths) if depths else 0.0,
        num_sccs=len(sccs),
        largest_scc_size=len(largest),
        reset_in_largest_scc=StateGraph.RESET in largest,
        states_unreturnable_to_reset=graph.num_states - len(can_reach_reset),
        max_out_degree=max(out_degrees, default=0),
        mean_out_degree=(sum(out_degrees) / len(out_degrees)) if out_degrees else 0.0,
    )


def to_dot(
    graph: StateGraph,
    labeler: Optional[callable] = None,
    max_states: int = 200,
) -> str:
    """Graphviz rendering for small graphs (refuses huge ones)."""
    if graph.num_states > max_states:
        raise ValueError(
            f"graph has {graph.num_states} states; raise max_states to "
            "render anyway"
        )
    lines = ["digraph control {", "  rankdir=LR;", '  0 [shape=doublecircle];']
    if labeler:
        for state_id in range(graph.num_states):
            lines.append(f'  {state_id} [label="{labeler(state_id)}"];')
    for edge in graph.edges():
        condition = ",".join(str(v) for v in edge.condition)
        lines.append(f'  {edge.src} -> {edge.dst} [label="{condition}"];')
    lines.append("}")
    return "\n".join(lines)
