"""A persistent, crash-recovering worker pool shared across pipeline phases.

Before this module, every parallel phase paid its own pool: enumeration
built a ``ProcessPoolExecutor`` per call, vector generation and trace
comparison each built a ``multiprocessing.Pool`` per call.  At small
scale the spawn cost alone inverted the speedup (jobs=4 slower than
jobs=1).  :class:`WorkerPool` is the shared substrate: one pool object
per pipeline, living across BFS waves *and* across phases, with the
retry/respawn/degrade semantics of the old enumeration coordinator
generalized so every phase gets crash recovery.

Process model: **fork inheritance with context generations.**  Models,
kernels, generators and core configs hold closures that do not pickle,
so workers inherit them through fork copy-on-write from module globals
the coordinator publishes before dispatch.  Each phase publishes its
globals and declares a *context tag* (:meth:`WorkerPool.set_context`);
while the tag is unchanged, dispatches reuse the live workers (warm
kernel tables, warm memos, zero spawn cost -- the common case: every
wave of an enumeration, every chunk of a vector/compare phase, repeated
runs against the same model).  When the tag changes, the pool retires
its workers and lazily re-forks on the next dispatch, so the new
generation inherits the new phase's globals without pickling a byte --
re-forking from the live coordinator is strictly cheaper than
broadcasting a multi-hundred-megabyte state graph through pipes.

Crash recovery (same contract the chaos suite has always enforced): a
dead worker (``BrokenProcessPool``), a wedged one (no completion within
the policy timeout) or a torn result pipe retires the generation, backs
off, re-forks, and resubmits every uncollected task.  Tasks are pure,
so retries cannot change results.  Past the retry budget the pool
*degrades*: every remaining task of every phase runs in-process in the
coordinator -- slower, never wrong, cannot crash-loop.

Lifecycle observability: ``enum.pool.spawns`` / ``enum.pool.reuse_hits``
/ ``enum.pool.dispatch_bytes`` counters and a ``pool`` span around each
worker-generation spawn make the dispatch overhead visible in
``repro report``.
"""

from __future__ import annotations

import concurrent.futures
import logging
import multiprocessing
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.obs.observer import Observer, resolve
from repro.resilience.retry import RetryPolicy

logger = logging.getLogger("repro.enumeration")

#: Exceptions that mean "the task did not come back, retry it" -- a dead
#: worker (BrokenProcessPool, raised immediately), a wedged one (timeout),
#: or a torn result pipe.  Anything else is a genuine error and propagates.
TASK_FAILURES = (
    BrokenProcessPool,
    concurrent.futures.TimeoutError,
    TimeoutError,
    EOFError,
    OSError,
)

#: True only inside forked pool workers; lets worker-targeted fault hooks
#: (and worker-only bookkeeping) stay inert during in-process execution.
_IN_POOL_WORKER = False


def _init_pool_worker() -> None:
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def in_worker() -> bool:
    """Whether the calling process is a forked pool worker."""
    return _IN_POOL_WORKER


def _default_executor_factory(**kwargs: Any):
    # Looked up through the parallel module so its executor symbol stays
    # the single interception point for pool creation.
    from repro.enumeration import parallel

    return parallel.ProcessPoolExecutor(**kwargs)


class WorkerPool:
    """Long-lived fork-worker pool with context generations.

    Parameters
    ----------
    jobs:
        Worker process count.  ``jobs <= 1`` (or a platform without the
        ``fork`` start method) makes the pool permanently unavailable:
        every dispatch runs in-process, so callers never need a
        separate sequential code path.
    policy:
        :class:`~repro.resilience.RetryPolicy` governing retry counts,
        backoff and the per-dispatch stall timeout.
    executor_factory:
        Callable building the underlying executor (tests inject
        tripwires/stubs); defaults to ``ProcessPoolExecutor``.
    """

    def __init__(
        self,
        jobs: int,
        policy: Optional[RetryPolicy] = None,
        executor_factory: Optional[Callable[..., Any]] = None,
        obs: Optional[Observer] = None,
    ):
        self.jobs = max(1, int(jobs))
        self.policy = policy or RetryPolicy()
        self.obs = resolve(obs)
        self._factory = executor_factory or _default_executor_factory
        self._executor = None
        self._context_tag: Any = None
        self._closed = False
        #: Worker generations forked (first spawn and every respawn).
        self.spawns = 0
        #: Dispatch rounds served by an already-live generation.
        self.reuse_hits = 0
        #: Coordinator->worker bytes shipped (shared-memory + payloads),
        #: as reported by callers via :meth:`note_dispatch`.
        self.dispatch_bytes = 0
        #: Task retries after worker failures (all phases).
        self.tasks_retried = 0
        #: Generation respawns forced by worker failures.
        self.respawns = 0
        #: Sticky: retry budget was spent; everything now runs in-process.
        self.degraded = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`shutdown` has been called."""
        return self._closed

    @property
    def available(self) -> bool:
        """Whether dispatching to worker processes is possible at all."""
        return (
            not self._closed
            and not self.degraded
            and self.jobs > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )

    def set_context(self, tag: Any) -> None:
        """Declare the phase context for subsequent dispatches.

        Callers publish their fork-inherited module globals *first*,
        then set the tag.  An unchanged tag keeps the live workers (they
        already inherited equivalent globals); a changed tag retires the
        generation so the next dispatch re-forks and inherits the new
        globals.
        """
        if tag != self._context_tag:
            self.retire()
            self._context_tag = tag

    def _ensure(self):
        if self._executor is None:
            with self.obs.span(
                "pool", event="spawn", jobs=self.jobs,
                generation=self.spawns + 1,
            ):
                self._executor = self._factory(
                    max_workers=self.jobs,
                    mp_context=multiprocessing.get_context("fork"),
                    initializer=_init_pool_worker,
                )
            self.spawns += 1
            self.obs.inc("enum.pool.spawns")
        else:
            self.reuse_hits += 1
            self.obs.inc("enum.pool.reuse_hits")
        return self._executor

    def note_dispatch(self, nbytes: int) -> None:
        """Record coordinator->worker payload bytes for this dispatch."""
        self.dispatch_bytes += int(nbytes)
        self.obs.inc("enum.pool.dispatch_bytes", int(nbytes))

    def retire(self) -> None:
        """Kill the current worker generation (if any), keeping the pool.

        Used on context switches, failure recovery, early stops and
        shutdown; any still-running (wedged) workers are terminated.
        The next dispatch re-forks lazily.
        """
        executor, self._executor = self._executor, None
        if executor is None:
            return
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # a broken pool can throw during teardown
            pass
        procs = list((getattr(executor, "_processes", None) or {}).values())
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            proc.join(timeout=1.0)

    def shutdown(self) -> None:
        """Retire the workers and refuse further worker dispatch."""
        self._closed = True
        self.retire()

    def recovery_snapshot(self) -> Tuple[int, int]:
        """(tasks_retried, respawns) -- diff around a run for its stats."""
        return self.tasks_retried, self.respawns

    # -- dispatch ----------------------------------------------------------

    def run_tasks(
        self,
        fn: Callable[[Any, int], Any],
        payloads: Sequence[Any],
        timeout: Optional[float] = None,
    ) -> List[Any]:
        """Run ``fn(payload, attempt)`` for every payload; ordered results.

        Blocks until the whole batch is complete (the wave barrier).
        Failure handling is per :meth:`imap_tasks`.
        """
        results: List[Any] = [None] * len(payloads)
        for index, result in self.imap_tasks(fn, payloads, timeout=timeout):
            results[index] = result
        return results

    def imap_tasks(
        self,
        fn: Callable[[Any, int], Any],
        payloads: Sequence[Any],
        timeout: Optional[float] = None,
    ) -> Iterator[Tuple[int, Any]]:
        """Run ``fn(payload, attempt)`` across the pool; yield unordered.

        Yields ``(payload_index, result)`` as completions arrive.  Every
        failure event (:data:`TASK_FAILURES`) retires the generation,
        backs off, re-forks and resubmits the uncollected payloads; past
        ``policy.max_retries`` the pool degrades and runs the remainder
        in-process.  Genuine task exceptions propagate unretried.

        ``timeout`` bounds the wait for *some* completion (stall
        detection); ``None`` waits forever -- right for phases whose
        task duration is unbounded, which still get dead-worker
        recovery because ``BrokenProcessPool`` is raised immediately.
        """
        payloads = list(payloads)
        if not payloads:
            return
        if not self.available:
            for index, payload in enumerate(payloads):
                yield index, fn(payload, 0)
            return
        retries = [0] * len(payloads)
        collected = set()
        while len(collected) < len(payloads):
            pending = [i for i in range(len(payloads)) if i not in collected]
            futures = {}
            failure: Optional[BaseException] = None
            try:
                executor = self._ensure()
                for i in pending:
                    futures[executor.submit(fn, payloads[i], retries[i])] = i
                remaining = set(futures)
                while remaining:
                    done, remaining = concurrent.futures.wait(
                        remaining,
                        timeout=timeout,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                    if not done:
                        raise concurrent.futures.TimeoutError(
                            f"no task completed within {timeout}s"
                        )
                    for future in done:
                        index = futures[future]
                        result = future.result()
                        collected.add(index)
                        yield index, result
            except TASK_FAILURES as exc:
                failure = exc
            finally:
                for future in futures:
                    future.cancel()
            if failure is None:
                break
            uncollected = [i for i in range(len(payloads)) if i not in collected]
            for i in uncollected:
                retries[i] += 1
            self.tasks_retried += len(uncollected)
            self.obs.inc("enum.shards_retried", len(uncollected))
            self.retire()
            worst = max(retries[i] for i in uncollected)
            if worst > self.policy.max_retries:
                self.degraded = True
                self.obs.inc("enum.degraded_waves")
                logger.warning(
                    "task failed %d times (%s: %s); retry budget spent -- "
                    "degrading to in-process execution",
                    worst, type(failure).__name__, failure,
                )
                for i in uncollected:
                    collected.add(i)
                    yield i, fn(payloads[i], retries[i])
                break
            delay = self.policy.backoff(worst)
            logger.warning(
                "worker task failed (%s: %s); respawning pool and retrying "
                "%d task(s) in %.2fs",
                type(failure).__name__, failure, len(uncollected), delay,
            )
            time.sleep(delay)
            self.respawns += 1
            self.obs.inc("enum.pool_respawns")
