"""Shared-memory, array-packed wave frontiers for parallel enumeration.

State keys are already fixed-width bit-packed integers
(:class:`~repro.smurphi.state.StateCodec` assigns every declared variable
a bit-field), so a BFS wave does not need to travel to the workers as a
pickled Python list of arbitrary-precision ints.  This module packs a
wave into a flat little-endian ``uint64`` word array inside one
``multiprocessing.shared_memory`` segment:

- the **coordinator** writes the wave once (:meth:`SharedFrontier.create`)
  and hands workers only ``(segment name, span start, span stop)`` --
  a few dozen bytes per dispatch regardless of wave size;
- **workers** attach the segment read-only, decode just their span
  (:meth:`SharedFrontier.keys`), and detach;
- the coordinator **unlinks** the segment at the wave boundary (and on
  retire/degrade paths), so a wave can never outlive its run.

States wider than 64 bits use ``words_per_state = ceil(bits / 64)``
little-endian words per key; the packing is pure arithmetic, so
pack -> shared memory -> unpack round-trips byte-identically to the
list-of-ints path at any declared width (property-tested in
``tests/test_frontier.py``).

Resource-tracker note: CPython registers *every* ``SharedMemory``
attachment (not just creation) with the ``resource_tracker``.  Our
workers are fork children, so they inherit the coordinator's tracker
process; the tracker's cache is a set, which makes each worker's
attach-registration a duplicate no-op against the coordinator's
create-registration.  Workers must therefore *not* unregister on detach
-- the tracker holds exactly one entry per segment, removed by the
coordinator's ``unlink``, and that single entry is exactly the leak
protection we want if the coordinator itself dies.
"""

from __future__ import annotations

from array import array
from multiprocessing import shared_memory
from typing import Iterable, List, Optional, Sequence

_WORD_BITS = 64
_WORD_MASK = (1 << _WORD_BITS) - 1


class FrontierCodec:
    """Fixed-width packing of state keys into 64-bit word arrays.

    One codec per model: ``total_bits`` is the model's declared state
    width (:meth:`SyncModel.state_bits`), which determines how many
    64-bit words carry one key.
    """

    def __init__(self, total_bits: int):
        if total_bits < 1:
            raise ValueError("total_bits must be >= 1")
        self.total_bits = int(total_bits)
        self.words_per_state = -(-self.total_bits // _WORD_BITS)

    def pack_keys(self, keys: Iterable[int]) -> array:
        """Pack keys into a flat ``array('Q')``, little-endian word order."""
        buf = array("Q")
        if self.words_per_state == 1:
            buf.extend(keys)
            return buf
        wps = self.words_per_state
        for key in keys:
            for _ in range(wps):
                buf.append(key & _WORD_MASK)
                key >>= _WORD_BITS
        return buf

    def unpack_keys(
        self, words: Sequence[int], start: int = 0, count: Optional[int] = None
    ) -> List[int]:
        """Decode ``count`` keys beginning at state index ``start``.

        ``words`` is any flat uint64 sequence (an ``array('Q')``, a
        ``memoryview().cast("Q")`` over shared memory, ...).
        """
        wps = self.words_per_state
        if count is None:
            count = len(words) // wps - start
        if wps == 1:
            return list(words[start:start + count])
        out: List[int] = []
        base = start * wps
        for _ in range(count):
            key = 0
            for w in range(wps):
                key |= words[base + w] << (_WORD_BITS * w)
            out.append(key)
            base += wps
        return out

    def append_key(self, buf: array, key: int) -> None:
        """Append one key to a flat word buffer (worker result path)."""
        if self.words_per_state == 1:
            buf.append(key)
            return
        for _ in range(self.words_per_state):
            buf.append(key & _WORD_MASK)
            key >>= _WORD_BITS


class SharedFrontier:
    """One wave of packed state keys in a shared-memory segment.

    The coordinator :meth:`create`\\ s (and later :meth:`unlink`\\ s) the
    segment; workers :meth:`attach` by name, read their span, and
    :meth:`close`.  Lifetime is strictly one wave: the coordinator holds
    the only owning reference and unlinks at the wave boundary or on any
    retire/degrade path, so killed workers cannot leak segments.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        codec: FrontierCodec,
        count: int,
        owner: bool,
    ):
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.codec = codec
        self.count = count
        self.owner = owner

    @property
    def name(self) -> str:
        assert self._shm is not None
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Bytes of packed frontier payload (not segment granularity)."""
        return self.count * self.codec.words_per_state * 8

    @classmethod
    def create(cls, keys: Sequence[int], codec: FrontierCodec) -> "SharedFrontier":
        packed = codec.pack_keys(keys)
        payload = packed.tobytes()
        shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
        shm.buf[:len(payload)] = payload
        return cls(shm, codec, len(keys), owner=True)

    @classmethod
    def attach(cls, name: str, codec: FrontierCodec, count: int) -> "SharedFrontier":
        # Attaching re-registers the segment with the (fork-shared)
        # resource tracker; that is a set-duplicate no-op, so no
        # worker-side unregister -- see the module docstring.
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, codec, count, owner=False)

    def keys(self, start: int = 0, count: Optional[int] = None) -> List[int]:
        """Decode a span of state keys out of the segment."""
        assert self._shm is not None
        if count is None:
            count = self.count - start
        if count <= 0:
            return []
        words = self._shm.buf.cast("Q")
        try:
            return self.codec.unpack_keys(words, start, count)
        finally:
            words.release()

    def close(self) -> None:
        """Drop this process's mapping (workers; owner before unlink)."""
        shm = self._shm
        if shm is None:
            return
        try:
            shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only); safe to call repeatedly."""
        shm, self._shm = self._shm, None
        if shm is None or not self.owner:
            return
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
