"""Full state enumeration of Synchronous Murphi models (paper section 3.2).

Breadth-first reachability from the reset state over all combinations of
abstract-model choices, producing the complete control state graph from
which transition tours are derived.
"""

from repro.enumeration.graph import StateGraph, Edge
from repro.enumeration.kernel import (
    KERNEL_MODES,
    CompiledKernel,
    InterpretedKernel,
    compile_model,
    resolve_kernel,
)
from repro.enumeration.bfs import enumerate_states, EnumerationError, InvariantViolation
from repro.enumeration.frontier import FrontierCodec, SharedFrontier
from repro.enumeration.parallel import enumerate_states_parallel, make_worker_pool
from repro.enumeration.pool import WorkerPool
from repro.enumeration.stats import EnumerationStats
from repro.enumeration.analysis import (
    GraphProfile,
    depth_histogram,
    depths_from_reset,
    profile,
    to_dot,
)

__all__ = [
    "KERNEL_MODES",
    "CompiledKernel",
    "InterpretedKernel",
    "compile_model",
    "resolve_kernel",
    "GraphProfile",
    "depth_histogram",
    "depths_from_reset",
    "profile",
    "to_dot",
    "StateGraph",
    "Edge",
    "FrontierCodec",
    "SharedFrontier",
    "WorkerPool",
    "enumerate_states",
    "enumerate_states_parallel",
    "make_worker_pool",
    "EnumerationError",
    "InvariantViolation",
    "EnumerationStats",
]
