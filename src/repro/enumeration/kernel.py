"""Transition kernels: the pluggable expansion hot path of enumeration.

Both enumeration engines spend nearly all their time computing, for one
packed state key, the ordered list of ``(condition, packed_successor)``
pairs.  A *kernel* owns exactly that computation:

- :class:`InterpretedKernel` is the reference path: unpack the state
  dict, re-enumerate choices through :meth:`SyncModel.enumerate_choices`,
  step through :meth:`SyncModel.step` (full per-transition domain and
  completeness validation), pack through :class:`StateCodec`.
- :class:`CompiledKernel` (built by :func:`compile_model`) specializes
  everything that depends only on the declaration: per-guard-signature
  choice tables, closure-based pack/unpack with precomputed shifts and
  masks, validate-on-first-sight plus sampled re-validation instead of
  per-transition re-validation, and an optional per-process successor
  memo.  On the PP control model this is a >3x end-to-end enumeration
  speedup (``benchmarks/bench_kernel.py`` asserts it).

The two kernels produce **bit-identical** expansions -- same successor
keys, same condition tuples, same order -- so state graphs, checkpoints
and obs counters are interchangeable between them; the golden and
property tests in ``tests/test_kernel.py`` lock this down.

Soundness of reduced validation
-------------------------------
The interpreted path validates every ``next_state`` result: complete
assignment, every value in-domain, no undeclared variables.  The
compiled fast path gets the first two *for free*: packing looks each
declared variable up in a precomputed ``value -> shifted-index`` map, so
a missing variable or out-of-domain value raises ``KeyError``, which the
kernel converts into the exact interpreted-path :class:`ModelError` by
re-running the validated step.  The only check that is genuinely
relaxed is the *undeclared extra variable* class (packing simply never
reads such keys); it is caught deterministically on the first state ever
expanded (validate-on-first-sight) and probabilistically thereafter
(full re-validation every ``sample_every`` transitions).  ``strict=True``
restores exhaustive per-transition validation for tests and debugging.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Iterator, Optional, Tuple, Union

from repro.smurphi.compiled import ChoiceTables, CompiledStateCodec
from repro.smurphi.model import SyncModel
from repro.smurphi.state import StateCodec

#: Kernel selector values accepted by the engines and the CLI.
KERNEL_MODES = ("compiled", "interpreted")

#: One expanded transition: (condition tuple, packed successor key).
Transition = Tuple[Tuple, int]


class InterpretedKernel:
    """The reference expansion path, byte-compatible with the pre-kernel
    engines: full :meth:`SyncModel.step` validation on every transition."""

    kind = "interpreted"
    compile_seconds = 0.0

    def __init__(self, model: SyncModel):
        self.model = model
        self.codec = StateCodec(model.state_vars)

    def reset_key(self) -> int:
        return self.codec.pack(self.model.reset_state())

    def unpack(self, key: int) -> Dict[str, object]:
        return self.codec.unpack(key)

    def expand(self, key: int) -> Iterator[Transition]:
        # A generator on purpose: the sequential engine interleaves each
        # step with its bookkeeping exactly as the pre-kernel loop did,
        # preserving error ordering for pathological models.
        model, codec = self.model, self.codec
        state = codec.unpack(key)
        names = model.choice_names
        for choice in model.enumerate_choices(state):
            nxt = model.step(state, choice)
            yield tuple(choice[n] for n in names), codec.pack(nxt)

    def counters(self) -> Dict[str, int]:
        return {}


class CompiledKernel:
    """Specialized expansion: precomputed choice tables, closure codec,
    reduced validation, optional successor memo.  Build via
    :func:`compile_model` (which caches kernels per model so campaigns
    and ablations share one memo)."""

    kind = "compiled"

    def __init__(
        self,
        model: SyncModel,
        strict: bool = False,
        memo: bool = True,
        sample_every: int = 1024,
    ):
        started = time.perf_counter()
        self.model = model
        self.strict = bool(strict)
        self.sample_every = max(1, int(sample_every))
        self.codec = CompiledStateCodec(model.state_vars)
        self.tables = ChoiceTables(model)
        self._next_state = model._next_state
        self._memo: Optional[Dict[int, Tuple[int, Tuple[Transition, ...]]]] = (
            {} if memo else None
        )
        self.memo_hits = 0
        self.expansions = 0
        self.sampled_validations = 0
        self._validation_tick = 0
        self._first_sight_done = False
        self.compile_seconds = time.perf_counter() - started

    @property
    def memo_entries(self) -> int:
        return len(self._memo) if self._memo is not None else 0

    def reset_key(self) -> int:
        return self.codec.pack(self.model.reset_state())

    def unpack(self, key: int) -> Dict[str, object]:
        return self.codec.unpack(key)

    def expand(self, key: int) -> Tuple[Transition, ...]:
        return self.expand_masked(key)[1]

    def expand_masked(self, key: int) -> Tuple[int, Tuple[Transition, ...]]:
        """Expand ``key``; also return its guard signature as a bitmask.

        The mask (bit ``i`` = guard ``i`` of ``tables.guards`` fired) plus
        the successor keys fully determine the expansion: any process
        holding an equivalent kernel can recover the condition tuples from
        ``tables.table(signature)``, which is what lets parallel workers
        ship one integer instead of pickled per-transition conditions.
        """
        memo = self._memo
        if memo is not None:
            hit = memo.get(key)
            if hit is not None:
                self.memo_hits += 1
                return hit
        codec = self.codec
        state = codec.unpack(key)
        tables = self.tables
        sig = tables.signature(state)
        mask = 0
        for i, bit in enumerate(sig):
            if bit:
                mask |= 1 << i
        table = tables.table(sig)
        pack = codec.pack
        if self.strict or not self._first_sight_done:
            # Exhaustive validation: the very first state expanded (any
            # systematic next_state bug shows up immediately), and every
            # state in strict mode.
            step = self.model.step
            row = tuple(
                (condition, pack(step(state, dict(choice))))
                for choice, condition in table
            )
            self.sampled_validations += len(table)
            self._first_sight_done = True
        else:
            next_state = self._next_state
            tick = self._validation_tick
            cadence = self.sample_every
            out = []
            for choice, condition in table:
                tick += 1
                if tick >= cadence:
                    tick = 0
                    nxt = self.model.step(state, dict(choice))
                    self.sampled_validations += 1
                else:
                    nxt = next_state(state, choice)
                try:
                    packed = pack(nxt)
                except KeyError:
                    # Missing or out-of-domain variable: re-run the
                    # validated step to raise the exact ModelError the
                    # interpreted path would have produced.
                    self.model.step(state, dict(choice))
                    raise  # step validated clean yet pack failed: mutation
                out.append((condition, packed))
            self._validation_tick = tick
            row = tuple(out)
        self.expansions += 1
        result = (mask, row)
        if memo is not None:
            memo[key] = result
        return result

    def counters(self) -> Dict[str, int]:
        """Monotonic counters for delta-flushing into an observer."""
        return {
            "expansions": self.expansions,
            "memo_hits": self.memo_hits,
            "sampled_validations": self.sampled_validations,
        }


#: Anything an engine accepts as its ``kernel=`` argument.
Kernel = Union[InterpretedKernel, CompiledKernel]
KernelSpec = Union[str, None, Kernel]


def compile_model(
    model: SyncModel,
    strict: bool = False,
    memo: bool = True,
    sample_every: int = 1024,
) -> CompiledKernel:
    """Compile ``model``'s expansion hot path; cached per model instance.

    Repeat calls with the same options return the same kernel, so the
    successor memo and choice tables built by one enumeration are reused
    by the next (campaigns, ``record_all_conditions`` ablations --
    expansion does not depend on the arc-recording mode -- and parallel
    workers, which inherit the coordinator's kernel by fork).
    """
    cache = model.__dict__.setdefault("_kernel_cache", {})
    options = (bool(strict), bool(memo), int(sample_every))
    kernel = cache.get(options)
    if kernel is None:
        kernel = cache[options] = CompiledKernel(
            model, strict=strict, memo=memo, sample_every=sample_every
        )
    return kernel


def resolve_kernel(model: SyncModel, kernel: KernelSpec = "compiled") -> Kernel:
    """Normalize an engine's ``kernel=`` argument to a kernel object.

    ``"compiled"`` (or ``None``) compiles/reuses the model's cached
    compiled kernel; ``"interpreted"`` builds the reference kernel; a
    kernel instance (e.g. a ``strict=True`` compiled kernel) passes
    through so tests can inject configured kernels.
    """
    if kernel is None or kernel == "compiled":
        return compile_model(model)
    if kernel == "interpreted":
        return InterpretedKernel(model)
    if isinstance(kernel, str):
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {KERNEL_MODES}"
        )
    return kernel


def flush_kernel_metrics(obs, kernel: Kernel, before: Dict[str, int]) -> None:
    """Emit this run's ``enum.kernel.*`` deltas to an observer.

    ``before`` is the :meth:`counters` snapshot taken when the run
    started; kernels are cached across runs, so the cumulative counters
    must be diffed to keep per-run reports additive.
    """
    if kernel.kind != "compiled":
        return
    obs.observe("enum.kernel.compile_seconds", kernel.compile_seconds)
    for name, value in kernel.counters().items():
        delta = value - before.get(name, 0)
        if delta:
            obs.inc(f"enum.kernel.{name}", delta)
    obs.gauge("enum.kernel.memo_entries", kernel.memo_entries)
    obs.gauge("enum.kernel.choice_tables", kernel.tables.num_tables)
