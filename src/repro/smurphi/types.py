"""Finite value domains for Synchronous Murphi models.

Every state variable and choice point in a model ranges over a
:class:`FiniteType`.  Keeping domains explicitly finite is what makes full
state enumeration possible, and lets us report the number of bits per state
exactly as Table 3.2 of the paper does.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple


class FiniteType:
    """Base class for a finite value domain.

    Subclasses enumerate their values via :meth:`values` and report their
    encoding width via :meth:`bit_width`.  Values must be hashable and
    comparable for equality.
    """

    def values(self) -> Sequence:
        raise NotImplementedError

    def cardinality(self) -> int:
        return len(self.values())

    def bit_width(self) -> int:
        """Number of bits needed to encode one value of this type."""
        n = self.cardinality()
        if n <= 1:
            return 0
        return (n - 1).bit_length()

    def contains(self, value) -> bool:
        return value in self.values()

    def index_of(self, value) -> int:
        """Dense index of ``value`` within the domain (used for packing)."""
        try:
            return self._index[value]
        except AttributeError:
            self._index = {v: i for i, v in enumerate(self.values())}
            return self._index[value]

    def value_at(self, index: int):
        return self.values()[index]


class BoolType(FiniteType):
    """The two-valued boolean domain ``{False, True}``."""

    _VALUES = (False, True)

    def values(self) -> Tuple[bool, bool]:
        return self._VALUES

    def __repr__(self) -> str:
        return "BoolType()"

    def __eq__(self, other) -> bool:
        return isinstance(other, BoolType)

    def __hash__(self) -> int:
        return hash("BoolType")


class EnumType(FiniteType):
    """A symbolic enumeration, e.g. FSM state names or instruction classes.

    >>> t = EnumType("refill", ["IDLE", "REQ", "FILL"])
    >>> t.cardinality()
    3
    >>> t.bit_width()
    2
    """

    def __init__(self, name: str, members: Iterable[str]):
        self.name = name
        self.members = tuple(members)
        if not self.members:
            raise ValueError(f"enum {name!r} must have at least one member")
        if len(set(self.members)) != len(self.members):
            raise ValueError(f"enum {name!r} has duplicate members")

    def values(self) -> Tuple[str, ...]:
        return self.members

    def __repr__(self) -> str:
        return f"EnumType({self.name!r}, {list(self.members)!r})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, EnumType)
            and self.name == other.name
            and self.members == other.members
        )

    def __hash__(self) -> int:
        return hash((self.name, self.members))


class RangeType(FiniteType):
    """A contiguous integer range ``lo..hi`` inclusive.

    Used for counters such as memory-latency countdowns.

    >>> RangeType(0, 3).values()
    (0, 1, 2, 3)
    """

    def __init__(self, lo: int, hi: int):
        if hi < lo:
            raise ValueError(f"empty range {lo}..{hi}")
        self.lo = lo
        self.hi = hi
        self._values = tuple(range(lo, hi + 1))

    def values(self) -> Tuple[int, ...]:
        return self._values

    def index_of(self, value) -> int:
        if not (self.lo <= value <= self.hi):
            raise KeyError(value)
        return value - self.lo

    def value_at(self, index: int):
        return self.lo + index

    def __repr__(self) -> str:
        return f"RangeType({self.lo}, {self.hi})"

    def __eq__(self, other) -> bool:
        return isinstance(other, RangeType) and (self.lo, self.hi) == (other.lo, other.hi)

    def __hash__(self) -> int:
        return hash(("RangeType", self.lo, self.hi))
