"""Synchronous Murphi: a finite-state modeling language for control logic.

This package is a Python re-implementation of the semantics of *Synchronous
Murphi*, the state-enumeration front end used by the paper (an extension of
Murphi [DDH+92]).  A model has an explicit separation of *state* variables
(latched, updated only by the implicit clock) and non-state wires, plus
nondeterministic *choice points* that stand in for abstract environment
models (caches, memory controller, Inbox/Outbox...).  Each clock cycle the
environment picks one value for every choice point and the model computes
its next state as a pure function of (state, choices).

Public API:

- :class:`~repro.smurphi.types.BoolType`, :class:`~repro.smurphi.types.EnumType`,
  :class:`~repro.smurphi.types.RangeType` -- finite value domains.
- :class:`~repro.smurphi.model.SyncModel` -- a synchronous FSM model.
- :class:`~repro.smurphi.model.StateVar`, :class:`~repro.smurphi.model.ChoicePoint`
  -- declarations.
- :class:`~repro.smurphi.state.StateCodec` -- packing of states to hashable
  keys and bit-size accounting.
"""

from repro.smurphi.types import BoolType, EnumType, RangeType, FiniteType
from repro.smurphi.model import SyncModel, StateVar, ChoicePoint, ModelError
from repro.smurphi.state import StateCodec
from repro.smurphi.compiled import ChoiceTables, CompiledStateCodec
from repro.smurphi.lang import parse_model, MurphiSyntaxError

__all__ = [
    "ChoiceTables",
    "CompiledStateCodec",
    "parse_model",
    "MurphiSyntaxError",
    "BoolType",
    "EnumType",
    "RangeType",
    "FiniteType",
    "SyncModel",
    "StateVar",
    "ChoicePoint",
    "ModelError",
    "StateCodec",
]
