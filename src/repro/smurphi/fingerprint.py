"""Canonical semantic fingerprints of :class:`~repro.smurphi.model.SyncModel`.

The incremental-validation layer (``repro/incremental/``) needs to answer
"did this edit change the model's *semantics*?" without enumerating
anything.  A :class:`ModelFingerprint` digests the model per component --
each state variable, each choice point, each invariant, the base step
function, and each transition rule -- so a diff can classify an edit as
no-op (all digests equal), localized (same core, rules appended) or
structural (anything else).

Digesting Python semantics is undecidable in general; this module is
deliberately **conservative**.  Functions are digested by their compiled
code objects (bytecode, constants, names, closure cells, defaults), which
over-approximates behavioural change: semantically equivalent refactors
get different digests (harmless -- worst case a full rebuild), while any
behavioural change to the function body, its nested lambdas, or the values
it closes over *does* change the digest.  Anything the walker cannot
canonicalize raises :class:`UnstableDigest`, which callers map to
``stable=False`` -- and an unstable fingerprint always diffs as
structural, i.e. full rebuild.  The failure mode is wasted work, never a
wrong artifact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import types
from typing import Any, Tuple

from repro.smurphi.model import SyncModel

#: Bump when the canonicalization below changes, so fingerprints produced
#: by old code are never compared against new ones.
FINGERPRINT_SCHEMA = "repro.model-fingerprint/1"

_MAX_DEPTH = 24

_PRIMITIVES = (type(None), bool, int, float, str, bytes)


class UnstableDigest(Exception):
    """The walker met a value it cannot canonicalize deterministically."""


def _digest(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()


def _code_tokens(code: types.CodeType, depth: int) -> list:
    """Canonical tokens for one compiled code object, nested code included."""
    tokens: list = [
        "code",
        code.co_name,
        code.co_argcount,
        code.co_kwonlyargcount,
        code.co_flags,
        code.co_varnames,
        code.co_names,
        code.co_code.hex(),
    ]
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            tokens.append(_code_tokens(const, depth + 1))
        else:
            tokens.append(_canonical(const, depth + 1))
    return tokens


def _function_tokens(fn: types.FunctionType, depth: int) -> list:
    tokens: list = ["function", fn.__qualname__, _code_tokens(fn.__code__, depth)]
    if fn.__defaults__:
        tokens.append([_canonical(v, depth + 1) for v in fn.__defaults__])
    if fn.__kwdefaults__:
        tokens.append(
            sorted(
                (k, _canonical(v, depth + 1))
                for k, v in fn.__kwdefaults__.items()
            )
        )
    if fn.__closure__:
        cells = []
        for cell in fn.__closure__:
            try:
                cells.append(_canonical(cell.cell_contents, depth + 1))
            except ValueError:  # empty cell (still being defined)
                cells.append("<empty-cell>")
        tokens.append(cells)
    return tokens


def _class_tokens(cls: type, depth: int) -> list:
    """Digest every function defined anywhere in ``cls``'s MRO.

    A bound method's behaviour routinely spans helpers on the same class
    (``step`` calling ``self._step``), so digesting only the entry point
    would miss edits to the helpers.  Hashing all function code objects in
    the MRO over-approximates the call graph, which is the safe direction.
    """
    tokens: list = ["class", f"{cls.__module__}.{cls.__qualname__}"]
    for klass in cls.__mro__:
        if klass in (object,):
            continue
        for attr_name in sorted(vars(klass)):
            attr = vars(klass)[attr_name]
            if isinstance(attr, (staticmethod, classmethod)):
                attr = attr.__func__
            if isinstance(attr, property):
                for accessor in (attr.fget, attr.fset, attr.fdel):
                    if isinstance(accessor, types.FunctionType):
                        tokens.append(
                            [attr_name, _function_tokens(accessor, depth + 1)]
                        )
                continue
            if isinstance(attr, types.FunctionType):
                tokens.append([attr_name, _function_tokens(attr, depth + 1)])
    return tokens


def _canonical(value: Any, depth: int = 0) -> Any:
    """Reduce ``value`` to a JSON-free canonical token tree.

    Raises :class:`UnstableDigest` on anything whose identity-vs-value
    semantics cannot be pinned down (open files, modules, arbitrary C
    objects, cyclic structures past the depth cap).
    """
    if depth > _MAX_DEPTH:
        raise UnstableDigest("value nesting exceeds the canonicalization depth cap")
    if isinstance(value, _PRIMITIVES):
        return f"{type(value).__name__}:{value!r}"
    if isinstance(value, (tuple, list)):
        return [type(value).__name__] + [_canonical(v, depth + 1) for v in value]
    if isinstance(value, (set, frozenset)):
        try:
            members = sorted(_canonical(v, depth + 1) for v in value)
        except TypeError as exc:
            raise UnstableDigest(f"unorderable set members: {exc}") from exc
        return [type(value).__name__] + members
    if isinstance(value, dict):
        try:
            items = sorted(
                (_canonical(k, depth + 1), _canonical(v, depth + 1))
                for k, v in value.items()
            )
        except TypeError as exc:
            raise UnstableDigest(f"unorderable dict keys: {exc}") from exc
        return ["dict"] + items
    if isinstance(value, types.FunctionType):
        return _function_tokens(value, depth)
    if isinstance(value, types.MethodType):
        fn = value.__func__
        owner = type(value.__self__)
        tokens = ["method", fn.__qualname__, _class_tokens(owner, depth)]
        tokens.append(_canonical(getattr(value.__self__, "__dict__", {}), depth + 1))
        return tokens
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return [
            "dataclass",
            f"{type(value).__module__}.{type(value).__qualname__}",
            _canonical(dataclasses.asdict(value), depth + 1),
        ]
    if isinstance(value, type):
        return _class_tokens(value, depth)
    instance_dict = getattr(value, "__dict__", None)
    if isinstance(instance_dict, dict):
        return [
            "instance",
            _class_tokens(type(value), depth),
            _canonical(instance_dict, depth + 1),
        ]
    raise UnstableDigest(
        f"cannot canonicalize {type(value).__module__}.{type(value).__qualname__}"
    )


def canonical_digest(value: Any) -> str:
    """SHA-256 of the canonical token tree of ``value``.

    Raises :class:`UnstableDigest` when canonicalization fails.
    """
    return _digest(repr(_canonical(value)).encode())


@dataclasses.dataclass(frozen=True)
class ModelFingerprint:
    """Per-component digests of one :class:`SyncModel`.

    Every field is a string or tuple of strings, so fingerprints pickle
    small and compare with ``==``.  ``rules`` preserves declaration order
    (rule rewrites compose, so order is semantic).  ``stable=False`` means
    some component resisted canonicalization; such a fingerprint must
    always be treated as "unknown model" by diffs.
    """

    schema: str
    name: str
    state_vars: Tuple[Tuple[str, str], ...]
    choices: Tuple[Tuple[str, str], ...]
    invariants: Tuple[Tuple[str, str], ...]
    base_step: str
    rules: Tuple[Tuple[str, str], ...]
    stable: bool

    def core(self) -> Tuple:
        """Everything except the rule list -- the "same base model" test."""
        return (
            self.schema,
            self.name,
            self.state_vars,
            self.choices,
            self.invariants,
            self.base_step,
        )


def fingerprint_model(model: SyncModel) -> ModelFingerprint:
    """Fingerprint ``model``; never raises (unstable parts degrade)."""
    stable = True

    def safe(value: Any) -> str:
        nonlocal stable
        try:
            return canonical_digest(value)
        except UnstableDigest:
            stable = False
            return "<unstable>"

    state_vars = tuple(
        (v.name, safe((v.name, v.type, v.reset))) for v in model.state_vars
    )
    choices = tuple(
        (c.name, safe((c.name, c.type, c.guard, c.inactive_value)))
        for c in model.choices
    )
    invariants = tuple(
        sorted((name, safe(pred)) for name, pred in model.invariants.items())
    )
    base = model.base_step if model.base_step is not None else model._next_state
    base_step = safe(base)
    # A rule that knows its own semantic digest (ModelEdit.digest) is
    # preferred: the diff's added-rule digests must match what the
    # incremental layer computes for the pipeline's edits.
    def rule_digest(rule: Any) -> str:
        nonlocal stable
        digest = getattr(rule, "digest", None)
        if callable(digest):
            try:
                return digest()
            except UnstableDigest:
                stable = False
                return "<unstable>"
        return safe(rule)

    rules = tuple(
        (getattr(rule, "name", f"rule{i}"), rule_digest(rule))
        for i, rule in enumerate(model.rules)
    )
    return ModelFingerprint(
        schema=FINGERPRINT_SCHEMA,
        name=model.name,
        state_vars=state_vars,
        choices=choices,
        invariants=invariants,
        base_step=base_step,
        rules=rules,
        stable=stable,
    )
