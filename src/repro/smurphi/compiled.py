"""Specialized (pre-compiled) views of a :class:`SyncModel` declaration.

The generic model API is convenient but pays dict- and method-call tax on
every transition: :meth:`SyncModel.enumerate_choices` re-evaluates guards
and rebuilds choice dicts at every state, and :class:`StateCodec` packs
one field at a time through ``FiniteType`` method calls.  The enumeration
hot loop executes these millions of times, so this module precomputes
everything that depends only on the *declaration* once:

- :class:`CompiledStateCodec` closes ``pack``/``unpack`` over per-variable
  ``value -> shifted-index`` maps and ``masked-index -> value`` tables, so
  packing a state is a handful of dict lookups and OR's with no method
  dispatch, no per-field exception handling, and no domain re-validation
  (an out-of-domain or missing value surfaces as ``KeyError``).
- :class:`ChoiceTables` observes that the *set* of choice combinations at
  a state depends only on the tuple of guard outcomes (the *guard
  signature*), of which there are at most ``2^guarded_choices`` -- twenty
  or so for the PP model against hundreds of thousands of states.  Each
  signature's full table of ``(choice_dict, condition_tuple)`` pairs is
  built once, in exactly the order :meth:`SyncModel.enumerate_choices`
  yields, then reused for every state sharing the signature.

The shared choice dicts lean on the documented :class:`SyncModel`
contract that ``next_state`` must not mutate its arguments; a mutating
model would corrupt the table silently here where the interpreted path
would merely waste work.  ``repro.enumeration.kernel`` (strict mode)
exists to flush out such models.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.smurphi.model import SyncModel, StateVar


class CompiledStateCodec:
    """Closure-specialized drop-in for :class:`~repro.smurphi.state.StateCodec`.

    Layout is identical to :class:`StateCodec` (declaration order, one
    bit-field per variable), so packed keys are interchangeable between
    the two -- the compiled/interpreted bit-identity guarantee depends on
    it.  The differences are purely mechanical:

    - ``pack`` raises ``KeyError`` (not ``ValueError``) for missing or
      out-of-domain values; callers wanting a diagnostic re-run the slow
      validated path.
    - ``unpack_values`` returns the canonical var-order value tuple
      without building a dict.
    """

    def __init__(self, state_vars: Sequence[StateVar]):
        rows: List[Tuple[str, int, int, Tuple, Dict]] = []
        offset = 0
        for var in state_vars:
            width = var.type.bit_width()
            values = tuple(var.type.values())
            shifted = {value: index << offset for index, value in enumerate(values)}
            rows.append((var.name, offset, (1 << width) - 1, values, shifted))
            offset += width
        self.total_bits = offset
        self.var_names: Tuple[str, ...] = tuple(row[0] for row in rows)
        pack_rows = tuple((name, shifted) for name, _, _, _, shifted in rows)
        unpack_rows = tuple((name, off, mask, values)
                            for name, off, mask, values, _ in rows)

        def pack(state: Mapping) -> int:
            key = 0
            for name, shifted in pack_rows:
                key |= shifted[state[name]]
            return key

        def unpack(key: int) -> Dict[str, object]:
            return {name: values[(key >> off) & mask]
                    for name, off, mask, values in unpack_rows}

        def unpack_values(key: int) -> Tuple:
            return tuple(values[(key >> off) & mask]
                         for _, off, mask, values in unpack_rows)

        self.pack = pack
        self.unpack = unpack
        self.unpack_values = unpack_values


class ChoiceTables:
    """Per-guard-signature tables of choice combinations.

    A *signature* is the tuple of guard outcomes for the model's guarded
    choice points (unguarded ones are always active).  ``table(sig)``
    returns, building it on first sight, the tuple of
    ``(choice_dict, condition_tuple)`` pairs the interpreted
    :meth:`SyncModel.enumerate_choices` would yield for any state with
    that signature -- same combinations, same order -- with the condition
    tuple (choice values in declaration order) precomputed alongside.
    """

    def __init__(self, model: SyncModel):
        self._choices = list(model.choices)
        self.choice_names: Tuple[str, ...] = tuple(c.name for c in model.choices)
        #: (position in the declaration order, guard) for guarded choices;
        #: defines the signature layout.
        self.guards: Tuple[Tuple[int, object], ...] = tuple(
            (i, c.guard) for i, c in enumerate(model.choices) if c.guard is not None
        )
        self._tables: Dict[Tuple[bool, ...], Tuple[Tuple[Dict, Tuple], ...]] = {}

    def signature(self, state: Mapping) -> Tuple[bool, ...]:
        """Evaluate every guard exactly once against ``state``."""
        return tuple(bool(guard(state)) for _, guard in self.guards)

    @property
    def num_tables(self) -> int:
        return len(self._tables)

    def table(self, sig: Tuple[bool, ...]) -> Tuple[Tuple[Dict, Tuple], ...]:
        table = self._tables.get(sig)
        if table is None:
            table = self._tables[sig] = self._build(sig)
        return table

    def _build(self, sig: Tuple[bool, ...]) -> Tuple[Tuple[Dict, Tuple], ...]:
        active_flags = [True] * len(self._choices)
        for (position, _), outcome in zip(self.guards, sig):
            active_flags[position] = outcome
        active = [c for c, flag in zip(self._choices, active_flags) if flag]
        inactive = {c.name: c.inactive_value
                    for c, flag in zip(self._choices, active_flags) if not flag}
        names = self.choice_names
        combos: List[Tuple[Dict, Tuple]] = []
        if not active:
            choice = dict(inactive)
            combos.append((choice, tuple(choice[n] for n in names)))
            return tuple(combos)
        domains = [c.type.values() for c in active]
        active_names = [c.name for c in active]
        for values in itertools.product(*domains):
            choice = dict(inactive)
            choice.update(zip(active_names, values))
            combos.append((choice, tuple(choice[n] for n in names)))
        return tuple(combos)
