"""A textual Synchronous Murphi description language.

The paper's enumerator consumes models written in Synchronous Murphi, a
description language with explicit state variables, nondeterministic
choices, and a synchronous transition rule.  This module provides a small
faithful dialect so models can be written as text files (and so the HDL
translator has a printable target format):

.. code-block:: none

    -- a two-entry request queue with a flaky consumer
    type level : 0..2;
    type op : enum { NONE, PUSH, POP };

    var depth : level reset 0;
    choice action : op;
    choice consumer_ready : boolean when depth > 0;

    rule begin
      if action = PUSH & depth < 2 then
        depth' := depth + 1;
      elsif action = POP & depth > 0 & consumer_ready then
        depth' := depth - 1;
      endif;
    end

Semantics: every cycle the environment picks one value for each active
choice; the single ``rule`` block computes primed next-state values;
unassigned primed variables hold.  ``when`` guards on choices reference
current-state variables only.  ``--`` starts a comment.

Compile with :func:`parse_model`, which returns a ready-to-enumerate
:class:`~repro.smurphi.model.SyncModel`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.smurphi.model import ChoicePoint, ModelError, StateVar, SyncModel
from repro.smurphi.types import BoolType, EnumType, FiniteType, RangeType


class MurphiSyntaxError(Exception):
    """Raised on malformed model text, with line information."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


# ------------------------------------------------------------------ lexer

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<id>[A-Za-z_]\w*'?)|(?P<op>:=|<=|>=|!=|\.\.|[-+*:;{}(),=<>&|!]))"
)

_KEYWORDS = {
    "type", "var", "choice", "rule", "begin", "end", "enum", "reset",
    "when", "if", "then", "elsif", "else", "endif", "switch", "case",
    "endswitch", "boolean", "true", "false", "inactive",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'num' | 'id' | 'kw' | 'op'
    value: str
    line: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        comment = raw.find("--")
        code = raw[:comment] if comment >= 0 else raw
        position = 0
        while position < len(code):
            if code[position].isspace():
                position += 1
                continue
            match = _TOKEN_RE.match(code, position)
            if not match or match.end() == position:
                raise MurphiSyntaxError(
                    f"unexpected character {code[position]!r}", line_no
                )
            if match.group("num"):
                tokens.append(_Token("num", match.group("num"), line_no))
            elif match.group("id"):
                word = match.group("id")
                kind = "kw" if word in _KEYWORDS else "id"
                tokens.append(_Token(kind, word, line_no))
            else:
                tokens.append(_Token("op", match.group("op"), line_no))
            position = match.end()
    return tokens


# ------------------------------------------------------------------ expressions


@dataclass(frozen=True)
class _Num:
    value: int


@dataclass(frozen=True)
class _Sym:
    name: str  # enum literal or variable reference


@dataclass(frozen=True)
class _Un:
    op: str
    operand: object


@dataclass(frozen=True)
class _Bin:
    op: str
    left: object
    right: object


# ------------------------------------------------------------------ statements


@dataclass
class _Assign:
    target: str  # primed variable name without the prime
    value: object
    line: int


@dataclass
class _If:
    arms: List[Tuple[object, List[object]]]  # (condition, body); None = else
    line: int


@dataclass
class _Switch:
    subject: object
    cases: List[Tuple[Optional[List[object]], List[object]]]
    line: int


# ------------------------------------------------------------------ parser


class _Parser:
    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._position = 0

    def _peek(self) -> Optional[_Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise MurphiSyntaxError("unexpected end of model")
        self._position += 1
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            raise MurphiSyntaxError(
                f"expected {value or kind!r}, got {token.value!r}", token.line
            )
        return token

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[_Token]:
        token = self._peek()
        if token and token.kind == kind and (value is None or token.value == value):
            self._position += 1
            return token
        return None

    # -- declarations ----------------------------------------------------------

    def parse_model(self, name: str) -> "_ModelSpec":
        spec = _ModelSpec(name=name)
        while self._peek() is not None:
            token = self._peek()
            if token.kind == "kw" and token.value == "type":
                self._parse_type(spec)
            elif token.kind == "kw" and token.value == "var":
                self._parse_var(spec)
            elif token.kind == "kw" and token.value == "choice":
                self._parse_choice(spec)
            elif token.kind == "kw" and token.value == "rule":
                self._parse_rule(spec)
            else:
                raise MurphiSyntaxError(
                    f"expected declaration, got {token.value!r}", token.line
                )
        if spec.rule is None:
            raise MurphiSyntaxError("model has no rule block")
        return spec

    def _parse_type_expr(self, spec: "_ModelSpec") -> FiniteType:
        token = self._next()
        if token.kind == "kw" and token.value == "boolean":
            return BoolType()
        if token.kind == "kw" and token.value == "enum":
            self._expect("op", "{")
            members = [self._expect("id").value]
            while self._accept("op", ","):
                members.append(self._expect("id").value)
            self._expect("op", "}")
            return EnumType(f"enum@{token.line}", members)
        if token.kind == "num":
            lo = int(token.value)
            self._expect("op", "..")
            hi = int(self._expect("num").value)
            return RangeType(lo, hi)
        if token.kind == "id" and token.value in spec.types:
            return spec.types[token.value]
        raise MurphiSyntaxError(f"unknown type {token.value!r}", token.line)

    def _parse_type(self, spec: "_ModelSpec") -> None:
        self._expect("kw", "type")
        name = self._expect("id").value
        self._expect("op", ":")
        declared = self._parse_type_expr(spec)
        if isinstance(declared, EnumType):
            declared = EnumType(name, declared.members)
        self._expect("op", ";")
        if name in spec.types:
            raise MurphiSyntaxError(f"duplicate type {name!r}")
        spec.types[name] = declared

    def _parse_reset_value(self, var_type: FiniteType, token: _Token):
        if token.kind == "num":
            return int(token.value)
        if token.kind == "kw" and token.value in ("true", "false"):
            return token.value == "true"
        if token.kind in ("id",):
            return token.value
        raise MurphiSyntaxError(f"bad reset value {token.value!r}", token.line)

    def _parse_var(self, spec: "_ModelSpec") -> None:
        self._expect("kw", "var")
        name = self._expect("id").value
        self._expect("op", ":")
        var_type = self._parse_type_expr(spec)
        reset = var_type.values()[0]
        if self._accept("kw", "reset"):
            reset = self._parse_reset_value(var_type, self._next())
        self._expect("op", ";")
        try:
            spec.state_vars.append(StateVar(name, var_type, reset))
        except ModelError as exc:
            raise MurphiSyntaxError(str(exc)) from exc

    def _parse_choice(self, spec: "_ModelSpec") -> None:
        self._expect("kw", "choice")
        name = self._expect("id").value
        self._expect("op", ":")
        choice_type = self._parse_type_expr(spec)
        guard_expr = None
        inactive = None
        if self._accept("kw", "when"):
            guard_expr = self._parse_expression()
        if self._accept("kw", "inactive"):
            inactive = self._parse_reset_value(choice_type, self._next())
        self._expect("op", ";")
        spec.choices.append((name, choice_type, guard_expr, inactive))

    def _parse_rule(self, spec: "_ModelSpec") -> None:
        self._expect("kw", "rule")
        self._expect("kw", "begin")
        body: List[object] = []
        while not self._accept("kw", "end"):
            body.append(self._parse_statement())
        if spec.rule is not None:
            raise MurphiSyntaxError("multiple rule blocks")
        spec.rule = body

    # -- statements --------------------------------------------------------------

    def _parse_statement(self):
        token = self._peek()
        if token is None:
            raise MurphiSyntaxError("unexpected end of rule")
        if token.kind == "kw" and token.value == "if":
            return self._parse_if()
        if token.kind == "kw" and token.value == "switch":
            return self._parse_switch()
        if token.kind == "id" and token.value.endswith("'"):
            name_token = self._next()
            self._expect("op", ":=")
            value = self._parse_expression()
            self._expect("op", ";")
            return _Assign(
                target=name_token.value[:-1], value=value, line=name_token.line
            )
        raise MurphiSyntaxError(
            f"expected statement, got {token.value!r} (assignments target "
            "primed variables: x' := ...)", token.line,
        )

    def _parse_body(self, *terminators: str) -> List[object]:
        body: List[object] = []
        while True:
            token = self._peek()
            if token is None:
                raise MurphiSyntaxError("unterminated block")
            if token.kind == "kw" and token.value in terminators:
                return body
            body.append(self._parse_statement())

    def _parse_if(self) -> _If:
        start = self._expect("kw", "if")
        arms: List[Tuple[object, List[object]]] = []
        condition = self._parse_expression()
        self._expect("kw", "then")
        arms.append((condition, self._parse_body("elsif", "else", "endif")))
        while self._accept("kw", "elsif"):
            condition = self._parse_expression()
            self._expect("kw", "then")
            arms.append((condition, self._parse_body("elsif", "else", "endif")))
        if self._accept("kw", "else"):
            arms.append((None, self._parse_body("endif")))
        self._expect("kw", "endif")
        self._expect("op", ";")
        return _If(arms=arms, line=start.line)

    def _parse_switch(self) -> _Switch:
        start = self._expect("kw", "switch")
        subject = self._parse_expression()
        cases: List[Tuple[Optional[List[object]], List[object]]] = []
        while not self._accept("kw", "endswitch"):
            self._expect("kw", "case")
            if self._accept("kw", "else"):
                keys = None
            else:
                keys = [self._parse_expression()]
                while self._accept("op", ","):
                    keys.append(self._parse_expression())
            self._expect("op", ":")
            cases.append((keys, self._parse_body("case", "endswitch")))
        self._expect("op", ";")
        return _Switch(subject=subject, cases=cases, line=start.line)

    # -- expressions -------------------------------------------------------------

    _PRECEDENCE = [["|"], ["&"], ["=", "!=", "<", "<=", ">", ">="], ["+", "-"], ["*"]]

    def _parse_expression(self, level: int = 0):
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        left = self._parse_expression(level + 1)
        while True:
            token = self._peek()
            if token and token.kind == "op" and token.value in self._PRECEDENCE[level]:
                self._next()
                right = self._parse_expression(level + 1)
                left = _Bin(op=token.value, left=left, right=right)
            else:
                return left

    def _parse_unary(self):
        token = self._peek()
        if token and token.kind == "op" and token.value in ("!", "-"):
            self._next()
            return _Un(op=token.value, operand=self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self):
        token = self._next()
        if token.kind == "num":
            return _Num(int(token.value))
        if token.kind == "kw" and token.value in ("true", "false"):
            return _Num(1 if token.value == "true" else 0)
        if token.kind == "id":
            if token.value.endswith("'"):
                raise MurphiSyntaxError(
                    "primed variables may only appear as assignment targets",
                    token.line,
                )
            return _Sym(token.value)
        if token.kind == "op" and token.value == "(":
            inner = self._parse_expression()
            self._expect("op", ")")
            return inner
        raise MurphiSyntaxError(
            f"unexpected token {token.value!r} in expression", token.line
        )


# ------------------------------------------------------------------ compilation


@dataclass
class _ModelSpec:
    name: str
    types: Dict[str, FiniteType] = field(default_factory=dict)
    state_vars: List[StateVar] = field(default_factory=list)
    choices: List[Tuple] = field(default_factory=list)
    rule: Optional[List[object]] = None


class _Evaluator:
    """Interprets the rule body; shared by guards and the step function."""

    def __init__(self, spec: _ModelSpec):
        self.spec = spec
        self._enum_literals = {
            member
            for t in list(spec.types.values())
            + [v.type for v in spec.state_vars]
            if isinstance(t, EnumType)
            for member in t.members
        }
        self._names = {v.name for v in spec.state_vars} | {
            c[0] for c in spec.choices
        }

    def eval(self, expr, env: Mapping):
        if isinstance(expr, _Num):
            return expr.value
        if isinstance(expr, _Sym):
            if expr.name in env:
                return env[expr.name]
            if expr.name in self._enum_literals:
                return expr.name
            raise MurphiSyntaxError(f"unknown name {expr.name!r} in expression")
        if isinstance(expr, _Un):
            value = self.eval(expr.operand, env)
            return (not value) if expr.op == "!" else -value
        if isinstance(expr, _Bin):
            left = self.eval(expr.left, env)
            if expr.op == "&":
                return bool(left) and bool(self.eval(expr.right, env))
            if expr.op == "|":
                return bool(left) or bool(self.eval(expr.right, env))
            right = self.eval(expr.right, env)
            if expr.op == "=":
                return left == right
            if expr.op == "!=":
                return left != right
            if expr.op == "<":
                return left < right
            if expr.op == "<=":
                return left <= right
            if expr.op == ">":
                return left > right
            if expr.op == ">=":
                return left >= right
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
        raise MurphiSyntaxError(f"cannot evaluate {expr!r}")

    def execute(self, body, env: Mapping, updates: Dict) -> None:
        for statement in body:
            if isinstance(statement, _Assign):
                updates[statement.target] = self.eval(statement.value, env)
            elif isinstance(statement, _If):
                for condition, arm_body in statement.arms:
                    if condition is None or self.eval(condition, env):
                        self.execute(arm_body, env, updates)
                        break
            elif isinstance(statement, _Switch):
                subject = self.eval(statement.subject, env)
                default = None
                for keys, case_body in statement.cases:
                    if keys is None:
                        default = case_body
                        continue
                    if any(self.eval(k, env) == subject for k in keys):
                        self.execute(case_body, env, updates)
                        break
                else:
                    if default is not None:
                        self.execute(default, env, updates)


def parse_model(text: str, name: str = "murphi_model") -> SyncModel:
    """Parse Synchronous Murphi text into a :class:`SyncModel`."""
    spec = _Parser(_tokenize(text)).parse_model(name)
    evaluator = _Evaluator(spec)
    state_names = [v.name for v in spec.state_vars]

    # Normalize boolean-ish values to each variable's domain.
    domains = {v.name: v.type for v in spec.state_vars}

    def coerce(var_name: str, value):
        var_type = domains[var_name]
        if isinstance(var_type, BoolType):
            return bool(value)
        if isinstance(var_type, RangeType) and isinstance(value, bool):
            return int(value)
        return value

    def next_state(state, choice):
        env = dict(state)
        env.update(choice)
        updates: Dict = {}
        evaluator.execute(spec.rule, env, updates)
        result = dict(state)
        for target, value in updates.items():
            if target not in domains:
                raise MurphiSyntaxError(
                    f"assignment to undeclared variable {target!r}"
                )
            result[target] = coerce(target, value)
        return result

    choice_points = []
    for name_, choice_type, guard_expr, inactive in spec.choices:
        guard = None
        if guard_expr is not None:
            guard = (lambda g: lambda s: bool(evaluator.eval(g, s)))(guard_expr)
        choice_points.append(
            ChoicePoint(name_, choice_type, guard=guard, inactive_value=inactive)
        )

    return SyncModel(
        name=name,
        state_vars=spec.state_vars,
        choices=choice_points,
        next_state=next_state,
    )
