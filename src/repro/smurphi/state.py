"""Packing of model states into compact hashable keys.

The enumerator stores hundreds of thousands of states; packing each state
dict into a single integer key (one bit-field per variable, in declaration
order) keeps the visited-set small and makes state identity exact.  The
codec also accounts for the bits-per-state figure reported in Table 3.2.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.smurphi.model import StateVar


class StateCodec:
    """Bidirectional state-dict <-> packed-integer codec.

    Layout: variable ``i`` occupies ``bit_width`` bits starting at the
    cumulative offset of the preceding variables, in declaration order.
    Zero-width variables (singleton domains) occupy no bits and always
    decode to their single value.

    >>> from repro.smurphi import BoolType, EnumType
    >>> codec = StateCodec([
    ...     StateVar("a", BoolType(), False),
    ...     StateVar("st", EnumType("e", ["X", "Y", "Z"]), "X"),
    ... ])
    >>> key = codec.pack({"a": True, "st": "Z"})
    >>> codec.unpack(key) == {"a": True, "st": "Z"}
    True
    """

    def __init__(self, state_vars: Sequence[StateVar]):
        self.state_vars = list(state_vars)
        self._offsets: List[int] = []
        self._widths: List[int] = []
        offset = 0
        for var in self.state_vars:
            width = var.type.bit_width()
            self._offsets.append(offset)
            self._widths.append(width)
            offset += width
        self.total_bits = offset

    def pack(self, state: Mapping) -> int:
        key = 0
        for var, offset, width in zip(self.state_vars, self._offsets, self._widths):
            value = state[var.name]
            try:
                index = var.type.index_of(value)
            except KeyError:
                raise ValueError(
                    f"value {value!r} of state var {var.name!r} "
                    f"is outside its domain {var.type!r}"
                ) from None
            if index >> width:
                # A wider index would silently corrupt the neighbouring
                # fields of the packed key; refuse instead of wrapping.
                raise ValueError(
                    f"index {index} of state var {var.name!r} does not fit "
                    f"in its {width}-bit field"
                )
            key |= index << offset
        return key

    def unpack(self, key: int) -> Dict[str, object]:
        state: Dict[str, object] = {}
        for var, offset, width in zip(self.state_vars, self._offsets, self._widths):
            index = (key >> offset) & ((1 << width) - 1) if width else 0
            state[var.name] = var.type.value_at(index)
        return state

    def field(self, name: str) -> Tuple[int, int]:
        """(offset, width) of variable ``name`` within the packed key."""
        for var, offset, width in zip(self.state_vars, self._offsets, self._widths):
            if var.name == name:
                return offset, width
        raise KeyError(name)

    def extract(self, key: int, name: str):
        """Decode a single variable out of a packed key without a full unpack."""
        for var, offset, width in zip(self.state_vars, self._offsets, self._widths):
            if var.name == name:
                index = (key >> offset) & ((1 << width) - 1) if width else 0
                return var.type.value_at(index)
        raise KeyError(name)
