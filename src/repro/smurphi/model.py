"""Synchronous FSM models: state variables, choice points, step semantics.

A :class:`SyncModel` captures the concurrency model of Synchronous Murphi
(section 3.1 of the paper): there is an explicit separation between *state*
variables, which the implicit clock updates once per cycle, and everything
else, which is combinational.  Nondeterministic inputs from abstract
environment blocks (caches signalling hit/miss, the Inbox/Outbox signalling
ready, the memory controller signalling done) are modeled as *choice
points*; the enumerator permutes all combinations of choices at every state.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.smurphi.types import FiniteType


class ModelError(Exception):
    """Raised for ill-formed models or ill-typed states/choices."""


class StateVar:
    """A latched state variable: name, finite domain, and reset value."""

    def __init__(self, name: str, var_type: FiniteType, reset):
        if not var_type.contains(reset):
            raise ModelError(
                f"reset value {reset!r} for state var {name!r} is outside its domain"
            )
        self.name = name
        self.type = var_type
        self.reset = reset

    def __repr__(self) -> str:
        return f"StateVar({self.name!r}, {self.type!r}, reset={self.reset!r})"


class ChoicePoint:
    """A per-cycle nondeterministic input supplied by an abstract model.

    ``guard``, if given, is a predicate over the current state dict; when it
    returns ``False`` the choice point is inactive that cycle and pinned to
    ``inactive_value`` (its first domain value by default).  Guards keep the
    cross product of choices small exactly the way the paper's abstract
    models do: e.g. the D-cache hit/miss choice only matters on cycles where
    a load or store reaches the MEM stage.
    """

    def __init__(
        self,
        name: str,
        choice_type: FiniteType,
        guard: Optional[Callable[[Mapping], bool]] = None,
        inactive_value=None,
    ):
        self.name = name
        self.type = choice_type
        self.guard = guard
        if inactive_value is None:
            inactive_value = choice_type.values()[0]
        if not choice_type.contains(inactive_value):
            raise ModelError(
                f"inactive value {inactive_value!r} for choice {name!r} "
                "is outside its domain"
            )
        self.inactive_value = inactive_value

    def active_in(self, state: Mapping) -> bool:
        return self.guard is None or bool(self.guard(state))

    def __repr__(self) -> str:
        return f"ChoicePoint({self.name!r}, {self.type!r})"


State = Dict[str, object]
Choice = Dict[str, object]


class SyncModel:
    """A synchronous finite-state model.

    Parameters
    ----------
    name:
        Human-readable model name (shows up in reports).
    state_vars:
        Declarations of the latched state, in a fixed order; the order
        defines the packed state layout.
    choices:
        Nondeterministic per-cycle inputs.
    next_state:
        Pure function ``(state, choice) -> state`` computing the values the
        clock will latch.  It must return a complete assignment to every
        state variable and must not mutate its arguments.
    invariants:
        Optional named predicates over states, checked during enumeration
        (a Murphi feature; handy for catching modeling errors early).
    rules:
        Optional metadata: the ordered transition-rule objects (model
        edits/rewrites) composed into ``next_state``, for semantic
        fingerprinting and diffing (:mod:`repro.smurphi.fingerprint`).
        Never executed here -- ``next_state`` already includes them.
    base_step:
        Optional metadata: the unedited step function ``rules`` were
        layered onto.  With ``rules``, lets a diff separate "same base
        model, extra rewrites appended" (localized) from "different model"
        (structural).

    >>> from repro.smurphi import BoolType
    >>> toggle = SyncModel(
    ...     "toggle",
    ...     state_vars=[StateVar("q", BoolType(), False)],
    ...     choices=[ChoicePoint("en", BoolType())],
    ...     next_state=lambda s, c: {"q": s["q"] ^ c["en"]},
    ... )
    >>> toggle.step({"q": False}, {"en": True})
    {'q': True}
    """

    def __init__(
        self,
        name: str,
        state_vars: Sequence[StateVar],
        choices: Sequence[ChoicePoint],
        next_state: Callable[[Mapping, Mapping], State],
        invariants: Optional[Mapping[str, Callable[[Mapping], bool]]] = None,
        rules: Optional[Sequence] = None,
        base_step: Optional[Callable[[Mapping, Mapping], State]] = None,
    ):
        self.name = name
        self.state_vars = list(state_vars)
        self.choices = list(choices)
        self._next_state = next_state
        self.invariants = dict(invariants or {})
        self.rules = tuple(rules or ())
        self.base_step = base_step
        self._check_declarations()

    def _check_declarations(self) -> None:
        names = [v.name for v in self.state_vars]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate state variable names in model {self.name!r}")
        cnames = [c.name for c in self.choices]
        if len(set(cnames)) != len(cnames):
            raise ModelError(f"duplicate choice names in model {self.name!r}")
        overlap = set(names) & set(cnames)
        if overlap:
            raise ModelError(
                f"names {sorted(overlap)} used both as state and choice "
                f"in model {self.name!r}"
            )

    # -- introspection -----------------------------------------------------

    @property
    def state_var_names(self) -> List[str]:
        return [v.name for v in self.state_vars]

    @property
    def choice_names(self) -> List[str]:
        return [c.name for c in self.choices]

    def state_bits(self) -> int:
        """Total encoding width of one state, as reported in Table 3.2."""
        return sum(v.type.bit_width() for v in self.state_vars)

    def reset_state(self) -> State:
        return {v.name: v.reset for v in self.state_vars}

    # -- semantics ----------------------------------------------------------

    def validate_state(self, state: Mapping) -> None:
        """Raise :class:`ModelError` if ``state`` is not a complete, typed
        assignment to the declared state variables."""
        for var in self.state_vars:
            if var.name not in state:
                raise ModelError(f"state is missing variable {var.name!r}")
            if not var.type.contains(state[var.name]):
                raise ModelError(
                    f"value {state[var.name]!r} of {var.name!r} is outside its domain"
                )
        extra = set(state) - set(self.state_var_names)
        if extra:
            raise ModelError(f"state has undeclared variables {sorted(extra)}")

    def enumerate_choices(self, state: Mapping) -> Iterable[Choice]:
        """Yield every combination of choice values active in ``state``.

        Inactive choice points (guard false) are pinned to their inactive
        value rather than permuted, which prunes the combination count
        without losing reachable behaviour.  Each guard is evaluated
        exactly once per state.
        """
        active = []
        inactive = {}
        for c in self.choices:
            if c.active_in(state):
                active.append(c)
            else:
                inactive[c.name] = c.inactive_value
        if not active:
            yield dict(inactive)
            return
        domains = [c.type.values() for c in active]
        names = [c.name for c in active]
        for combo in itertools.product(*domains):
            choice = dict(inactive)
            choice.update(zip(names, combo))
            yield choice

    def step(self, state: Mapping, choice: Mapping) -> State:
        """Advance one clock cycle; returns the newly latched state."""
        nxt = self._next_state(state, choice)
        for var in self.state_vars:
            if var.name not in nxt:
                raise ModelError(
                    f"next_state of {self.name!r} did not assign {var.name!r}"
                )
            if not var.type.contains(nxt[var.name]):
                raise ModelError(
                    f"next_state of {self.name!r} assigned out-of-domain value "
                    f"{nxt[var.name]!r} to {var.name!r}"
                )
        extra = set(nxt) - set(self.state_var_names)
        if extra:
            raise ModelError(
                f"next_state of {self.name!r} assigned undeclared variables "
                f"{sorted(extra)}"
            )
        return dict(nxt)

    def check_invariants(self, state: Mapping) -> List[str]:
        """Return the names of invariants violated by ``state``."""
        return [name for name, pred in self.invariants.items() if not pred(state)]

    def __repr__(self) -> str:
        return (
            f"SyncModel({self.name!r}, {len(self.state_vars)} state vars, "
            f"{len(self.choices)} choices, {self.state_bits()} bits)"
        )
