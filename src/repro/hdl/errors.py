"""Error types for the Verilog front end and translator."""

from __future__ import annotations


class HdlError(Exception):
    """Base class for all HDL front-end errors."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


class LexError(HdlError):
    """Unrecognized input at the character level."""


class ParseError(HdlError):
    """Input does not conform to the supported Verilog subset."""


class ElaborationError(HdlError):
    """Hierarchy cannot be flattened (missing modules, bad connections)."""


class TranslationError(HdlError):
    """A construct cannot be mapped to the Synchronous Murphi semantics
    (combinational loops, unannotated free inputs, width overflows...)."""
