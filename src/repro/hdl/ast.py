"""AST node definitions for the Verilog subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# ---------------------------------------------------------------- expressions


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Number(Expr):
    value: int
    width: Optional[int] = None


@dataclass(frozen=True)
class Ident(Expr):
    name: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    condition: Expr
    if_true: Expr
    if_false: Expr


@dataclass(frozen=True)
class Index(Expr):
    """Bit-select ``name[i]`` (constant index only in this subset)."""

    base: str
    index: Expr


# ---------------------------------------------------------------- statements


@dataclass
class Statement:
    pass


@dataclass
class Assign(Statement):
    """Blocking (``=``) or non-blocking (``<=``) procedural assignment."""

    target: str
    value: Expr
    nonblocking: bool
    line: int = 0


@dataclass
class If(Statement):
    condition: Expr
    then_body: List[Statement]
    else_body: List[Statement] = field(default_factory=list)


@dataclass
class Case(Statement):
    subject: Expr
    #: (match expressions, body); a None key list marks ``default``.
    items: List[Tuple[Optional[List[Expr]], List[Statement]]] = field(
        default_factory=list
    )


# ---------------------------------------------------------------- module items


@dataclass
class Net:
    """A wire or reg declaration."""

    name: str
    kind: str            # 'wire' | 'reg'
    msb: int = 0
    lsb: int = 0
    #: Direction when the net is a port: 'input' | 'output' | None.
    direction: Optional[str] = None
    #: Annotations from // @... directives: state, reset, free...
    annotations: Dict[str, Optional[str]] = field(default_factory=dict)
    line: int = 0

    @property
    def width(self) -> int:
        return abs(self.msb - self.lsb) + 1

    @property
    def is_state_annotated(self) -> bool:
        return "state" in self.annotations

    @property
    def reset_value(self) -> int:
        raw = self.annotations.get("reset")
        return int(raw, 0) if raw else 0


@dataclass
class ContinuousAssign:
    target: str
    value: Expr
    line: int = 0


@dataclass
class AlwaysBlock:
    """One always block: clocked (posedge) or combinational (@*)."""

    clocked: bool
    body: List[Statement]
    line: int = 0


@dataclass
class Instance:
    """A module instantiation with named port connections."""

    module: str
    name: str
    connections: Dict[str, Expr]
    line: int = 0


@dataclass
class Module:
    name: str
    ports: List[str]
    nets: Dict[str, Net]
    parameters: Dict[str, int]
    assigns: List[ContinuousAssign]
    always_blocks: List[AlwaysBlock]
    instances: List[Instance]
    line: int = 0


@dataclass
class Design:
    """A parsed source file: one or more modules."""

    modules: Dict[str, Module]

    def module(self, name: str) -> Module:
        return self.modules[name]
