"""Tokenizer for the synthesizable Verilog subset.

Comments are significant twice over: ``// translate_off`` /
``// translate_on`` remove diagnostic-only code from the token stream
(exactly the paper's mechanism for non-conforming Verilog), and ``// @...``
annotation directives are preserved as :class:`Token` objects of kind
``DIRECTIVE`` so the parser can attach them to the following declaration.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.hdl.errors import LexError

KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "assign", "always", "begin", "end", "if", "else", "case", "endcase",
    "default", "posedge", "negedge", "parameter", "localparam", "initial",
}

#: Multi-character operators, longest first.
OPERATORS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "(", ")", "[", "]", "{", "}", ",", ";", ":", "=", "@", "#",
    "?", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", ".",
]

_NUMBER_RE = re.compile(
    r"(?:(\d+)\s*)?'\s*([bBdDhH])\s*([0-9a-fA-F_xXzZ]+)|(\d[\d_]*)"
)
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_$]*")
_DIRECTIVE_RE = re.compile(r"//\s*@(\w+)(?:\s+(.*?))?\s*$")
_TRANSLATE_RE = re.compile(r"//\s*translate_(on|off)\s*$")


@dataclass(frozen=True)
class Token:
    kind: str       # 'KW', 'ID', 'NUM', 'OP', 'DIRECTIVE'
    value: object   # str for most; (name, arg) for DIRECTIVE; (int, width) for NUM
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, line {self.line})"


def _parse_number(match: re.Match, line: int) -> "Token":
    if match.group(4) is not None:
        return Token("NUM", (int(match.group(4).replace("_", "")), None), line)
    width = int(match.group(1)) if match.group(1) else None
    base_char = match.group(2).lower()
    digits = match.group(3).replace("_", "")
    if "x" in digits.lower() or "z" in digits.lower():
        raise LexError("x/z literals are not part of the synthesizable subset", line)
    base = {"b": 2, "d": 10, "h": 16}[base_char]
    return Token("NUM", (int(digits, base), width), line)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; honours translate_off/on; keeps directives."""
    tokens: List[Token] = []
    translating = True
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line
        # Block comments within a line (multi-line /* */ unsupported by the
        # stylized subset; reject rather than mis-lex).
        if "/*" in line:
            if "*/" not in line:
                raise LexError("multi-line /* */ comments are not supported", line_no)
            line = re.sub(r"/\*.*?\*/", " ", line)
        comment_index = line.find("//")
        comment = line[comment_index:] if comment_index >= 0 else ""
        code = line[:comment_index] if comment_index >= 0 else line

        translate_match = _TRANSLATE_RE.match(comment.strip()) if comment else None
        if translate_match:
            translating = translate_match.group(1) == "on"
            continue
        if not translating:
            continue

        directive_match = _DIRECTIVE_RE.match(comment.strip()) if comment else None

        position = 0
        while position < len(code):
            char = code[position]
            if char.isspace():
                position += 1
                continue
            number_match = _NUMBER_RE.match(code, position)
            if number_match and (char.isdigit() or char == "'"):
                tokens.append(_parse_number(number_match, line_no))
                position = number_match.end()
                continue
            ident_match = _IDENT_RE.match(code, position)
            if ident_match:
                word = ident_match.group(0)
                kind = "KW" if word in KEYWORDS else "ID"
                tokens.append(Token(kind, word, line_no))
                position = ident_match.end()
                continue
            for op in OPERATORS:
                if code.startswith(op, position):
                    tokens.append(Token("OP", op, line_no))
                    position += len(op)
                    break
            else:
                raise LexError(f"unexpected character {char!r}", line_no)
        if directive_match:
            tokens.append(
                Token(
                    "DIRECTIVE",
                    (directive_match.group(1), directive_match.group(2)),
                    line_no,
                )
            )
    return tokens
