"""Synthesizable-Verilog front end for the HDL-to-FSM translator.

Section 3.1 of the paper: the methodology derives all models directly from
the design's Verilog, so bugs present in the RTL are present in the FSM
model.  A *stylized synthesizable subset* is enough -- the Verilog model of
concurrency (implicit clock advances when all variables are stable) maps
one-to-one onto Synchronous Murphi's explicit state/non-state split.

Supported subset:

- modules with ANSI port lists, ``wire``/``reg`` declarations with ranges,
  ``parameter``/``localparam`` constants;
- continuous ``assign``;
- ``always @(posedge clk)`` blocks with non-blocking assignments (state);
- ``always @(*)`` blocks with blocking assignments (combinational);
- ``if``/``else``, ``case``/``default``, ``begin``/``end``;
- the usual operator set, sized/based literals, ternaries, concatenation-free
  expressions;
- module instantiation with named port connections (flattened by
  :mod:`repro.hdl.elaborate`);
- comment-embedded directives: ``// @state`` (control-state annotation),
  ``// @reset <n>`` (reset value), ``// @free`` (input permuted by the
  enumerator), ``// translate_off`` / ``// translate_on`` (skip
  diagnostic-only code).
"""

from repro.hdl.errors import HdlError, LexError, ParseError, ElaborationError
from repro.hdl.lexer import tokenize, Token
from repro.hdl.parser import parse
from repro.hdl import ast
from repro.hdl.elaborate import elaborate, FlatDesign

__all__ = [
    "HdlError",
    "LexError",
    "ParseError",
    "ElaborationError",
    "tokenize",
    "Token",
    "parse",
    "ast",
    "elaborate",
    "FlatDesign",
]
