"""Hierarchy elaboration: flatten a module tree into one namespace.

Instances are expanded recursively; every net/assign/always block of a
child lands in the flat design under a hierarchical name (``inst.net``),
with parameters constant-folded away.  Input-port connections become
continuous assigns into the child; output ports become assigns back into
the parent net.  The top module's inputs become the design's *free inputs*
-- the signals the enumerator's abstract environment drives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hdl import ast
from repro.hdl.errors import ElaborationError


@dataclass
class FlatDesign:
    """A fully flattened design, ready for FSM translation."""

    name: str
    nets: Dict[str, ast.Net] = field(default_factory=dict)
    free_inputs: List[str] = field(default_factory=list)
    assigns: List[ast.ContinuousAssign] = field(default_factory=list)
    always_blocks: List[ast.AlwaysBlock] = field(default_factory=list)


def elaborate(design: ast.Design, top: str, clock: str = "clk") -> FlatDesign:
    """Flatten ``design`` starting from module ``top``.

    ``clock`` names the single global clock; it is excluded from the free
    inputs (the implicit clock is what Synchronous Murphi's step models).
    """
    if top not in design.modules:
        raise ElaborationError(f"top module {top!r} not found")
    flat = FlatDesign(name=top)
    _expand(design, design.modules[top], prefix="", flat=flat, seen=[top])
    top_module = design.modules[top]
    for port_name in top_module.ports:
        net = top_module.nets[port_name]
        if net.direction == "input" and port_name != clock:
            flat.free_inputs.append(port_name)
    return flat


def _expand(
    design: ast.Design,
    module: ast.Module,
    prefix: str,
    flat: FlatDesign,
    seen: List[str],
) -> None:
    rename = _renamer(module, prefix)

    for net in module.nets.values():
        new_name = prefix + net.name
        if new_name in flat.nets:
            raise ElaborationError(f"name collision on {new_name!r}", net.line)
        flat.nets[new_name] = ast.Net(
            name=new_name, kind=net.kind, msb=net.msb, lsb=net.lsb,
            direction=net.direction if not prefix else None,
            annotations=dict(net.annotations), line=net.line,
        )

    for assign in module.assigns:
        flat.assigns.append(
            ast.ContinuousAssign(
                target=prefix + assign.target,
                value=_rewrite_expr(assign.value, rename),
                line=assign.line,
            )
        )

    for block in module.always_blocks:
        flat.always_blocks.append(
            ast.AlwaysBlock(
                clocked=block.clocked,
                body=[_rewrite_statement(s, rename) for s in block.body],
                line=block.line,
            )
        )

    for instance in module.instances:
        if instance.module not in design.modules:
            raise ElaborationError(
                f"instance {instance.name!r} of unknown module "
                f"{instance.module!r}", instance.line,
            )
        if instance.module in seen:
            raise ElaborationError(
                f"recursive instantiation of {instance.module!r}", instance.line
            )
        child = design.modules[instance.module]
        child_prefix = prefix + instance.name + "."
        _expand(design, child, child_prefix, flat, seen + [instance.module])
        _connect(child, child_prefix, instance, rename, flat)


def _connect(
    child: ast.Module,
    child_prefix: str,
    instance: ast.Instance,
    parent_rename,
    flat: FlatDesign,
) -> None:
    for port, expr in instance.connections.items():
        if port not in child.nets or child.nets[port].direction is None:
            raise ElaborationError(
                f"{instance.module}.{port} is not a port", instance.line
            )
        direction = child.nets[port].direction
        if direction == "input":
            if port == "clk":
                continue  # the single global clock needs no plumbing
            flat.assigns.append(
                ast.ContinuousAssign(
                    target=child_prefix + port,
                    value=_rewrite_expr(expr, parent_rename),
                    line=instance.line,
                )
            )
        else:  # output
            if not isinstance(expr, ast.Ident):
                raise ElaborationError(
                    f"output port {port!r} must connect to a plain net",
                    instance.line,
                )
            target = parent_rename(expr.name)
            if isinstance(target, ast.Number):
                raise ElaborationError(
                    f"output port {port!r} cannot drive a constant", instance.line
                )
            flat.assigns.append(
                ast.ContinuousAssign(
                    target=target.name,
                    value=ast.Ident(name=child_prefix + port),
                    line=instance.line,
                )
            )
    # Unconnected child inputs (other than the clock) are an error: the
    # translator would otherwise see them as dangling.
    for net in child.nets.values():
        if net.direction == "input" and net.name not in instance.connections:
            if net.name == "clk":
                continue
            raise ElaborationError(
                f"input port {instance.name}.{net.name} left unconnected",
                instance.line,
            )


def _renamer(module: ast.Module, prefix: str):
    """Returns name -> Ident/Number mapping for one scope."""

    def rename(name: str):
        if name in module.parameters:
            return ast.Number(value=module.parameters[name])
        return ast.Ident(name=prefix + name)

    return rename


def _rewrite_expr(expr: ast.Expr, rename) -> ast.Expr:
    if isinstance(expr, ast.Number):
        return expr
    if isinstance(expr, ast.Ident):
        return rename(expr.name)
    if isinstance(expr, ast.Unary):
        return ast.Unary(op=expr.op, operand=_rewrite_expr(expr.operand, rename))
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            op=expr.op,
            left=_rewrite_expr(expr.left, rename),
            right=_rewrite_expr(expr.right, rename),
        )
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(
            condition=_rewrite_expr(expr.condition, rename),
            if_true=_rewrite_expr(expr.if_true, rename),
            if_false=_rewrite_expr(expr.if_false, rename),
        )
    if isinstance(expr, ast.Index):
        base = rename(expr.base)
        if isinstance(base, ast.Number):
            raise ElaborationError("cannot index a parameter")
        return ast.Index(base=base.name, index=_rewrite_expr(expr.index, rename))
    raise ElaborationError(f"unknown expression node {expr!r}")


def _rewrite_statement(statement: ast.Statement, rename) -> ast.Statement:
    if isinstance(statement, ast.Assign):
        target = rename(statement.target)
        if isinstance(target, ast.Number):
            raise ElaborationError("cannot assign to a parameter", statement.line)
        return ast.Assign(
            target=target.name,
            value=_rewrite_expr(statement.value, rename),
            nonblocking=statement.nonblocking,
            line=statement.line,
        )
    if isinstance(statement, ast.If):
        return ast.If(
            condition=_rewrite_expr(statement.condition, rename),
            then_body=[_rewrite_statement(s, rename) for s in statement.then_body],
            else_body=[_rewrite_statement(s, rename) for s in statement.else_body],
        )
    if isinstance(statement, ast.Case):
        return ast.Case(
            subject=_rewrite_expr(statement.subject, rename),
            items=[
                (
                    None if keys is None else [_rewrite_expr(k, rename) for k in keys],
                    [_rewrite_statement(s, rename) for s in body],
                )
                for keys, body in statement.items
            ],
        )
    raise ElaborationError(f"unknown statement node {statement!r}")
