"""Recursive-descent parser for the synthesizable Verilog subset."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.hdl import ast
from repro.hdl.errors import ParseError
from repro.hdl.lexer import Token, tokenize


class _TokenStream:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0
        self.pending_directives: Dict[str, Optional[str]] = {}

    def _skip_directives(self) -> None:
        while (
            self._position < len(self._tokens)
            and self._tokens[self._position].kind == "DIRECTIVE"
        ):
            name, arg = self._tokens[self._position].value
            self.pending_directives[name] = arg
            self._position += 1

    def take_directives(self) -> Dict[str, Optional[str]]:
        taken = self.pending_directives
        self.pending_directives = {}
        return taken

    def peek(self) -> Optional[Token]:
        self._skip_directives()
        if self._position >= len(self._tokens):
            return None
        return self._tokens[self._position]

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._position += 1
        return token

    def expect(self, kind: str, value=None) -> Token:
        token = self.next()
        if token.kind != kind or (value is not None and token.value != value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}, got {token.value!r}", token.line)
        return token

    def accept(self, kind: str, value=None) -> Optional[Token]:
        token = self.peek()
        if token and token.kind == kind and (value is None or token.value == value):
            self._position += 1
            return token
        return None

    @property
    def line(self) -> int:
        token = self.peek()
        return token.line if token else 0


def parse(source: str) -> ast.Design:
    """Parse a source file into a :class:`~repro.hdl.ast.Design`."""
    stream = _TokenStream(tokenize(source))
    modules: Dict[str, ast.Module] = {}
    while stream.peek() is not None:
        module = _parse_module(stream)
        if module.name in modules:
            raise ParseError(f"duplicate module {module.name!r}", module.line)
        modules[module.name] = module
    return ast.Design(modules=modules)


# ------------------------------------------------------------------ modules


def _parse_module(stream: _TokenStream) -> ast.Module:
    stream.take_directives()
    start = stream.expect("KW", "module")
    name = stream.expect("ID").value
    module = ast.Module(
        name=name, ports=[], nets={}, parameters={}, assigns=[],
        always_blocks=[], instances=[], line=start.line,
    )
    if stream.accept("OP", "("):
        _parse_port_list(stream, module)
    stream.expect("OP", ";")
    while not stream.accept("KW", "endmodule"):
        _parse_module_item(stream, module)
    return module


def _parse_range(stream: _TokenStream) -> Tuple[int, int]:
    if not stream.accept("OP", "["):
        return 0, 0
    msb = _require_const(_parse_expression(stream), stream)
    stream.expect("OP", ":")
    lsb = _require_const(_parse_expression(stream), stream)
    stream.expect("OP", "]")
    return msb, lsb


def _require_const(expr: ast.Expr, stream: _TokenStream) -> int:
    if not isinstance(expr, ast.Number):
        raise ParseError("constant expression required in range", stream.line)
    return expr.value


def _parse_port_list(stream: _TokenStream, module: ast.Module) -> None:
    if stream.accept("OP", ")"):
        return
    while True:
        directives = stream.take_directives()
        direction_token = stream.peek()
        direction = None
        if direction_token and direction_token.kind == "KW" and direction_token.value in (
            "input", "output", "inout"
        ):
            stream.next()
            if direction_token.value == "inout":
                raise ParseError("inout ports are not synthesizable-subset", stream.line)
            direction = direction_token.value
        kind = "wire"
        if stream.accept("KW", "reg"):
            kind = "reg"
        elif stream.accept("KW", "wire"):
            kind = "wire"
        msb, lsb = _parse_range(stream)
        directives.update(stream.take_directives())
        name_token = stream.expect("ID")
        if direction is None:
            raise ParseError(
                f"port {name_token.value!r} needs a direction in ANSI style",
                name_token.line,
            )
        net = ast.Net(
            name=name_token.value, kind=kind, msb=msb, lsb=lsb,
            direction=direction, annotations=directives, line=name_token.line,
        )
        module.ports.append(net.name)
        module.nets[net.name] = net
        if stream.accept("OP", ")"):
            return
        stream.expect("OP", ",")


def _parse_module_item(stream: _TokenStream, module: ast.Module) -> None:
    token = stream.peek()
    if token is None:
        raise ParseError("unexpected end of input inside module")
    if token.kind == "KW" and token.value in ("wire", "reg"):
        _parse_net_declaration(stream, module)
    elif token.kind == "KW" and token.value in ("parameter", "localparam"):
        _parse_parameter(stream, module)
    elif token.kind == "KW" and token.value == "assign":
        _parse_continuous_assign(stream, module)
    elif token.kind == "KW" and token.value == "always":
        _parse_always(stream, module)
    elif token.kind == "KW" and token.value in ("input", "output"):
        raise ParseError(
            "non-ANSI port declarations are not supported; declare ports in "
            "the module header", token.line,
        )
    elif token.kind == "ID":
        _parse_instance(stream, module)
    else:
        raise ParseError(f"unexpected token {token.value!r} in module body", token.line)


def _parse_net_declaration(stream: _TokenStream, module: ast.Module) -> None:
    directives = stream.take_directives()
    kind = stream.next().value  # wire | reg
    msb, lsb = _parse_range(stream)
    while True:
        name_token = stream.expect("ID")
        if name_token.value in module.nets:
            raise ParseError(f"duplicate net {name_token.value!r}", name_token.line)
        net = ast.Net(
            name=name_token.value, kind=kind, msb=msb, lsb=lsb,
            annotations=dict(directives), line=name_token.line,
        )
        module.nets[net.name] = net
        if stream.accept("OP", "="):
            # wire w = expr;  (declaration assignment)
            value = _parse_expression(stream)
            module.assigns.append(
                ast.ContinuousAssign(target=net.name, value=value, line=name_token.line)
            )
        if stream.accept("OP", ";"):
            return
        stream.expect("OP", ",")


def _parse_parameter(stream: _TokenStream, module: ast.Module) -> None:
    stream.next()  # parameter | localparam
    _parse_range(stream)
    while True:
        name = stream.expect("ID").value
        stream.expect("OP", "=")
        value = _parse_expression(stream)
        module.parameters[name] = _fold_constant(value, module.parameters, stream)
        if stream.accept("OP", ";"):
            return
        stream.expect("OP", ",")


def _fold_constant(expr: ast.Expr, parameters: Dict[str, int], stream) -> int:
    if isinstance(expr, ast.Number):
        return expr.value
    if isinstance(expr, ast.Ident) and expr.name in parameters:
        return parameters[expr.name]
    if isinstance(expr, ast.Binary):
        left = _fold_constant(expr.left, parameters, stream)
        right = _fold_constant(expr.right, parameters, stream)
        ops = {
            "+": lambda: left + right, "-": lambda: left - right,
            "*": lambda: left * right, "<<": lambda: left << right,
            ">>": lambda: left >> right,
        }
        if expr.op in ops:
            return ops[expr.op]()
    raise ParseError("parameter value must be a constant expression", stream.line)


def _parse_continuous_assign(stream: _TokenStream, module: ast.Module) -> None:
    start = stream.expect("KW", "assign")
    target = stream.expect("ID").value
    stream.expect("OP", "=")
    value = _parse_expression(stream)
    stream.expect("OP", ";")
    module.assigns.append(ast.ContinuousAssign(target=target, value=value, line=start.line))


def _parse_always(stream: _TokenStream, module: ast.Module) -> None:
    start = stream.expect("KW", "always")
    stream.expect("OP", "@")
    clocked = False
    if stream.accept("OP", "("):
        if stream.accept("KW", "posedge"):
            clocked = True
            stream.expect("ID")  # clock name (single-clock designs)
        elif stream.accept("KW", "negedge"):
            raise ParseError("negedge clocking is not supported", start.line)
        elif stream.accept("OP", "*"):
            pass
        else:
            raise ParseError(
                "only @(posedge clk) and @(*) sensitivity lists are in the "
                "stylized subset", start.line,
            )
        stream.expect("OP", ")")
    else:
        stream.expect("OP", "*")
    body = _parse_statement_block(stream)
    module.always_blocks.append(ast.AlwaysBlock(clocked=clocked, body=body, line=start.line))


def _parse_instance(stream: _TokenStream, module: ast.Module) -> None:
    module_name = stream.expect("ID").value
    instance_name = stream.expect("ID").value
    stream.expect("OP", "(")
    connections: Dict[str, ast.Expr] = {}
    if not stream.accept("OP", ")"):
        while True:
            stream.expect("OP", ".")
            port = stream.expect("ID").value
            stream.expect("OP", "(")
            connections[port] = _parse_expression(stream)
            stream.expect("OP", ")")
            if stream.accept("OP", ")"):
                break
            stream.expect("OP", ",")
    stream.expect("OP", ";")
    module.instances.append(
        ast.Instance(module=module_name, name=instance_name, connections=connections)
    )


# ------------------------------------------------------------------ statements


def _parse_statement_block(stream: _TokenStream) -> List[ast.Statement]:
    if stream.accept("KW", "begin"):
        statements = []
        while not stream.accept("KW", "end"):
            statements.append(_parse_statement(stream))
        return statements
    return [_parse_statement(stream)]


def _parse_statement(stream: _TokenStream) -> ast.Statement:
    token = stream.peek()
    if token is None:
        raise ParseError("unexpected end of input in statement")
    if token.kind == "KW" and token.value == "if":
        return _parse_if(stream)
    if token.kind == "KW" and token.value == "case":
        return _parse_case(stream)
    if token.kind == "ID":
        target_token = stream.next()
        nonblocking = False
        if stream.accept("OP", "<="):
            nonblocking = True
        else:
            stream.expect("OP", "=")
        value = _parse_expression(stream)
        stream.expect("OP", ";")
        return ast.Assign(
            target=target_token.value, value=value,
            nonblocking=nonblocking, line=target_token.line,
        )
    raise ParseError(f"unexpected token {token.value!r} in statement", token.line)


def _parse_if(stream: _TokenStream) -> ast.If:
    stream.expect("KW", "if")
    stream.expect("OP", "(")
    condition = _parse_expression(stream)
    stream.expect("OP", ")")
    then_body = _parse_statement_block(stream)
    else_body: List[ast.Statement] = []
    if stream.accept("KW", "else"):
        else_body = _parse_statement_block(stream)
    return ast.If(condition=condition, then_body=then_body, else_body=else_body)


def _parse_case(stream: _TokenStream) -> ast.Case:
    stream.expect("KW", "case")
    stream.expect("OP", "(")
    subject = _parse_expression(stream)
    stream.expect("OP", ")")
    items: List = []
    while not stream.accept("KW", "endcase"):
        if stream.accept("KW", "default"):
            stream.accept("OP", ":")
            items.append((None, _parse_statement_block(stream)))
            continue
        keys = [_parse_expression(stream)]
        while stream.accept("OP", ","):
            keys.append(_parse_expression(stream))
        stream.expect("OP", ":")
        items.append((keys, _parse_statement_block(stream)))
    return ast.Case(subject=subject, items=items)


# ------------------------------------------------------------------ expressions

#: Binary operators by precedence, loosest first.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


def _parse_expression(stream: _TokenStream) -> ast.Expr:
    return _parse_ternary(stream)


def _parse_ternary(stream: _TokenStream) -> ast.Expr:
    condition = _parse_binary(stream, 0)
    if stream.accept("OP", "?"):
        if_true = _parse_ternary(stream)
        stream.expect("OP", ":")
        if_false = _parse_ternary(stream)
        return ast.Ternary(condition=condition, if_true=if_true, if_false=if_false)
    return condition


def _parse_binary(stream: _TokenStream, level: int) -> ast.Expr:
    if level >= len(_PRECEDENCE):
        return _parse_unary(stream)
    left = _parse_binary(stream, level + 1)
    while True:
        token = stream.peek()
        if token and token.kind == "OP" and token.value in _PRECEDENCE[level]:
            # '<=' is comparison in expressions (assignment handled upstream)
            stream.next()
            right = _parse_binary(stream, level + 1)
            left = ast.Binary(op=token.value, left=left, right=right)
        else:
            return left


def _parse_unary(stream: _TokenStream) -> ast.Expr:
    token = stream.peek()
    if token and token.kind == "OP" and token.value in ("!", "~", "-", "+", "&", "|", "^"):
        stream.next()
        return ast.Unary(op=token.value, operand=_parse_unary(stream))
    return _parse_primary(stream)


def _parse_primary(stream: _TokenStream) -> ast.Expr:
    token = stream.next()
    if token.kind == "NUM":
        value, width = token.value
        return ast.Number(value=value, width=width)
    if token.kind == "ID":
        if stream.accept("OP", "["):
            index = _parse_expression(stream)
            stream.expect("OP", "]")
            return ast.Index(base=token.value, index=index)
        return ast.Ident(name=token.value)
    if token.kind == "OP" and token.value == "(":
        inner = _parse_expression(stream)
        stream.expect("OP", ")")
        return inner
    raise ParseError(f"unexpected token {token.value!r} in expression", token.line)
