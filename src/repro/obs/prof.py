"""Opt-in sampling profiler with collapsed-stack / flamegraph export.

A :class:`SamplingProfiler` arms a POSIX interval timer
(``signal.setitimer``) and records the interrupted Python stack on every
tick.  ``ITIMER_PROF`` (the default) ticks on *CPU* time, so a blocked
process takes no samples and the profile is a direct answer to "where do
the cycles go"; ``timer="real"`` switches to wall-clock ticks for
latency hunting (sleeps and I/O then show up).

Output is the collapsed-stack format every flamegraph tool eats
(``flamegraph.pl``, speedscope, inferno)::

    bfs.py:enumerate_states;kernel.py:expand;state.py:pack 1845

one line per unique stack, counts last.  ``repro ... --profile-out
profile.folded`` wires it into any CLI run; render with e.g.
``flamegraph.pl profile.folded > profile.svg``.

Constraints (why this is *opt-in* rather than always-on):

- signal handlers can only be installed from the main thread, and only
  one profiler can be armed at a time; :attr:`available` is False (and
  start/stop degrade to no-ops) anywhere the timer cannot be armed, so
  library callers never have to guard the platform.
- a ~few-hundred-microsecond handler firing every ``interval`` seconds
  costs roughly ``handler/interval`` relative overhead; the default
  5 ms tick keeps that well under 1% while still collecting thousands
  of samples from a minute-long run.
"""

from __future__ import annotations

import os
import signal
import threading
from typing import Dict, Optional, Tuple

#: Collapsed-stack frame separator (the flamegraph.pl convention).
FRAME_SEPARATOR = ";"


class SamplingProfiler:
    """Statistical profiler: periodic stack captures, collapsed-stack export.

    >>> profiler = SamplingProfiler(interval=0.001)
    >>> with profiler:
    ...     _ = sum(i * i for i in range(200_000))
    >>> profiler.samples > 0 or not profiler.available
    True
    """

    def __init__(
        self,
        interval: float = 0.005,
        timer: str = "prof",
        max_depth: int = 64,
    ):
        if timer not in ("prof", "real"):
            raise ValueError(f"timer must be 'prof' or 'real', not {timer!r}")
        self.interval = max(0.0005, float(interval))
        self.timer = timer
        self.max_depth = max_depth
        self.samples = 0
        self.counts: Dict[Tuple[str, ...], int] = {}
        self._armed = False
        self._previous_handler = None
        if timer == "prof":
            self._itimer, self._signal = signal.ITIMER_PROF, signal.SIGPROF
        else:
            self._itimer, self._signal = signal.ITIMER_REAL, signal.SIGALRM

    # -- availability ----------------------------------------------------------

    @property
    def available(self) -> bool:
        """True when the interval timer can be armed here (POSIX main thread)."""
        return (
            hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        )

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._armed or not self.available:
            return self
        self._previous_handler = signal.signal(self._signal, self._handle)
        signal.setitimer(self._itimer, self.interval, self.interval)
        self._armed = True
        return self

    def stop(self) -> "SamplingProfiler":
        if not self._armed:
            return self
        signal.setitimer(self._itimer, 0.0)
        signal.signal(self._signal, self._previous_handler or signal.SIG_DFL)
        self._previous_handler = None
        self._armed = False
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the sample ------------------------------------------------------------

    def _handle(self, signum, frame) -> None:
        stack = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            stack.append(
                f"{os.path.basename(code.co_filename)}:{code.co_name}"
            )
            frame = frame.f_back
            depth += 1
        key = tuple(reversed(stack))
        self.counts[key] = self.counts.get(key, 0) + 1
        self.samples += 1

    # -- export ----------------------------------------------------------------

    def collapsed(self) -> str:
        """The profile in collapsed-stack format, heaviest stacks first."""
        lines = [
            f"{FRAME_SEPARATOR.join(stack)} {count}"
            for stack, count in sorted(
                self.counts.items(), key=lambda item: (-item[1], item[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str) -> None:
        from repro.resilience.atomic import atomic_write_text

        atomic_write_text(path, self.collapsed())

    def summary(self) -> Dict[str, object]:
        """Profiler facts for the run report's ``perf`` section."""
        return {
            "samples": self.samples,
            "unique_stacks": len(self.counts),
            "interval_seconds": self.interval,
            "timer": self.timer,
        }
