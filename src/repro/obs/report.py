"""The unified machine-readable run report.

A validation run's observable outputs were scattered -- Table 3.2 stats
on stdout, divergences in a :class:`~repro.core.report.ValidationReport`,
cache provenance in pipeline attributes, timings nowhere.  A
:class:`RunReport` gathers all of it into one JSON document (schema
:data:`RUN_REPORT_SCHEMA`) that ``--metrics-out`` writes and the
``repro report`` CLI subcommand renders back into the human tables,
including Fig 4.1-style coverage-curve data (cumulative arcs covered vs
instructions simulated, one point per generated trace).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.enumeration.stats import EnumerationStats
from repro.obs.observer import Observer, PhaseTiming
from repro.resilience.atomic import atomic_write_text

#: Report format version; embedded in every document.
RUN_REPORT_SCHEMA = "repro.run-report/1"


@dataclass
class RunReport:
    """Everything one pipeline run produced, as one JSON-able document."""

    command: str
    config: Dict[str, Any] = field(default_factory=dict)
    enumeration: Optional[Dict[str, Any]] = None
    tour_stats: Optional[Dict[str, Any]] = None
    comparison: Optional[Dict[str, Any]] = None
    campaign: Optional[List[Dict[str, Any]]] = None
    cache: Dict[str, Any] = field(default_factory=dict)
    phases: List[Dict[str, Any]] = field(default_factory=list)
    coverage_curve: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Resilience outcome of the run: budget truncation (with coverage of
    #: the discovered state space), checkpoint/resume provenance, and what
    #: worker-crash recovery had to do.  Derived from the enumeration stats
    #: when not supplied explicitly.
    resilience: Dict[str, Any] = field(default_factory=dict)
    #: Performance observability: resource-sampler timeline summary
    #: (peak/mean RSS and CPU), sampling-profiler facts, and heartbeat
    #: channel provenance.  Populated from
    #: :meth:`Observer.perf_summary` when those sinks were attached.
    perf: Dict[str, Any] = field(default_factory=dict)
    schema: str = RUN_REPORT_SCHEMA

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_observer(
        cls, command: str, observer: Observer, **fields: Any
    ) -> "RunReport":
        """A report carrying the observer's phases + metrics plus ``fields``."""
        if fields.get("enumeration") and "resilience" not in fields:
            fields["resilience"] = _derive_resilience(fields["enumeration"])
        fields.setdefault("perf", observer.perf_summary())
        return cls(
            command=command,
            phases=_phase_rows(observer),
            metrics=observer.metrics.snapshot(),
            **fields,
        )

    @classmethod
    def from_validation(
        cls,
        validation,  # repro.core.report.ValidationReport
        observer: Optional[Observer] = None,
        artifacts=None,  # repro.core.pipeline.PipelineArtifacts
        command: str = "validate",
        config: Optional[Dict[str, Any]] = None,
        cache: Optional[Dict[str, Any]] = None,
    ) -> "RunReport":
        comparison = {
            "traces_run": validation.traces_run,
            "total_traces": validation.total_traces,
            "diverging_traces": list(validation.diverging_traces),
            "clean": validation.clean,
            "per_trace": [
                {
                    "instructions": r.instructions,
                    "cycles": r.cycles,
                    "diverged": r.diverged,
                    "deadlocked": r.deadlocked,
                }
                for r in validation.results
            ],
            "divergence_sites": [
                {"trace": index, "detail": validation.results[index].describe()}
                for index in validation.diverging_traces
            ],
        }
        curve: List[Dict[str, Any]] = []
        if artifacts is not None:
            from repro.tour.coverage import coverage_curve

            curve = [
                dataclasses.asdict(point)
                for point in coverage_curve(
                    artifacts.graph, artifacts.tours
                )
            ]
        enumeration = dataclasses.asdict(validation.enumeration)
        return cls(
            command=command,
            config=dict(config or {}),
            enumeration=enumeration,
            tour_stats=dataclasses.asdict(validation.tour_stats),
            comparison=comparison,
            cache=dict(cache or {"enabled": False, "hit": validation.from_cache}),
            phases=_phase_rows(observer),
            coverage_curve=curve,
            metrics=observer.metrics.snapshot() if observer is not None else {},
            resilience=_derive_resilience(enumeration),
            perf=observer.perf_summary() if observer is not None else {},
        )

    @classmethod
    def from_campaign(
        cls,
        results,  # Sequence[repro.harness.campaign.CampaignResult]
        observer: Optional[Observer] = None,
        pipeline=None,  # repro.core.pipeline.ValidationPipeline
        command: str = "campaign",
        config: Optional[Dict[str, Any]] = None,
        cache: Optional[Dict[str, Any]] = None,
    ) -> "RunReport":
        campaign = [
            {
                "bug_id": result.bug_id,
                "outcomes": {
                    method: {
                        "detected": outcome.detected,
                        "traces_run": outcome.traces_run,
                        "instructions_run": outcome.instructions_run,
                        "detecting_trace": outcome.detecting_trace,
                    }
                    for method, outcome in result.outcomes.items()
                },
            }
            for result in results
        ]
        enumeration = tour_stats = None
        if pipeline is not None:
            enumeration = dataclasses.asdict(pipeline.artifacts.enumeration)
            tour_stats = dataclasses.asdict(pipeline.artifacts.tours.stats)
        return cls(
            command=command,
            config=dict(config or {}),
            enumeration=enumeration,
            tour_stats=tour_stats,
            campaign=campaign,
            cache=dict(cache or {}),
            phases=_phase_rows(observer),
            metrics=observer.metrics.snapshot() if observer is not None else {},
            resilience=_derive_resilience(enumeration),
            perf=observer.perf_summary() if observer is not None else {},
        )

    # -- (de)serialization -----------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(dataclasses.asdict(self), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        # Atomic so an interrupted run never leaves a truncated report --
        # downstream tooling either sees the old document or the new one.
        atomic_write_text(path, self.to_json())

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        payload = json.loads(text)
        if payload.get("schema") != RUN_REPORT_SCHEMA:
            raise ValueError(
                f"not a run report (schema {payload.get('schema')!r}, "
                f"expected {RUN_REPORT_SCHEMA!r})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    @classmethod
    def load(cls, path: str) -> "RunReport":
        with open(path) as handle:
            return cls.from_json(handle.read())

    # -- analysis --------------------------------------------------------------

    def phase_coverage(self) -> float:
        """Fraction of root-span wall time covered by depth-1 child spans."""
        roots = [p for p in self.phases if p["depth"] == 0]
        children = [p for p in self.phases if p["depth"] == 1]
        total = sum(p["wall"] for p in roots)
        if not total or not children:
            return 1.0 if not children else 0.0
        return min(1.0, sum(p["wall"] for p in children) / total)

    def total_wall_seconds(self) -> float:
        return sum(p["wall"] for p in self.phases if p["depth"] == 0)

    # -- human rendering -------------------------------------------------------

    def render(self) -> str:
        """The human tables the JSON document subsumes."""
        sections: List[str] = [f"Run report -- repro {self.command}"]
        if self.config:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(self.config.items()))
            sections.append(f"  config: {pairs}")
        if self.cache:
            sections.append(f"  cache: {_render_cache(self.cache)}")
        if self.enumeration:
            sections.append("")
            sections.append(EnumerationStats(**self.enumeration).format_table())
        if self.tour_stats:
            sections.append("")
            sections.append(_render_tours(self.tour_stats))
        if self.comparison:
            sections.append("")
            sections.append(_render_comparison(self.comparison))
        if self.campaign:
            sections.append("")
            sections.append(_render_campaign(self.campaign))
        if self.resilience:
            sections.append("")
            sections.append(_render_resilience(self.resilience))
        pool = _render_pool(self.metrics)
        if pool:
            sections.append("")
            sections.append(pool)
        if self.coverage_curve:
            sections.append("")
            sections.append(_render_curve(self.coverage_curve))
        if self.perf:
            sections.append("")
            sections.append(_render_perf(self.perf))
        if self.phases:
            sections.append("")
            sections.append(self._render_phases())
        return "\n".join(sections)

    def _render_phases(self) -> str:
        total = self.total_wall_seconds() or 1.0
        lines = ["Per-phase timing"]
        lines.append(f"  {'phase':<44} {'wall (s)':>10} {'cpu (s)':>10} {'%':>6}")
        for row in self.phases:
            indent = "  " * row["depth"]
            name = indent + row["name"]
            attrs = row.get("attrs")
            if attrs:
                pairs = ",".join(f"{k}={v}" for k, v in sorted(attrs.items()))
                name = f"{name}({pairs})"
            name = name[:44]
            lines.append(
                f"  {name:<44} {row['wall']:>10.3f} {row['cpu']:>10.3f} "
                f"{100.0 * row['wall'] / total:>5.1f}%"
            )
        lines.append(f"  span coverage of root wall time: "
                     f"{100.0 * self.phase_coverage():.1f}%")
        return "\n".join(lines)


def _phase_rows(observer: Optional[Observer]) -> List[Dict[str, Any]]:
    if observer is None:
        return []
    # Completion order is children-before-parents; start order reads better.
    ordered = sorted(observer.phases, key=lambda p: (p.start, -p.depth))
    return [
        {
            "name": p.name,
            "depth": p.depth,
            "start": p.start,
            "wall": p.wall,
            "cpu": p.cpu,
            "attrs": dict(p.attrs),
        }
        for p in ordered
    ]


def _derive_resilience(enumeration: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """The report's resilience section, computed from enumeration stats.

    Tolerates pre-resilience enumeration dicts (the new stats fields all
    default) and returns ``{}`` when there is nothing to report.
    """
    if not enumeration:
        return {}
    try:
        stats = EnumerationStats(**enumeration)
    except TypeError:
        return {}
    return {
        "truncated": stats.truncated,
        "budget_outcome": stats.budget_outcome,
        "frontier_remaining": stats.frontier_remaining,
        "explored_fraction": stats.explored_fraction,
        "resumed": stats.resumed,
        "checkpoints_written": stats.checkpoints_written,
        "shards_retried": stats.shards_retried,
        "pool_respawns": stats.pool_respawns,
        "degraded": stats.degraded,
    }


def _render_resilience(resilience: Mapping[str, Any]) -> str:
    lines = ["Resilience"]
    if resilience.get("truncated"):
        lines.append(f"  budget:            TRUNCATED "
                     f"({resilience.get('budget_outcome')} exhausted); "
                     f"{resilience.get('explored_fraction', 0):.1%} of "
                     f"discovered states expanded, "
                     f"{resilience.get('frontier_remaining', 0):,} pending")
    else:
        lines.append("  budget:            complete run (no truncation)")
    lines.append(f"  checkpoints:       {resilience.get('checkpoints_written', 0)} "
                 f"written{', resumed from checkpoint' if resilience.get('resumed') else ''}")
    retried = resilience.get("shards_retried", 0)
    if retried or resilience.get("degraded"):
        lines.append(f"  worker recovery:   {retried} shard retries, "
                     f"{resilience.get('pool_respawns', 0)} pool respawns"
                     f"{', DEGRADED to in-process expansion' if resilience.get('degraded') else ''}")
    else:
        lines.append("  worker recovery:   no failures")
    return "\n".join(lines)


def _render_pool(metrics: Mapping[str, Any]) -> Optional[str]:
    """The persistent worker pool's lifecycle counters, when it ran."""
    counters = {
        row["name"]: row["value"]
        for row in (metrics or {}).get("counters", [])
        if isinstance(row, Mapping)
    }
    spawns = counters.get("enum.pool.spawns")
    if not spawns:
        return None
    lines = ["Worker pool"]
    lines.append(f"  generations:       {int(spawns)} forked, "
                 f"{int(counters.get('enum.pool.reuse_hits', 0))} warm "
                 f"dispatches to live workers")
    lines.append(f"  dispatch payload:  "
                 f"{int(counters.get('enum.pool.dispatch_bytes', 0)):,} bytes "
                 f"coordinator -> workers")
    respawns = int(counters.get("enum.pool_respawns", 0))
    if respawns:
        lines.append(f"  respawns:          {respawns} after worker failures")
    return "\n".join(lines)


def _render_perf(perf: Mapping[str, Any]) -> str:
    lines = ["Performance observability"]
    resources = perf.get("resources")
    if resources:
        peak = resources.get("peak_rss_mb")
        peak_text = f"{peak:.1f} MB" if isinstance(peak, (int, float)) else "n/a"
        lines.append(
            f"  resources:         peak RSS {peak_text}, "
            f"mean CPU {resources.get('mean_cpu_percent', 0.0):.0f}% "
            f"(max {resources.get('max_cpu_percent', 0.0):.0f}%) over "
            f"{resources.get('samples', 0)} samples at "
            f"{resources.get('interval_seconds', 0.0):.2f}s"
        )
    profile = perf.get("profile")
    if profile:
        lines.append(
            f"  profile:           {profile.get('samples', 0):,} samples, "
            f"{profile.get('unique_stacks', 0):,} unique stacks "
            f"({profile.get('timer')} timer, "
            f"{1000.0 * profile.get('interval_seconds', 0.0):.1f} ms tick)"
        )
    heartbeats = perf.get("heartbeats")
    if heartbeats:
        path = heartbeats.get("path")
        lines.append(
            f"  heartbeats:        {heartbeats.get('emitted', 0)} emitted"
            + (f" -> {path}" if path else "")
        )
    if len(lines) == 1:
        lines.append("  (no perf sinks were attached)")
    return "\n".join(lines)


def _render_cache(cache: Mapping[str, Any]) -> str:
    if not cache.get("enabled"):
        return "disabled"
    status = "hit" if cache.get("hit") else "miss (built and stored)"
    key = cache.get("key") or ""
    return f"{status} ({key[:12]})"


def _render_tours(stats: Mapping[str, Any]) -> str:
    lines = ["Tour generation (Table 3.3)"]
    lines.append(f"  traces:            {stats['num_traces']:,}")
    lines.append(f"  arc traversals:    {stats['total_edge_traversals']:,} "
                 f"over {stats['graph_edges']:,} arcs")
    lines.append(f"  instructions:      {stats['total_instructions']:,}")
    lines.append(f"  longest trace:     {stats['longest_trace_edges']:,} arcs")
    lines.append(f"  generation time:   {stats['generation_seconds']:.3f} s")
    return "\n".join(lines)


def _render_comparison(comparison: Mapping[str, Any]) -> str:
    lines = ["Comparison simulation"]
    lines.append(f"  traces run:        {comparison['traces_run']}/"
                 f"{comparison['total_traces']}")
    per_trace = comparison.get("per_trace", [])
    lines.append(f"  instructions:      "
                 f"{sum(t['instructions'] for t in per_trace):,}")
    lines.append(f"  cycles:            {sum(t['cycles'] for t in per_trace):,}")
    if comparison.get("clean"):
        lines.append("  result:            no divergence "
                     "(design matches specification)")
    else:
        lines.append(f"  diverging traces:  {comparison['diverging_traces']}")
        for site in comparison.get("divergence_sites", []):
            lines.append(f"    trace {site['trace']}: {site['detail']}")
    return "\n".join(lines)


def _render_campaign(campaign: List[Mapping[str, Any]]) -> str:
    lines = ["Campaign (Table 2.1)"]
    for row in campaign:
        label = "clean" if row["bug_id"] is None else f"bug #{row['bug_id']}"
        outcomes = ", ".join(
            f"{method}={'FOUND' if o['detected'] else 'missed'}"
            f" ({o['instructions_run']} instr)"
            for method, o in sorted(row["outcomes"].items())
        )
        lines.append(f"  {label:<8} {outcomes}")
    return "\n".join(lines)


def _render_curve(curve: List[Mapping[str, Any]]) -> str:
    lines = ["Coverage curve (Fig 4.1: arcs covered vs instructions simulated)"]
    lines.append(f"  {'trace':>6} {'instructions':>14} {'arcs covered':>14} "
                 f"{'fraction':>9}")
    # Print at most ~20 evenly spaced points so huge runs stay readable.
    step = max(1, len(curve) // 20)
    shown = list(curve[::step])
    if shown[-1] is not curve[-1]:
        shown.append(curve[-1])
    for point in shown:
        lines.append(
            f"  {point['trace_index']:>6} {point['cumulative_instructions']:>14,} "
            f"{point['cumulative_covered_edges']:>14,} "
            f"{point['coverage_fraction']:>8.1%}"
        )
    return "\n".join(lines)


def validate_run_report(payload: Mapping[str, Any]) -> List[str]:
    """Structural validation of a run-report document (for the CI smoke)."""
    from repro.obs.metrics import validate_metrics_snapshot

    problems: List[str] = []
    if payload.get("schema") != RUN_REPORT_SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}")
    if not isinstance(payload.get("command"), str):
        problems.append("command missing")
    phases = payload.get("phases")
    if not isinstance(phases, list):
        problems.append("phases is not a list")
    else:
        for row in phases:
            for key in ("name", "depth", "start", "wall", "cpu"):
                if key not in row:
                    problems.append(f"phase row missing {key!r}: {row!r}")
                    break
    if payload.get("metrics"):
        problems.extend(validate_metrics_snapshot(payload["metrics"]))
    if "perf" in payload and not isinstance(payload["perf"], dict):
        problems.append("perf is not a dict")
    return problems
