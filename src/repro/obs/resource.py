"""Resource timelines: RSS / CPU / frontier sampled on a background tick.

Long enumerations are opaque between wave boundaries -- the per-phase
span table says *where* time went but not what the process looked like
while it went there.  A :class:`ResourceSampler` is a daemon thread that
wakes on a fixed tick, reads the process's resident set size and CPU
utilisation, folds in externally pushed gauges (the enumeration frontier
size, via :meth:`set_value`), and

- keeps the full timeline in memory (``samples``; summarised into the
  run report's ``perf`` section), and
- emits each tick as a ``counter`` event into an attached
  :class:`~repro.obs.trace.Tracer`, which the Chrome exporter turns into
  Perfetto *counter tracks* (``"ph": "C"``) -- RSS, CPU and frontier
  curves rendered directly above the span rows in ui.perfetto.dev.

Fork-safety contract
--------------------
The sampler thread lives only in the process that called :meth:`start`.
``fork()`` (the parallel engines' worker start method) copies the
*object* but never the thread, so workers inherit a dormant sampler and
spawn nothing; :meth:`stop` checks the owning pid and degrades to a
state reset when called from a child.  This is locked down by the
no-thread-leak test in ``tests/test_perf_obs.py``.

The module also owns the one corrected ``ru_maxrss`` helper
(:func:`peak_rss_mb`: the raw counter is KiB on Linux but *bytes* on
macOS); :mod:`repro.resilience.budget` reuses it instead of keeping a
private copy.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional

try:  # stdlib on POSIX; absent on Windows -- peak RSS becomes unmeasurable
    import resource as _resource
except ImportError:  # pragma: no cover - POSIX-only repo, defensive
    _resource = None  # type: ignore[assignment]

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, ValueError, OSError):  # pragma: no cover
    _PAGE_SIZE = 4096

_MB = 1024.0 * 1024.0


def peak_rss_mb() -> Optional[float]:
    """Peak resident set size of this process in MiB, if measurable.

    ``getrusage().ru_maxrss`` is kilobytes on Linux but bytes on macOS;
    this is the single normalized helper every caller (the budget meter,
    the sampler, the run report) shares.
    """
    if _resource is None:  # pragma: no cover
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - Linux CI
        return peak / _MB
    return peak / 1024.0


def current_rss_mb() -> Optional[float]:
    """Current resident set size in MiB.

    Reads ``/proc/self/statm`` (Linux); elsewhere falls back to the peak,
    which is monotone but still charts growth.
    """
    try:
        with open("/proc/self/statm") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE / _MB
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return peak_rss_mb()


class ResourceSampler:
    """Background resource sampler emitting Perfetto counter tracks.

    >>> sampler = ResourceSampler(interval=0.05)
    >>> sampler.start(); time.sleep(0.12); sampler.stop()
    >>> sampler.summary()["samples"] >= 2
    True

    Parameters
    ----------
    interval:
        Seconds between ticks.  The default 0.25 s keeps a multi-minute
        run's timeline in the hundreds of points; the overhead benchmark
        bounds the cost of even much faster ticks.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; every tick emits one
        ``counter`` event per track into its stream.
    max_samples:
        In-memory timeline cap; past it the timeline is thinned by
        dropping every other retained point (the trace stream, when
        attached, still receives every tick).
    """

    #: Counter-track names emitted on every tick.
    RSS_TRACK = "resource.rss_mb"
    CPU_TRACK = "resource.cpu_percent"

    def __init__(
        self,
        interval: float = 0.25,
        tracer=None,
        max_samples: int = 4096,
    ):
        self.interval = max(0.001, float(interval))
        self.tracer = tracer
        self.max_samples = max_samples
        self.samples: List[Dict[str, Any]] = []
        self._external: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._pid: Optional[int] = None
        self._epoch = 0.0
        self._peak_rss: Optional[float] = None
        self._cpu_seconds = 0.0
        self._thin_stride = 1

    # -- external gauges -------------------------------------------------------

    def set_value(self, name: str, value: float) -> None:
        """Push a gauge (e.g. the enumeration frontier size) to be sampled.

        Thread-safe and cheap: the instrumented loop just stores the
        latest value; the sampler thread reads it on its own tick.
        """
        with self._lock:
            self._external[name] = value

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ResourceSampler":
        if self.running:
            return self
        self._pid = os.getpid()
        self._epoch = time.perf_counter()
        self._stop.clear()
        # daemon=True: the sampler must never block interpreter exit,
        # even if stop() is skipped by a crash.
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Dict[str, Any]:
        """Stop sampling and return :meth:`summary`.  Idempotent.

        Safe to call from a forked child that inherited a started
        sampler: the thread only exists in the owning process, so the
        child just resets its copy's state.
        """
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None and self._pid == os.getpid():
            thread.join(timeout=max(1.0, 10 * self.interval))
        return self.summary()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the sampling loop -----------------------------------------------------

    def _run(self) -> None:
        last_wall = time.perf_counter()
        last_cpu = time.process_time()
        while not self._stop.wait(self.interval):
            self._tick(last_wall, last_cpu)
            last_wall = time.perf_counter()
            last_cpu = time.process_time()
        # One final tick so short phases land at least one point.
        self._tick(last_wall, last_cpu)

    def _tick(self, last_wall: float, last_cpu: float) -> None:
        now = time.perf_counter()
        cpu = time.process_time()
        wall_delta = max(now - last_wall, 1e-9)
        cpu_percent = max(0.0, 100.0 * (cpu - last_cpu) / wall_delta)
        rss = current_rss_mb()
        with self._lock:
            external = dict(self._external)
        sample: Dict[str, Any] = {
            "t": now - self._epoch,
            "rss_mb": rss,
            "cpu_percent": cpu_percent,
        }
        sample.update(external)
        if rss is not None and (self._peak_rss is None or rss > self._peak_rss):
            self._peak_rss = rss
        self._cpu_seconds = cpu
        self._record(sample)
        if self.tracer is not None:
            if rss is not None:
                self.tracer.counter(self.RSS_TRACK, rss)
            self.tracer.counter(self.CPU_TRACK, cpu_percent)
            for name, value in external.items():
                self.tracer.counter(name, value)

    def _record(self, sample: Dict[str, Any]) -> None:
        self.samples.append(sample)
        if len(self.samples) > self.max_samples:
            # Thin in place: keep every other point, double the stride.
            self.samples = self.samples[::2]
            self._thin_stride *= 2

    # -- reporting -------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Timeline summary for the run report's ``perf`` section."""
        samples = list(self.samples)
        cpu_values = [s["cpu_percent"] for s in samples]
        summary: Dict[str, Any] = {
            "interval_seconds": self.interval,
            "samples": len(samples),
            "peak_rss_mb": self._peak_rss if self._peak_rss is not None
            else peak_rss_mb(),
            "cpu_seconds": self._cpu_seconds,
            "max_cpu_percent": max(cpu_values) if cpu_values else 0.0,
            "mean_cpu_percent": (
                sum(cpu_values) / len(cpu_values) if cpu_values else 0.0
            ),
            "timeline": _downsample(samples, 200),
        }
        return summary


def _downsample(samples: List[Dict[str, Any]], limit: int) -> List[Dict[str, Any]]:
    """At most ``limit`` evenly spaced points, always keeping the last."""
    if len(samples) <= limit:
        return samples
    step = -(-len(samples) // limit)
    thinned = samples[::step]
    if thinned[-1] is not samples[-1]:
        thinned.append(samples[-1])
    return thinned
