"""Live progress heartbeats: a stderr status line + machine JSONL stream.

Multi-minute runs (paper-scale enumeration, full campaigns) were silent
until done.  A :class:`ProgressReporter` is the one channel both humans
and machines read:

- **stderr status line** -- a single ``\\r``-rewritten line
  (``[enumerate] wave=14 states=48,210 frontier=3,912``) when a stream
  is attached, so a local run always shows signs of life;
- **JSONL heartbeats** (schema :data:`HEARTBEAT_SCHEMA`) when a path is
  given -- one self-describing JSON object per line, flushed
  immediately.  This is exactly the substrate a streaming consumer
  (the planned ``repro serve`` SSE endpoint) replays: tail the file,
  forward each line.

Instrumented code calls :meth:`Observer.heartbeat(phase, **fields)
<repro.obs.observer.Observer.heartbeat>` as often as it likes (per wave,
per trace); the reporter rate-limits emission to ``min_interval`` except
on phase changes and on :meth:`close`, which always flushes the latest
suppressed state -- so the final heartbeat of every phase is never lost,
and hot loops pay one clock read per call.

JSONL heartbeat schema (``repro.heartbeat/1``)
----------------------------------------------
Every line is one JSON object::

    {"schema": "repro.heartbeat/1",
     "seq": <monotone line counter, int>,
     "ts": <seconds since the Unix epoch, float>,
     "elapsed": <seconds since the reporter started, float>,
     "phase": <pipeline phase, str>,
     "pid": <process id, int>,
     "fields": {<phase-specific numeric/str facts>}}

The ``schema`` key repeats on every line deliberately: a consumer that
attaches mid-stream (SSE, ``tail -f``) can validate any line it joins
at.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional, Tuple

#: Heartbeat line format version.
HEARTBEAT_SCHEMA = "repro.heartbeat/1"


def _format_value(value: Any) -> str:
    if isinstance(value, int) and not isinstance(value, bool):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


class ProgressReporter:
    """Rate-limited progress fan-out: status line + JSONL heartbeats.

    Parameters
    ----------
    path:
        JSONL heartbeat file (``None`` disables the machine channel).
    stream:
        Text stream for the live status line, typically ``sys.stderr``
        (``None`` disables rendering).
    min_interval:
        Minimum seconds between emitted heartbeats within one phase;
        phase changes and :meth:`close` always emit.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        stream: Optional[IO[str]] = None,
        min_interval: float = 0.5,
    ):
        self.path = path
        self.stream = stream
        self.min_interval = min_interval
        self.emitted = 0
        self._file: Optional[IO[str]] = open(path, "w") if path else None
        self._epoch = time.monotonic()
        self._last_emit: Optional[float] = None
        self._last_phase: Optional[str] = None
        self._pending: Optional[Dict[str, Any]] = None
        self._rendered = False
        self._closed = False

    # -- producing -------------------------------------------------------------

    def update(self, phase: str, **fields: Any) -> None:
        """Record progress; emits now or holds the latest state for later."""
        if self._closed:
            return
        now = time.monotonic()
        line = {"phase": phase, "fields": fields, "elapsed": now - self._epoch}
        if (
            phase == self._last_phase
            and self._last_emit is not None
            and now - self._last_emit < self.min_interval
        ):
            self._pending = line  # superseded in place until the window opens
            return
        self._emit(line, now)

    def close(self) -> None:
        """Flush the last suppressed heartbeat and release the sinks."""
        if self._closed:
            return
        if self._pending is not None:
            self._emit(self._pending, time.monotonic())
        self._closed = True
        if self._file is not None:
            self._file.close()
            self._file = None
        if self.stream is not None and self._rendered:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):  # pragma: no cover - closed stream
                pass

    def _emit(self, line: Dict[str, Any], now: float) -> None:
        self._pending = None
        self._last_emit = now
        self._last_phase = line["phase"]
        record = {
            "schema": HEARTBEAT_SCHEMA,
            "seq": self.emitted,
            "ts": time.time(),
            "elapsed": line["elapsed"],
            "phase": line["phase"],
            "pid": os.getpid(),
            "fields": line["fields"],
        }
        self.emitted += 1
        if self._file is not None:
            self._file.write(json.dumps(record) + "\n")
            self._file.flush()
        if self.stream is not None:
            self._render(record)

    def _render(self, record: Mapping[str, Any]) -> None:
        pairs = " ".join(
            f"{key}={_format_value(value)}"
            for key, value in record["fields"].items()
        )
        text = f"[{record['phase']}] {pairs}"
        if len(text) > 118:
            text = text[:115] + "..."
        try:
            # Pad to blot out a longer previous line, then rewrite in place.
            self.stream.write(f"\r{text:<118}")
            self.stream.flush()
            self._rendered = True
        except (OSError, ValueError):  # pragma: no cover - closed stream
            self.stream = None


def stderr_if_tty() -> Optional[IO[str]]:
    """``sys.stderr`` when it is an interactive terminal, else ``None``."""
    try:
        return sys.stderr if sys.stderr.isatty() else None
    except (AttributeError, ValueError):  # pragma: no cover
        return None


def tail_heartbeats(path: str, offset: int = 0) -> "Tuple[List[Dict[str, Any]], int]":
    """Incrementally read heartbeat records appended past ``offset``.

    The consumption mode of a live follower (the ``repro serve`` SSE
    endpoint): call repeatedly with the returned offset to stream only
    new records.  Only *complete* lines are consumed -- a partially
    flushed tail stays unread until its newline lands -- and a file that
    shrank below the offset (a retried job truncates and rewrites its
    heartbeat log) resets the cursor to the start so no restart goes
    unobserved.  A missing file is simply "nothing yet".
    """
    records: List[Dict[str, Any]] = []
    try:
        size = os.path.getsize(path)
    except OSError:
        return records, 0
    if size < offset:
        offset = 0
    if size == offset:
        return records, offset
    with open(path, "rb") as handle:
        handle.seek(offset)
        chunk = handle.read()
    end = chunk.rfind(b"\n")
    if end < 0:
        return records, offset
    for line in chunk[: end + 1].splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            continue  # torn line mid-file: skip, keep streaming
    return records, offset + end + 1


def read_heartbeats(path: str) -> List[Dict[str, Any]]:
    """Load a heartbeat JSONL file back into its record list."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def validate_heartbeats(records: Iterable[Mapping[str, Any]]) -> List[str]:
    """Structural validation of a heartbeat stream; returns problems.

    Checks the documented schema on every line (mid-stream attachment is
    a supported consumption mode) plus monotone ``seq`` / ``ts``.
    """
    problems: List[str] = []
    last_seq = None
    last_ts = None
    for index, record in enumerate(records):
        if record.get("schema") != HEARTBEAT_SCHEMA:
            problems.append(
                f"line {index}: schema {record.get('schema')!r} != "
                f"{HEARTBEAT_SCHEMA!r}"
            )
        for field, kind in (
            ("seq", int), ("ts", (int, float)), ("elapsed", (int, float)),
            ("phase", str), ("pid", int), ("fields", dict),
        ):
            if not isinstance(record.get(field), kind):
                problems.append(f"line {index}: bad {field!r}: "
                                f"{record.get(field)!r}")
        seq = record.get("seq")
        if isinstance(seq, int):
            if last_seq is not None and seq <= last_seq:
                problems.append(f"line {index}: seq {seq} not increasing")
            last_seq = seq
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            if last_ts is not None and ts < last_ts:
                problems.append(f"line {index}: ts went backwards")
            last_ts = ts
    return problems
