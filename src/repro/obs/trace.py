"""Structured event tracing with nested spans and a Chrome exporter.

The tracer records a flat stream of timestamped events; ``span()`` is a
context manager that emits paired ``begin``/``end`` events (with wall
*and* CPU durations on the ``end``), nesting to any depth.  When
constructed with a path the stream is also written live as JSONL, one
event per line, so a crashed run still leaves a usable partial trace.

JSONL event schema (``repro.trace/1``)
--------------------------------------
Every line is one JSON object::

    {"ts": <seconds since trace start, float>,
     "kind": "begin" | "end" | "instant" | "counter",
     "name": <event name, str>,
     "depth": <span nesting depth, int>,
     "pid": <process id, int>,
     "attrs": {<arbitrary JSON-able key/values>}}

``end`` events additionally carry ``"wall"`` and ``"cpu"`` (seconds, for
the span they close); ``counter`` events carry their sampled values in
``attrs`` (typically ``{"value": <number>}``).  The first line of a file
is a ``begin`` of the implicit stream (kind ``instant``, name
``trace.start``) carrying the schema version in its attrs.

Chrome trace_event export
-------------------------
:meth:`Tracer.chrome_trace` converts the stream into the Chrome
``trace_event`` JSON object format (``{"traceEvents": [...]}``) using
``B``/``E`` duration events, ``i`` instant events and ``C`` counter
events (rendered as counter *tracks* -- RSS/CPU/frontier curves -- by
Perfetto), loadable directly in ``chrome://tracing`` or
https://ui.perfetto.dev.

Thread safety: :meth:`Tracer.counter` (and every other emit) takes an
internal lock, because counter samples arrive from the
:class:`~repro.obs.resource.ResourceSampler` background thread while the
main thread emits spans.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, IO, Iterable, List, Mapping, Optional

#: JSONL stream format version.
TRACE_SCHEMA = "repro.trace/1"


class Tracer:
    """Structured event stream with nested span timers.

    >>> tracer = Tracer()
    >>> with tracer.span("phase.enumerate", states=42):
    ...     tracer.instant("enum.wave", wave=0, frontier=1)
    >>> [e["kind"] for e in tracer.events]
    ['instant', 'begin', 'instant', 'end']
    """

    def __init__(self, path: Optional[str] = None):
        self.events: List[Dict[str, Any]] = []
        self._depth = 0
        self._epoch = time.perf_counter()
        self._file: Optional[IO[str]] = open(path, "w") if path else None
        self.path = path
        self._lock = threading.Lock()
        self._last_ts = 0.0
        self.instant("trace.start", schema=TRACE_SCHEMA, pid=os.getpid())

    # -- recording -----------------------------------------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            # Timestamps are taken before the lock, so a counter sample
            # from the sampler thread can race a span emit by a few
            # microseconds; clamp so the stream stays monotone (the
            # validator and Perfetto both require ordered events).
            if event["ts"] < self._last_ts:
                event["ts"] = self._last_ts
            self._last_ts = event["ts"]
            self.events.append(event)
            if self._file is not None:
                self._file.write(json.dumps(event) + "\n")
                self._file.flush()

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event at the current nesting depth."""
        self._emit({
            "ts": self._now(),
            "kind": "instant",
            "name": name,
            "depth": self._depth,
            "pid": os.getpid(),
            "attrs": attrs,
        })

    def counter(self, name: str, value: float, **extra: Any) -> None:
        """Record one sample of a counter track (Perfetto ``C`` event).

        Thread-safe; called from the resource sampler's tick thread.
        """
        attrs = {"value": value}
        attrs.update(extra)
        self._emit({
            "ts": self._now(),
            "kind": "counter",
            "name": name,
            "depth": self._depth,
            "pid": os.getpid(),
            "attrs": attrs,
        })

    @contextmanager
    def span(self, name: str, **attrs: Any):
        """Time a phase: paired begin/end events with wall + CPU durations."""
        begin_wall = self._now()
        begin_cpu = time.process_time()
        self._emit({
            "ts": begin_wall,
            "kind": "begin",
            "name": name,
            "depth": self._depth,
            "pid": os.getpid(),
            "attrs": attrs,
        })
        self._depth += 1
        try:
            yield self
        finally:
            self._depth -= 1
            end_wall = self._now()
            self._emit({
                "ts": end_wall,
                "kind": "end",
                "name": name,
                "depth": self._depth,
                "pid": os.getpid(),
                "attrs": attrs,
                "wall": end_wall - begin_wall,
                "cpu": time.process_time() - begin_cpu,
            })

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    # -- exporters -----------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        return chrome_trace_from_events(self.events)

    def write_chrome_trace(self, path: str) -> None:
        from repro.resilience.atomic import atomic_write_text

        # Atomic: a crash mid-export must not leave a half-written trace
        # that chrome://tracing rejects (the live JSONL stream is the
        # incremental record; this export is all-or-nothing).
        atomic_write_text(path, json.dumps(self.chrome_trace()))


def chrome_trace_from_events(events: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Convert ``repro.trace/1`` events into Chrome ``trace_event`` format."""
    phase_for_kind = {"begin": "B", "end": "E", "instant": "i", "counter": "C"}
    trace_events: List[Dict[str, Any]] = []
    for event in events:
        converted: Dict[str, Any] = {
            "name": event["name"],
            "ph": phase_for_kind[event["kind"]],
            "ts": event["ts"] * 1e6,  # trace_event timestamps are microseconds
            "pid": event.get("pid", 0),
            "tid": 0,
            "args": dict(event.get("attrs", {})),
        }
        if converted["ph"] == "i":
            converted["s"] = "p"  # process-scoped instant
        if "wall" in event:
            converted["args"]["wall_s"] = event["wall"]
            converted["args"]["cpu_s"] = event["cpu"]
        trace_events.append(converted)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def read_jsonl_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace file back into its event list."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def validate_trace_events(events: Iterable[Mapping[str, Any]]) -> List[str]:
    """Structural validation of an event stream; returns a list of problems.

    Checks the documented schema: required fields, monotonic timestamps,
    and balanced begin/end pairs (properly nested, matching names).
    """
    problems: List[str] = []
    stack: List[str] = []
    last_ts = None
    saw_header = False
    for index, event in enumerate(events):
        kind = event.get("kind")
        if kind not in ("begin", "end", "instant", "counter"):
            problems.append(f"event {index}: bad kind {kind!r}")
            continue
        for field in ("ts", "name", "depth", "pid", "attrs"):
            if field not in event:
                problems.append(f"event {index}: missing {field!r}")
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if last_ts is not None and ts < last_ts:
                problems.append(f"event {index}: timestamp went backwards")
            last_ts = ts
        if index == 0:
            saw_header = (
                event.get("name") == "trace.start"
                and event.get("attrs", {}).get("schema") == TRACE_SCHEMA
            )
        if kind == "begin":
            if event.get("depth") != len(stack):
                problems.append(f"event {index}: depth {event.get('depth')} "
                                f"!= nesting {len(stack)}")
            stack.append(event.get("name"))
        elif kind == "end":
            if not stack:
                problems.append(f"event {index}: end without begin")
            elif stack[-1] != event.get("name"):
                problems.append(
                    f"event {index}: end {event.get('name')!r} does not match "
                    f"open span {stack[-1]!r}"
                )
            else:
                stack.pop()
            if "wall" not in event or "cpu" not in event:
                problems.append(f"event {index}: end without wall/cpu durations")
    if not saw_header:
        problems.append("stream does not start with a trace.start header")
    if stack:
        problems.append(f"unclosed spans at EOF: {stack}")
    return problems
