"""Process-wide metrics: counters, gauges, and histograms with labels.

The registry is the numeric half of the observability layer (the event
half lives in :mod:`repro.obs.trace`).  Three metric kinds cover every
signal the pipeline emits:

- **counters** -- monotonically increasing totals (states interned,
  transitions explored, cache hits); merging *sums* them;
- **gauges** -- last-observed values (frontier depth, state bits);
  merging is last-write-wins;
- **histograms** -- distributions (per-wave frontier sizes, per-shard
  worker seconds, per-trace instruction counts) stored as count / sum /
  min / max plus cumulative bucket counts; merging adds component-wise.

Every metric takes optional string labels (``worker="1234"``), so one
name can carry per-worker or per-method breakdowns while the unlabeled
total stays queryable via :meth:`MetricsRegistry.total`.

Snapshots are plain JSON-able dicts (schema :data:`METRICS_SCHEMA`), and
:meth:`MetricsRegistry.merge` folds a snapshot back into a registry --
that is how metrics recorded inside forked parallel-enumeration workers
flow back to the coordinator: each worker snapshots a private registry,
ships the dict with its results, and the coordinator merges.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Snapshot format version; embedded in every snapshot for validation.
METRICS_SCHEMA = "repro.metrics/1"

#: Default histogram bucket upper bounds.  Geometric 1-5 spacing spans
#: both sub-millisecond timings (seconds) and count-valued observations
#: (frontier sizes, instructions per trace); the implicit +inf bucket
#: catches everything above.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5,
    1, 5, 10, 50, 100, 500,
    1_000, 5_000, 10_000, 50_000, 100_000, 500_000,
)

#: Internal key: (name, sorted label items).
_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, Any]) -> _Key:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class _Histogram:
    __slots__ = ("count", "sum", "min", "max", "buckets", "bounds")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.bounds = tuple(bounds)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (len(self.bounds) + 1)  # last = +inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """In-process metric store; snapshot-able to JSON, merge-able back.

    >>> registry = MetricsRegistry()
    >>> registry.inc("enum.states", 42)
    >>> registry.observe("enum.wave.frontier_states", 17, mode="parallel")
    >>> registry.total("enum.states")
    42
    """

    def __init__(self) -> None:
        self._counters: Dict[_Key, float] = {}
        self._gauges: Dict[_Key, float] = {}
        self._histograms: Dict[_Key, _Histogram] = {}

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = _Histogram()
        histogram.observe(value)

    # -- querying ------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """The exact counter for ``name`` under exactly these labels."""
        return self._counters.get(_key(name, labels), 0)

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        return self._gauges.get(_key(name, labels))

    def total(self, name: str) -> float:
        """Sum of a counter across every label set it was recorded under."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def histogram_stats(self, name: str, **labels: Any) -> Optional[Dict[str, float]]:
        histogram = self._histograms.get(_key(name, labels))
        if histogram is None:
            return None
        return {
            "count": histogram.count,
            "sum": histogram.sum,
            "min": histogram.min,
            "max": histogram.max,
            "mean": histogram.mean,
        }

    def counter_names(self) -> List[str]:
        return sorted({name for name, _ in self._counters})

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able dict of every metric (schema ``repro.metrics/1``)."""

        def rows(table: Dict[_Key, float]) -> List[Dict[str, Any]]:
            return [
                {"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(table.items())
            ]

        histogram_rows = []
        for (name, labels), histogram in sorted(self._histograms.items()):
            histogram_rows.append({
                "name": name,
                "labels": dict(labels),
                "count": histogram.count,
                "sum": histogram.sum,
                "min": histogram.min,
                "max": histogram.max,
                "bounds": list(histogram.bounds),
                "buckets": list(histogram.buckets),
            })
        return {
            "schema": METRICS_SCHEMA,
            "counters": rows(self._counters),
            "gauges": rows(self._gauges),
            "histograms": histogram_rows,
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict into this registry.

        Counters add, gauges take the snapshot's value, histograms merge
        component-wise (requires matching bucket bounds -- always true for
        snapshots produced by this module's defaults).
        """
        if snapshot.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"cannot merge metrics snapshot with schema "
                f"{snapshot.get('schema')!r}; expected {METRICS_SCHEMA!r}"
            )
        for row in snapshot.get("counters", []):
            self.inc(row["name"], row["value"], **row.get("labels", {}))
        for row in snapshot.get("gauges", []):
            self.gauge(row["name"], row["value"], **row.get("labels", {}))
        for row in snapshot.get("histograms", []):
            key = _key(row["name"], row.get("labels", {}))
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram(row["bounds"])
            elif tuple(row["bounds"]) != histogram.bounds:
                raise ValueError(
                    f"histogram {row['name']!r} bucket bounds mismatch"
                )
            histogram.count += row["count"]
            histogram.sum += row["sum"]
            for bound_stat in ("min", "max"):
                incoming = row.get(bound_stat)
                if incoming is None:
                    continue
                current = getattr(histogram, bound_stat)
                if current is None:
                    setattr(histogram, bound_stat, incoming)
                elif bound_stat == "min":
                    histogram.min = min(current, incoming)
                else:
                    histogram.max = max(current, incoming)
            for index, count in enumerate(row["buckets"]):
                histogram.buckets[index] += count

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry


def validate_metrics_snapshot(snapshot: Mapping[str, Any]) -> List[str]:
    """Structural validation of a snapshot; returns a list of problems.

    Used by the CI smoke (and anyone consuming ``--metrics-out`` files)
    to verify emitted JSON matches the documented schema without pulling
    in a JSON-Schema dependency.
    """
    problems: List[str] = []
    if snapshot.get("schema") != METRICS_SCHEMA:
        problems.append(f"schema is {snapshot.get('schema')!r}")
    for section in ("counters", "gauges", "histograms"):
        rows = snapshot.get(section)
        if not isinstance(rows, list):
            problems.append(f"{section} is not a list")
            continue
        for row in rows:
            if not isinstance(row.get("name"), str):
                problems.append(f"{section} row without a string name: {row!r}")
            if not isinstance(row.get("labels"), dict):
                problems.append(f"{section} row without labels dict: {row!r}")
            if section == "histograms":
                if len(row.get("buckets", [])) != len(row.get("bounds", [])) + 1:
                    problems.append(
                        f"histogram {row.get('name')!r} bucket/bound mismatch"
                    )
            elif not isinstance(row.get("value"), (int, float)):
                problems.append(f"{section} row without numeric value: {row!r}")
    return problems
