"""Observability for the validation pipeline: metrics, tracing, reports.

The paper's methodology is coverage-driven -- its results *are*
observability artifacts (enumeration statistics, bug-detection matrices,
coverage-vs-instructions curves) -- so the pipeline exposes first-class
runtime signals:

- :class:`MetricsRegistry` -- process-wide counters / gauges /
  histograms with labels, snapshot-able to JSON and merge-able across
  forked workers (:mod:`repro.obs.metrics`);
- :class:`Tracer` -- a structured JSONL event stream with nested
  ``span()`` phase timers and a Chrome ``trace_event`` exporter for
  ``chrome://tracing`` / Perfetto (:mod:`repro.obs.trace`);
- :class:`Observer` -- the facade instrumented code receives; the shared
  :data:`NULL_OBSERVER` makes every hook a no-op when no sinks are
  configured (:mod:`repro.obs.observer`);
- :class:`RunReport` -- one machine-readable JSON document unifying
  stats, divergences, cache provenance, per-phase wall/CPU time and
  coverage-curve data, rendered by ``repro report``
  (:mod:`repro.obs.report`);
- :class:`ResourceSampler` -- a background thread sampling RSS / CPU /
  frontier size into Perfetto counter tracks
  (:mod:`repro.obs.resource`);
- :class:`SamplingProfiler` -- an opt-in ``setitimer`` statistical
  profiler with collapsed-stack / flamegraph export
  (:mod:`repro.obs.prof`);
- :class:`ProgressReporter` -- live heartbeats: a stderr status line
  plus machine-readable JSONL (:mod:`repro.obs.progress`);
- the benchmark registry -- a shared ``repro.bench-result/1`` schema,
  the ``BENCH_history.jsonl`` timeline keyed by git SHA, and the
  regression gate behind ``repro bench`` (:mod:`repro.obs.bench`).
"""

from repro.obs.bench import (
    BENCH_RESULT_SCHEMA,
    BenchResult,
    append_history,
    detect_regressions,
    load_history,
    parallel_efficiency_warnings,
    register_benchmark,
    registered_benchmarks,
    run_benchmark,
    validate_bench_result,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    MetricsRegistry,
    validate_metrics_snapshot,
)
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer, resolve
from repro.obs.prof import SamplingProfiler
from repro.obs.progress import (
    HEARTBEAT_SCHEMA,
    ProgressReporter,
    read_heartbeats,
    stderr_if_tty,
    tail_heartbeats,
    validate_heartbeats,
)
from repro.obs.report import RUN_REPORT_SCHEMA, RunReport, validate_run_report
from repro.obs.resource import ResourceSampler, current_rss_mb, peak_rss_mb
from repro.obs.trace import (
    TRACE_SCHEMA,
    Tracer,
    chrome_trace_from_events,
    read_jsonl_trace,
    validate_trace_events,
)

__all__ = [
    "BENCH_RESULT_SCHEMA",
    "BenchResult",
    "append_history",
    "detect_regressions",
    "load_history",
    "parallel_efficiency_warnings",
    "register_benchmark",
    "registered_benchmarks",
    "run_benchmark",
    "validate_bench_result",
    "DEFAULT_BUCKETS",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "validate_metrics_snapshot",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "resolve",
    "SamplingProfiler",
    "HEARTBEAT_SCHEMA",
    "ProgressReporter",
    "read_heartbeats",
    "tail_heartbeats",
    "stderr_if_tty",
    "validate_heartbeats",
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "validate_run_report",
    "ResourceSampler",
    "current_rss_mb",
    "peak_rss_mb",
    "TRACE_SCHEMA",
    "Tracer",
    "chrome_trace_from_events",
    "read_jsonl_trace",
    "validate_trace_events",
]
