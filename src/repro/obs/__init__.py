"""Observability for the validation pipeline: metrics, tracing, reports.

The paper's methodology is coverage-driven -- its results *are*
observability artifacts (enumeration statistics, bug-detection matrices,
coverage-vs-instructions curves) -- so the pipeline exposes first-class
runtime signals:

- :class:`MetricsRegistry` -- process-wide counters / gauges /
  histograms with labels, snapshot-able to JSON and merge-able across
  forked workers (:mod:`repro.obs.metrics`);
- :class:`Tracer` -- a structured JSONL event stream with nested
  ``span()`` phase timers and a Chrome ``trace_event`` exporter for
  ``chrome://tracing`` / Perfetto (:mod:`repro.obs.trace`);
- :class:`Observer` -- the facade instrumented code receives; the shared
  :data:`NULL_OBSERVER` makes every hook a no-op when no sinks are
  configured (:mod:`repro.obs.observer`);
- :class:`RunReport` -- one machine-readable JSON document unifying
  stats, divergences, cache provenance, per-phase wall/CPU time and
  coverage-curve data, rendered by ``repro report``
  (:mod:`repro.obs.report`).
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS_SCHEMA,
    MetricsRegistry,
    validate_metrics_snapshot,
)
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer, resolve
from repro.obs.report import RUN_REPORT_SCHEMA, RunReport, validate_run_report
from repro.obs.trace import (
    TRACE_SCHEMA,
    Tracer,
    chrome_trace_from_events,
    read_jsonl_trace,
    validate_trace_events,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "validate_metrics_snapshot",
    "NULL_OBSERVER",
    "NullObserver",
    "Observer",
    "resolve",
    "RUN_REPORT_SCHEMA",
    "RunReport",
    "validate_run_report",
    "TRACE_SCHEMA",
    "Tracer",
    "chrome_trace_from_events",
    "read_jsonl_trace",
    "validate_trace_events",
]
