"""The unified benchmark registry, history timeline and regression gate.

The repo's benchmark scripts grew three incompatible ad-hoc JSON shapes
(``repro.bench-kernel/1``, ``repro.bench-backhalf/1``, and bare dicts),
and none of them accumulated: every run overwrote the last, so the perf
*trajectory* -- the thing a paper whose results are throughput tables
lives on -- was invisible.  This module is the shared substrate:

- **One result schema**, :data:`BENCH_RESULT_SCHEMA`
  (``repro.bench-result/1``): a named benchmark run carrying typed
  metrics (value + unit + direction), free-form context (scale, jobs,
  kernel), a git SHA and a UTC timestamp.
- **A registry** of runnable benchmarks (:func:`register_benchmark`);
  ``repro bench`` discovers and runs them.  The built-ins at the bottom
  of this module cover the pipeline's four hot phases at a CI-friendly
  scale.
- **A history timeline**: every run appends one JSONL line to
  ``BENCH_history.jsonl`` keyed by git SHA -- the same file the legacy
  ``bench_kernel.py`` / ``bench_back_half.py`` scripts now feed too.
  Runs from a tree with uncommitted tracked changes are stamped
  ``<sha>-dirty`` (:func:`provenance_sha`), so a measurement can never
  silently masquerade as the clean HEAD commit's performance.
- **A regression detector** (:func:`detect_regressions`): the newest
  entry of every (benchmark, metric) series is compared against the
  median of a trailing baseline window; a slowdown past the threshold
  fails the gate (or warns, in report-only mode).  A companion check
  (:func:`parallel_efficiency_warnings`) compares sibling jobs=1 /
  jobs>1 entries so facts like "jobs=4 is *slower* than jobs=1" surface
  automatically instead of by manual inspection of two JSON files.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

#: Benchmark result format version.
BENCH_RESULT_SCHEMA = "repro.bench-result/1"

#: Default history file name (repo-root relative by convention).
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Default regression threshold: latest > baseline by more than this
#: fraction fails the gate.  Generous because shared CI runners are
#: noisy; tighten locally via ``repro bench --threshold``.
DEFAULT_THRESHOLD = 0.25

#: Default trailing-window size for the baseline median.
DEFAULT_WINDOW = 5


def metric(
    value: float, unit: str = "seconds", higher_is_better: bool = False
) -> Dict[str, Any]:
    """One typed metric cell for :class:`BenchResult.metrics`."""
    return {
        "value": float(value),
        "unit": unit,
        "higher_is_better": bool(higher_is_better),
    }


@dataclass
class BenchResult:
    """One benchmark run in the shared ``repro.bench-result/1`` schema."""

    name: str
    metrics: Dict[str, Dict[str, Any]]
    context: Dict[str, Any] = field(default_factory=dict)
    git_sha: str = "unknown"
    timestamp: str = ""
    schema: str = BENCH_RESULT_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "name": self.name,
            "git_sha": self.git_sha,
            "timestamp": self.timestamp,
            "context": self.context,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchResult":
        problems = validate_bench_result(payload)
        if problems:
            raise ValueError(f"invalid bench result: {problems}")
        return cls(
            name=payload["name"],
            metrics=dict(payload["metrics"]),
            context=dict(payload.get("context", {})),
            git_sha=payload.get("git_sha", "unknown"),
            timestamp=payload.get("timestamp", ""),
        )


def validate_bench_result(payload: Mapping[str, Any]) -> List[str]:
    """Structural validation of one result document; returns problems."""
    problems: List[str] = []
    if payload.get("schema") != BENCH_RESULT_SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}")
    if not isinstance(payload.get("name"), str) or not payload.get("name"):
        problems.append("name missing")
    if not isinstance(payload.get("git_sha"), str):
        problems.append("git_sha missing")
    if not isinstance(payload.get("timestamp"), str):
        problems.append("timestamp missing")
    if not isinstance(payload.get("context"), dict):
        problems.append("context is not a dict")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("metrics missing or empty")
        return problems
    for name, cell in metrics.items():
        if not isinstance(cell, dict):
            problems.append(f"metric {name!r} is not a dict")
            continue
        if not isinstance(cell.get("value"), (int, float)):
            problems.append(f"metric {name!r} without numeric value")
        if not isinstance(cell.get("unit"), str):
            problems.append(f"metric {name!r} without unit")
        if not isinstance(cell.get("higher_is_better"), bool):
            problems.append(f"metric {name!r} without direction")
    return problems


def git_sha(cwd: Optional[str] = None) -> str:
    """The current commit SHA, or ``"unknown"`` outside a git checkout."""
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


#: Per-cwd cache for the dirty-tree probe.  The answer is stable for the
#: life of a benchmark process, and ``append_history`` itself modifies
#: the (tracked) history file mid-run -- re-probing after the first
#: append would stamp every subsequent entry of a clean run as dirty.
_DIRTY_CACHE: Dict[Optional[str], Optional[bool]] = {}


def git_dirty(cwd: Optional[str] = None) -> Optional[bool]:
    """Whether tracked files carry uncommitted changes (None if unknown).

    Untracked files are ignored (the ``git describe --dirty``
    convention): the failure mode this guards against is benchmarking
    *modified* code while attributing the numbers to the unmodified
    HEAD commit.  Benchmark artifacts (tracked ``BENCH_*`` files) are
    ignored too -- the benchmarks rewrite them mid-run, before their
    history entries are stamped, and a run's own outputs are not code.
    """
    if cwd not in _DIRTY_CACHE:
        try:
            out = subprocess.run(
                ["git", "status", "--porcelain", "--untracked-files=no"],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.SubprocessError):
            out = None
        if out is None or out.returncode != 0:
            _DIRTY_CACHE[cwd] = None
        else:
            code_changes = [
                line for line in out.stdout.splitlines()
                if line.strip() and not os.path.basename(
                    line[3:].split(" -> ")[-1].strip().strip('"')
                ).startswith("BENCH_")
            ]
            _DIRTY_CACHE[cwd] = bool(code_changes)
    return _DIRTY_CACHE[cwd]


def provenance_sha(cwd: Optional[str] = None) -> str:
    """:func:`git_sha`, suffixed ``-dirty`` for an unclean working tree.

    History entries once attributed dirty-tree measurements to the bare
    parent commit -- code the commit did not contain.  Stamping the
    suffix makes that impossible to do silently.  A ``REPRO_GIT_SHA``
    override is taken verbatim: the caller is asserting provenance
    explicitly.
    """
    if os.environ.get("REPRO_GIT_SHA"):
        return git_sha(cwd)
    sha = git_sha(cwd)
    if sha != "unknown" and git_dirty(cwd):
        sha += "-dirty"
    return sha


def short_sha(sha: str, length: int = 12) -> str:
    """Abbreviate a provenance SHA without losing the ``-dirty`` marker."""
    if sha.endswith("-dirty"):
        return sha[: -len("-dirty")][:length] + "-dirty"
    return sha[:length]


def stamp(result: BenchResult, cwd: Optional[str] = None) -> BenchResult:
    """Fill in the provenance fields (git SHA, UTC timestamp) in place."""
    if result.git_sha == "unknown":
        result.git_sha = provenance_sha(cwd)
    if not result.timestamp:
        result.timestamp = (
            datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds")
        )
    return result


# -- the history timeline ------------------------------------------------------


def append_history(path: str, result: BenchResult) -> None:
    """Append one validated result line to the history timeline."""
    payload = stamp(result).to_dict()
    problems = validate_bench_result(payload)
    if problems:
        raise ValueError(f"refusing to append invalid result: {problems}")
    with open(path, "a") as handle:
        handle.write(json.dumps(payload, sort_keys=True) + "\n")


def load_history(path: str) -> List[Dict[str, Any]]:
    """Load the timeline; entries stay in append (chronological) order.

    Unparseable or schema-invalid lines are skipped (a half-written line
    from a crashed run must not poison every future gate evaluation).
    """
    entries: List[Dict[str, Any]] = []
    if not os.path.exists(path):
        return entries
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not validate_bench_result(payload):
                entries.append(payload)
    return entries


# -- the regression gate -------------------------------------------------------


@dataclass
class Regression:
    """One (benchmark, metric) series whose latest entry crossed the gate."""

    name: str
    metric: str
    unit: str
    latest: float
    baseline: float
    change: float  # fractional regression: +0.30 == 30% worse
    baseline_entries: int

    def describe(self) -> str:
        return (
            f"{self.name} :: {self.metric}: {self.latest:.4g} {self.unit} vs "
            f"baseline {self.baseline:.4g} (median of "
            f"{self.baseline_entries}) -- {100.0 * self.change:+.1f}% worse"
        )


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def detect_regressions(
    entries: Iterable[Mapping[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
) -> List[Regression]:
    """Compare each series' newest entry against its trailing baseline.

    For every (benchmark name, metric) series the *latest* entry is
    measured against the median of up to ``window`` immediately
    preceding entries.  Lower-is-better metrics regress when
    ``latest > baseline * (1 + threshold)``; higher-is-better ones when
    ``latest < baseline * (1 - threshold)``.  A series with no history
    before its latest entry has no baseline and cannot regress.
    """
    series: Dict[tuple, List[Dict[str, Any]]] = {}
    for entry in entries:
        for metric_name, cell in entry.get("metrics", {}).items():
            series.setdefault((entry["name"], metric_name), []).append(cell)
    regressions: List[Regression] = []
    for (name, metric_name), cells in series.items():
        if len(cells) < 2:
            continue
        latest = cells[-1]
        baseline_cells = cells[max(0, len(cells) - 1 - window):-1]
        baseline = _median([c["value"] for c in baseline_cells])
        value = latest["value"]
        if baseline <= 0:
            continue  # degenerate baseline: nothing meaningful to gate on
        if latest.get("higher_is_better"):
            change = (baseline - value) / baseline
        else:
            change = (value - baseline) / baseline
        if change > threshold:
            regressions.append(Regression(
                name=name,
                metric=metric_name,
                unit=latest.get("unit", ""),
                latest=value,
                baseline=baseline,
                change=change,
                baseline_entries=len(baseline_cells),
            ))
    regressions.sort(key=lambda r: -r.change)
    return regressions


def latest_by_name(
    entries: Iterable[Mapping[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """The newest entry of every benchmark name in the timeline."""
    latest: Dict[str, Dict[str, Any]] = {}
    for entry in entries:
        latest[entry["name"]] = dict(entry)
    return latest


def parallel_efficiency_warnings(
    entries: Iterable[Mapping[str, Any]],
    metric_name: str = "wall_seconds",
) -> List[str]:
    """Warn when a family's jobs>1 wall time does not beat its jobs=1.

    Benchmarks that set ``context.family`` and ``context.jobs`` opt into
    the check; within a family, every latest jobs>1 entry is compared
    against the latest jobs=1 entry.  This is the automated version of
    the ROADMAP observation that at small scale jobs=4 *loses* to
    jobs=1.
    """
    families: Dict[str, Dict[int, Dict[str, Any]]] = {}
    for entry in latest_by_name(entries).values():
        context = entry.get("context", {})
        family = context.get("family")
        jobs = context.get("jobs")
        if family is None or not isinstance(jobs, int):
            continue
        if metric_name not in entry.get("metrics", {}):
            continue
        families.setdefault(family, {})[jobs] = entry
    warnings: List[str] = []
    for family, by_jobs in sorted(families.items()):
        base = by_jobs.get(1)
        if base is None:
            continue
        base_wall = base["metrics"][metric_name]["value"]
        for jobs, entry in sorted(by_jobs.items()):
            if jobs <= 1:
                continue
            wall = entry["metrics"][metric_name]["value"]
            if wall >= base_wall and base_wall > 0:
                speedup = base_wall / wall
                states = entry.get("context", {}).get(
                    "states", base.get("context", {}).get("states")
                )
                scale = (
                    f" at {states:,} states"
                    if isinstance(states, int) and states > 0 else ""
                )
                warnings.append(
                    f"parallel efficiency: {family} at jobs={jobs} took "
                    f"{wall:.3f}s vs {base_wall:.3f}s at jobs=1 "
                    f"({speedup:.2f}x speedup, {speedup / jobs:.0%} "
                    f"efficiency{scale}) -- parallelism is "
                    f"not paying off at this scale"
                )
    return warnings


# -- the registry --------------------------------------------------------------

_REGISTRY: Dict[str, Callable[[], BenchResult]] = {}


def register_benchmark(name: str):
    """Decorator: register a zero-arg callable returning a BenchResult."""

    def decorator(fn: Callable[[], BenchResult]) -> Callable[[], BenchResult]:
        _REGISTRY[name] = fn
        return fn

    return decorator


def registered_benchmarks() -> List[str]:
    return sorted(_REGISTRY)


def run_benchmark(name: str) -> BenchResult:
    """Run one registered benchmark and stamp its provenance."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown benchmark {name!r}; registered: {registered_benchmarks()}"
        )
    result = _REGISTRY[name]()
    if result.name != name:
        raise ValueError(
            f"benchmark {name!r} returned a result named {result.name!r}"
        )
    return stamp(result)


# -- built-in benchmarks -------------------------------------------------------
#
# One per hot phase, at a scale (fill_words=1 by default) where the whole
# suite finishes in a few seconds -- these are trajectory probes for the
# history timeline, not the paper-scale assertions (those stay in
# benchmarks/bench_*.py).  Scale and repeats are env-tunable so CI and
# local runs can differ without code changes.

_FILL_WORDS = int(os.environ.get("REPRO_BENCH_FILL_WORDS", "1"))
_REPEATS = max(1, int(os.environ.get("REPRO_BENCH_REPEATS", "2")))
_PARALLEL_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))

_SHARED: Dict[str, Any] = {}


def _best_of(fn: Callable[[], Any]) -> tuple:
    best = None
    result = None
    for _ in range(_REPEATS):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _shared_pipeline() -> Dict[str, Any]:
    """Control model + graph + cost/tours, built once per process."""
    if not _SHARED:
        from repro.enumeration import enumerate_states
        from repro.pp.fsm_model import PPControlModel, PPModelConfig
        from repro.tour import IndexedTourGenerator
        from repro.vectors import (
            TransitionEventMemo,
            pp_instruction_cost,
        )

        control = PPControlModel(PPModelConfig(fill_words=_FILL_WORDS))
        graph, _ = enumerate_states(control.build())
        memo = TransitionEventMemo(control, graph)
        cost = pp_instruction_cost(control, graph, memo=memo)
        tours = IndexedTourGenerator(
            graph, instruction_cost=cost, max_instructions_per_trace=400
        ).generate()
        _SHARED.update(
            control=control, graph=graph, memo=memo, cost=cost, tours=tours
        )
    return _SHARED


def _context(**extra: Any) -> Dict[str, Any]:
    context = {"fill_words": _FILL_WORDS, "repeats": _REPEATS}
    context.update(extra)
    return context


@register_benchmark("enum.sequential")
def _bench_enum_sequential() -> BenchResult:
    from repro.enumeration import enumerate_states
    from repro.pp.fsm_model import PPControlModel, PPModelConfig

    def run():
        # Fresh model each repeat: kernels (and their successor memos)
        # cache per model object, so reuse would time a warm memo.
        model = PPControlModel(PPModelConfig(fill_words=_FILL_WORDS)).build()
        return enumerate_states(model)

    wall, (_, stats) = _best_of(run)
    return BenchResult(
        name="enum.sequential",
        context=_context(family="enum", jobs=1, kernel="compiled",
                         states=stats.num_states),
        metrics={
            "wall_seconds": metric(wall),
            "states_per_second": metric(
                stats.num_states / wall, "states/s", higher_is_better=True
            ),
        },
    )


@register_benchmark("enum.parallel")
def _bench_enum_parallel() -> BenchResult:
    from repro.enumeration import enumerate_states_parallel
    from repro.pp.fsm_model import PPControlModel, PPModelConfig

    def run():
        model = PPControlModel(PPModelConfig(fill_words=_FILL_WORDS)).build()
        return enumerate_states_parallel(model, jobs=_PARALLEL_JOBS)

    wall, (_, stats) = _best_of(run)
    return BenchResult(
        name="enum.parallel",
        context=_context(
            family="enum", jobs=_PARALLEL_JOBS, kernel="compiled",
            cpus=os.cpu_count(), states=stats.num_states,
        ),
        metrics={
            "wall_seconds": metric(wall),
            "states_per_second": metric(
                stats.num_states / wall, "states/s", higher_is_better=True
            ),
        },
    )


@register_benchmark("enum.parallel.full")
def _bench_enum_parallel_full() -> BenchResult:
    """Scaled-up parallel enumeration through the persistent worker pool.

    Probes the regime the small-scale ``enum.parallel`` benchmark cannot:
    enough states per wave for packed shared-memory dispatch to engage.
    The scale is env-selected (``REPRO_BENCH_FULL_SCALE``) because the
    paper-scale ``full`` model takes ~a minute sequentially; the default
    ``branch`` scale (~11K states) keeps the registry suite quick while
    still crossing the dispatch threshold every wave.  The exhaustive
    Table 3.2 sweep lives in ``benchmarks/bench_table_3_2.py``.
    """
    from repro.enumeration import enumerate_states_parallel, make_worker_pool
    from repro.pp.fsm_model import PPModelConfig, build_pp_control_model

    scale = os.environ.get("REPRO_BENCH_FULL_SCALE", "branch")
    configs = {
        "branch": PPModelConfig(fill_words=2, extra_pipe_stages=1,
                                model_branches=True),
        "mid": PPModelConfig(fill_words=2, extra_pipe_stages=2),
        "full": PPModelConfig.full(),
    }
    config = configs[scale]
    pool = make_worker_pool(_PARALLEL_JOBS)

    def run():
        model = build_pp_control_model(config)
        return enumerate_states_parallel(model, jobs=_PARALLEL_JOBS, pool=pool)

    try:
        wall, (_, stats) = _best_of(run)
    finally:
        pool.shutdown()
    return BenchResult(
        name="enum.parallel.full",
        context=_context(
            family="enum-full", jobs=_PARALLEL_JOBS, kernel="compiled",
            cpus=os.cpu_count(), scale=scale, states=stats.num_states,
        ),
        metrics={
            "wall_seconds": metric(wall),
            "states_per_second": metric(
                stats.num_states / wall, "states/s", higher_is_better=True
            ),
        },
    )


@register_benchmark("tours.indexed")
def _bench_tours_indexed() -> BenchResult:
    from repro.tour import IndexedTourGenerator

    shared = _shared_pipeline()
    wall, tours = _best_of(
        lambda: IndexedTourGenerator(
            shared["graph"],
            instruction_cost=shared["cost"],
            max_instructions_per_trace=400,
        ).generate()
    )
    arcs = sum(len(t) for t in tours)
    return BenchResult(
        name="tours.indexed",
        context=_context(family="tours", jobs=1, limit=400),
        metrics={
            "wall_seconds": metric(wall),
            "arc_traversals_per_second": metric(
                arcs / wall, "arcs/s", higher_is_better=True
            ),
        },
    )


@register_benchmark("vectors.warm-memo")
def _bench_vectors_warm() -> BenchResult:
    from repro.vectors import VectorGenerator

    shared = _shared_pipeline()
    generator = VectorGenerator(
        shared["control"], shared["graph"], seed=0, memo=shared["memo"]
    )
    tours = list(shared["tours"])
    wall, traces = _best_of(lambda: generator.generate(tours))
    return BenchResult(
        name="vectors.warm-memo",
        context=_context(family="vectors", jobs=1, seed=0),
        metrics={
            "wall_seconds": metric(wall),
            "instructions_per_second": metric(
                traces.total_instructions / wall, "instr/s",
                higher_is_better=True,
            ),
        },
    )


@register_benchmark("serve.throughput")
def _bench_serve_throughput() -> BenchResult:
    """Jobs/second through a saturated ``repro serve`` daemon.

    An in-process server (inline execution, 2 workers, a deliberately
    tiny queue) is flooded with distinct enumerate jobs; shed
    submissions (429) are retried until everything completes, exactly
    like a well-behaved client.  The jobs/second figure tracks the whole
    service path -- admission, journal fsyncs, worker dispatch, result
    persistence -- and ``shed_jobs`` confirms admission control engaged.
    """
    import asyncio
    import json
    import tempfile

    from repro.serve.app import ServeConfig, ValidationServer

    total_jobs = int(os.environ.get("REPRO_BENCH_SERVE_JOBS", "6"))

    async def _flood() -> tuple:
        with tempfile.TemporaryDirectory() as tmp:
            server = ValidationServer(ServeConfig(
                state_dir=tmp, workers=2, max_pending=2, execution="inline",
            ))
            await server.start()
            started = time.perf_counter()
            pending = [
                json.dumps({"kind": "enumerate",
                            "params": {"tag": f"load-{i}"}}).encode()
                for i in range(total_jobs)
            ]
            while pending:
                retry = []
                for body in pending:
                    status, _, _ = server._submit(body)
                    if status == 429:
                        retry.append(body)
                pending = retry
                await asyncio.sleep(0.02)
            while server.stats["completed"] + server.stats["failed"] < total_jobs:
                await asyncio.sleep(0.02)
            wall = time.perf_counter() - started
            shed = server.stats["shed"]
            await server.drain()
            return wall, shed

    def run():
        return asyncio.run(_flood())

    wall, (service_wall, shed) = _best_of(run)
    return BenchResult(
        name="serve.throughput",
        context=_context(family="serve", jobs=total_jobs, workers=2,
                         max_pending=2, execution="inline"),
        metrics={
            "wall_seconds": metric(wall),
            "jobs_per_second": metric(
                total_jobs / service_wall, "jobs/s", higher_is_better=True
            ),
            "shed_submissions": metric(float(shed), "submissions"),
        },
    )
