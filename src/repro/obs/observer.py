"""The observability facade instrumented code talks to.

Pipeline stages accept an optional :class:`Observer` and call four
methods: ``span()`` (nested phase timer), ``event()`` (point-in-time
fact), ``inc``/``gauge``/``observe`` (metrics).  Passing ``None``
resolves to the shared :data:`NULL_OBSERVER`, whose every method is a
cheap no-op -- the un-instrumented fast path.  Instrumented hot loops
additionally keep their own local counters and flush to the observer at
phase or wave boundaries, so the per-transition cost of observability is
zero even when sinks *are* configured.

An :class:`Observer` always accumulates completed :class:`PhaseTiming`
records (name, depth, wall, cpu) in memory -- that is what
:class:`~repro.obs.report.RunReport` renders as the per-phase time table
-- and mirrors spans/events to a :class:`~repro.obs.trace.Tracer` when
one is attached.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, ContextManager, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

logger = logging.getLogger("repro.obs")


@dataclass
class PhaseTiming:
    """One completed span: where the run's time went."""

    name: str
    depth: int
    start: float  # seconds since the observer's epoch
    wall: float
    cpu: float
    attrs: dict = field(default_factory=dict)


class Observer:
    """Live observer: records phases, mirrors to metrics and the tracer."""

    #: False only on :class:`NullObserver`; lets hot paths skip work
    #: (e.g. per-wave bookkeeping) entirely when nothing is listening.
    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        progress=None,  # repro.obs.progress.ProgressReporter
        sampler=None,   # repro.obs.resource.ResourceSampler
        profiler=None,  # repro.obs.prof.SamplingProfiler
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.progress = progress
        self.sampler = sampler
        self.profiler = profiler
        self.phases: List[PhaseTiming] = []
        self._depth = 0
        self._epoch = time.perf_counter()

    # -- spans and events ------------------------------------------------------

    @contextmanager
    def _span(self, name: str, attrs: dict):
        start = time.perf_counter() - self._epoch
        start_cpu = time.process_time()
        depth = self._depth
        self._depth += 1
        try:
            if self.tracer is not None:
                with self.tracer.span(name, **attrs):
                    yield self
            else:
                yield self
        finally:
            self._depth -= 1
            wall = time.perf_counter() - self._epoch - start
            cpu = time.process_time() - start_cpu
            self.phases.append(
                PhaseTiming(name=name, depth=depth, start=start,
                            wall=wall, cpu=cpu, attrs=attrs)
            )
            self.metrics.observe("phase.wall_seconds", wall, phase=name)
            logger.debug("phase %s: wall=%.4fs cpu=%.4fs", name, wall, cpu)

    def span(self, name: str, **attrs: Any) -> ContextManager["Observer"]:
        return self._span(name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, **attrs)

    def heartbeat(self, phase: str, **fields: Any) -> None:
        """Report live progress: the heartbeat channel + sampler gauges.

        Instrumented loops call this at natural milestones (per wave,
        per trace); the attached :class:`ProgressReporter` rate-limits
        the fan-out, and a ``frontier`` field additionally feeds the
        resource sampler's frontier counter track.
        """
        if self.progress is not None:
            self.progress.update(phase, **fields)
        if self.sampler is not None and "frontier" in fields:
            self.sampler.set_value("enum.frontier_states", fields["frontier"])

    # -- metrics ---------------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        self.metrics.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.observe(name, value, **labels)

    def merge(self, snapshot) -> None:
        """Fold a worker-side metrics snapshot into this observer."""
        if snapshot:
            self.metrics.merge(snapshot)

    # -- reporting -------------------------------------------------------------

    def phase_coverage(self) -> float:
        """Fraction of the root span's wall time covered by its children.

        The acceptance bar for instrumentation completeness: child spans
        must account for >= 95% of a run's total wall time.  Returns 1.0
        when there is no nesting to measure.
        """
        roots = [p for p in self.phases if p.depth == 0]
        children = [p for p in self.phases if p.depth == 1]
        total = sum(p.wall for p in roots)
        if not total or not children:
            return 1.0 if not children else 0.0
        return min(1.0, sum(p.wall for p in children) / total)

    def perf_summary(self) -> dict:
        """The run report's ``perf`` section: sampler/profiler/heartbeats."""
        perf: dict = {}
        if self.sampler is not None:
            perf["resources"] = self.sampler.summary()
        if self.profiler is not None:
            perf["profile"] = self.profiler.summary()
        if self.progress is not None:
            perf["heartbeats"] = {
                "emitted": self.progress.emitted,
                "path": self.progress.path,
            }
        return perf

    def close(self) -> None:
        if self.sampler is not None:
            self.sampler.stop()
        if self.profiler is not None:
            self.profiler.stop()
        if self.progress is not None:
            self.progress.close()
        if self.tracer is not None:
            self.tracer.close()


class NullObserver(Observer):
    """The do-nothing observer: every hook is a constant-time no-op."""

    enabled = False

    def __init__(self):  # no registry allocation on the fast path
        self.metrics = _NULL_REGISTRY
        self.tracer = None
        self.progress = None
        self.sampler = None
        self.profiler = None
        self.phases = []

    def span(self, name: str, **attrs: Any) -> ContextManager[None]:
        return _NULL_CONTEXT

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def heartbeat(self, phase: str, **fields: Any) -> None:
        pass

    def perf_summary(self) -> dict:
        return {}

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        pass

    def observe(self, name: str, value: float, **labels: Any) -> None:
        pass

    def merge(self, snapshot) -> None:
        pass

    def close(self) -> None:
        pass


_NULL_CONTEXT: ContextManager[None] = nullcontext()
_NULL_REGISTRY = MetricsRegistry()

#: Shared no-op observer; ``resolve(None)`` returns it.
NULL_OBSERVER = NullObserver()


def resolve(obs: Optional[Observer]) -> Observer:
    """``None`` -> the shared no-op observer; anything else unchanged."""
    return NULL_OBSERVER if obs is None else obs
