#!/usr/bin/env python
"""Quickstart: validate the Protocol Processor end to end.

Runs the full four-step methodology of the paper (Fig. 3.1) on the
bug-free PP design and prints what each step produced:

1. the control FSM model (state variables, abstract choice points),
2. the fully enumerated state graph (Table 3.2-style statistics),
3. the transition tours and generated test vectors (Table 3.3-style),
4. the implementation-vs-specification comparison verdict.

Usage::

    python examples/quickstart.py
"""

from repro.core import ValidationPipeline
from repro.pp.fsm_model import PPModelConfig


def main() -> None:
    pipeline = ValidationPipeline(
        model_config=PPModelConfig(fill_words=2),
        max_instructions_per_trace=400,
        seed=7,
    )

    print("step 1: HDL -> FSM model")
    model = pipeline.control.build()
    print(f"  model: {model!r}")
    print(f"  state machines: {', '.join(model.state_var_names)}")
    print(f"  abstract inputs: {', '.join(model.choice_names)}")

    print("\nstep 2: full state enumeration")
    artifacts = pipeline.build()
    print("  " + artifacts.enumeration.format_table().replace("\n", "\n  "))
    print(f"  reachable fraction of 2^bits: "
          f"{artifacts.enumeration.reachable_fraction:.2e}")

    print("\nstep 3: transition tours -> test vectors")
    stats = artifacts.tours.stats
    print(f"  traces: {stats.num_traces}")
    print(f"  arc traversals: {stats.total_edge_traversals:,} "
          f"over {stats.graph_edges:,} arcs (complete tour: "
          f"{artifacts.tours.complete})")
    print(f"  instructions generated: {stats.total_instructions:,} "
          f"({stats.instructions_per_arc:.1f} per arc)")
    print(f"  longest trace: {stats.longest_trace_edges:,} arcs")

    print("\nstep 4: simulate implementation vs specification")
    report = pipeline.validate(stop_on_divergence=False)
    print("  " + report.summary())


if __name__ == "__main__":
    main()
