#!/usr/bin/env python
"""Bring your own controller: Verilog in, covering test vectors out.

The methodology is not PP-specific ("its applicability is not limited to
just processors" -- section 4).  This example pushes a little two-module
bus-arbiter design through the whole flow:

1. parse + elaborate the annotated Verilog,
2. translate it to a Synchronous Murphi model (clocked regs -> state,
   free inputs -> nondeterministic choices),
3. enumerate every reachable control state,
4. generate transition tours covering every arc,
5. emit per-cycle input force vectors for the first tour.

Usage::

    python examples/translate_your_verilog.py
"""

from repro.enumeration import enumerate_states
from repro.tour import TourGenerator, arc_coverage
from repro.translate import input_vectors_for_walk, translate_verilog

ARBITER = """
// A round-robin two-requester bus arbiter with a handshake to a shared
// resource that acknowledges asynchronously.
module channel (
  input clk,
  input start,
  input ack,            // asynchronous completion from the resource
  output wire busy
);
  // @state
  reg [1:0] st;         // 0 idle, 1 waiting grant, 2 transferring
  assign busy = st != 0;
  always @(posedge clk) begin
    case (st)
      0: if (start) st <= 1;
      1: st <= 2;
      2: if (ack) st <= 0;
      default: st <= 0;
    endcase
  end
endmodule

module arbiter (
  input clk,
  input req_a,
  input req_b,
  input ack,
  output wire granted
);
  // @state
  reg turn;             // round-robin pointer
  wire busy_a;
  wire busy_b;
  wire idle = !busy_a && !busy_b;
  wire start_a = req_a && idle && (turn == 0 || !req_b);
  wire start_b = req_b && idle && !start_a;
  channel a (.clk(clk), .start(start_a), .ack(ack), .busy(busy_a));
  channel b (.clk(clk), .start(start_b), .ack(ack), .busy(busy_b));
  assign granted = busy_a || busy_b;
  always @(posedge clk) begin
    if (start_a) turn <= 1;
    if (start_b) turn <= 0;
  end
endmodule
"""


def main() -> None:
    print("translating the arbiter design...")
    model, flat = translate_verilog(ARBITER, top="arbiter")
    print(f"  state variables: {model.state_var_names}")
    print(f"  free inputs (abstract environment): {model.choice_names}")
    print(f"  state encoding: {model.state_bits()} bits")

    print("\nenumerating from reset...")
    graph, stats = enumerate_states(model)
    print(f"  {stats.num_states} reachable states, {stats.num_edges} arcs "
          f"(of {2 ** stats.bits_per_state} possible states)")

    print("\ngenerating transition tours...")
    tours = TourGenerator(graph, max_instructions_per_trace=64).generate()
    report = arc_coverage(graph, (t.edge_indices for t in tours))
    print(f"  {tours.stats.num_traces} tours, "
          f"{tours.stats.total_edge_traversals} traversals, "
          f"coverage complete: {report.complete}")

    print("\nforce vectors for the first 12 cycles of tour 0:")
    vectors = input_vectors_for_walk(model, graph, tours.tours[0].edge_indices)
    header = list(model.choice_names)
    print("  cycle  " + "  ".join(f"{h:>6}" for h in header))
    for cycle, vector in enumerate(vectors[:12]):
        print(f"  {cycle:>5}  " + "  ".join(f"{vector[h]:>6}" for h in header))
    print(f"  ... {len(vectors)} cycles total")


if __name__ == "__main__":
    main()
